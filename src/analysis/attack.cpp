#include "analysis/attack.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <utility>

#include "ir/inverted_index.h"

namespace rsse::analysis {

BackgroundKnowledge BackgroundKnowledge::from_corpus(const ir::Corpus& corpus,
                                                     const Options& options) {
  const ir::Analyzer analyzer(options.analyzer);
  const ir::InvertedIndex index = ir::InvertedIndex::build(corpus, analyzer);

  // Candidate selection: df floor, then cap by (df desc, term asc) so the
  // candidate universe is deterministic and salient-first.
  std::vector<std::pair<std::uint64_t, std::string>> by_df;
  for (const std::string& term : index.terms()) {
    const std::uint64_t df = index.document_frequency(term);
    if (df >= options.min_document_frequency) by_df.emplace_back(df, term);
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (by_df.size() > options.max_keywords) by_df.resize(options.max_keywords);

  BackgroundKnowledge bk;
  bk.num_documents_ = index.num_documents();
  const double n_docs = std::max<double>(1.0, static_cast<double>(bk.num_documents_));
  bk.keywords_.reserve(by_df.size());
  bk.relative_frequency_.reserve(by_df.size());
  std::vector<std::vector<std::uint64_t>> top_sets;
  top_sets.reserve(by_df.size());
  for (const auto& [df, term] : by_df) {
    bk.index_of_.emplace(term, bk.keywords_.size());
    bk.keywords_.push_back(term);
    bk.relative_frequency_.push_back(static_cast<double>(df) / n_docs);
    // The candidate's expected result set for a top-k query: the same
    // Eq. 2 ranking the real scheme serves, computed on public data.
    auto ranked = index.ranked_postings(term);
    if (options.top_k > 0 && ranked.size() > options.top_k)
      ranked.resize(options.top_k);
    std::vector<std::uint64_t> ids;
    ids.reserve(ranked.size());
    for (const auto& posting : ranked) ids.push_back(ir::value(posting.file));
    std::sort(ids.begin(), ids.end());
    top_sets.push_back(std::move(ids));
  }

  const std::size_t n = bk.keywords_.size();
  bk.cooccurrence_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double c = overlap_coefficient(top_sets[i], top_sets[j]);
      bk.cooccurrence_[i * n + j] = c;
      bk.cooccurrence_[j * n + i] = c;
    }
  }
  return bk;
}

BackgroundKnowledge BackgroundKnowledge::from_corpus(const ir::Corpus& corpus) {
  return from_corpus(corpus, Options{});
}

std::optional<std::size_t> BackgroundKnowledge::keyword_index(
    std::string_view keyword) const {
  const auto it = index_of_.find(keyword);
  if (it == index_of_.end()) return std::nullopt;
  return it->second;
}

namespace {

// Best unused candidate for one group plus a margin confidence in [0, 1]:
// (best - runner-up) / (best - worst). 1.0 when only one candidate is
// scoreable, 0 when the field is flat (nothing to distinguish guesses).
struct Scored {
  std::size_t candidate = 0;
  double score = 0.0;
  double confidence = 0.0;
  bool valid = false;
};

}  // namespace

AttackResult run_query_recovery(const LeakageLedger& ledger,
                                const BackgroundKnowledge& background,
                                const std::vector<KnownQuery>& known,
                                const AttackOptions& options) {
  const auto profiles = ledger.query_profiles();
  const auto observed_cooc = ledger.cooccurrence_matrix();
  const auto query_hist = ledger.query_frequency_histogram();
  const std::size_t n_groups = profiles.size();
  const std::size_t n_candidates = background.num_keywords();

  AttackResult result;
  result.queries_observed = ledger.num_queries();
  result.groups = n_groups;
  if (n_groups == 0 || n_candidates == 0) return result;

  // |C| on the server, for translating public df into an expected stored
  // row width. The adversary can lower-bound it from the ids it saw.
  double server_files = static_cast<double>(options.num_server_files);
  if (options.num_server_files == 0) {
    std::uint64_t max_id = 0;
    bool any = false;
    for (const QueryGroupProfile& p : profiles)
      for (const std::uint64_t id : p.result_union) {
        any = true;
        max_id = std::max(max_id, id);
      }
    server_files = any ? static_cast<double>(max_id + 1)
                       : static_cast<double>(background.num_documents());
  }

  // The width term only carries signal when the padding policy lets
  // widths differ; under full-nu padding every row is the same width and
  // the term is disabled — which is precisely what the padding buys.
  // When every observed width is a power of two the adversary infers
  // pow2 bucketing and aligns its predictions to the same buckets, so
  // bucketed widths still rank candidates (coarser than exact widths:
  // every df in a bucket scores alike).
  std::set<std::size_t> distinct_widths;
  bool all_pow2 = true;
  for (const QueryGroupProfile& p : profiles) {
    if (p.row_width == 0) continue;
    distinct_widths.insert(p.row_width);
    if ((p.row_width & (p.row_width - 1)) != 0) all_pow2 = false;
  }
  const bool widths_informative = distinct_widths.size() > 1;
  const bool pow2_buckets = widths_informative && all_pow2;
  result.widths_informative = widths_informative;

  const double total_queries = std::max<double>(1.0, static_cast<double>(
      ledger.num_queries()));
  double candidate_freq_sum = 0.0;
  for (std::size_t c = 0; c < n_candidates; ++c)
    candidate_freq_sum += background.relative_frequency(c);
  candidate_freq_sum = std::max(candidate_freq_sum, 1e-12);

  // Assignment state. A candidate anchors at most one group (injective
  // matching), seeds first.
  std::vector<std::size_t> assigned(n_groups, SIZE_MAX);
  std::vector<double> assigned_confidence(n_groups, 0.0);
  std::vector<char> is_seed(n_groups, 0);
  std::vector<char> is_refined(n_groups, 0);
  std::vector<char> candidate_used(n_candidates, 0);

  std::map<Bytes, std::size_t> group_of_label;
  for (std::size_t g = 0; g < n_groups; ++g)
    group_of_label.emplace(profiles[g].row_label, g);
  for (const KnownQuery& kq : known) {
    const auto git = group_of_label.find(kq.row_label);
    if (git == group_of_label.end()) continue;
    const auto candidate = background.keyword_index(kq.keyword);
    if (!candidate || candidate_used[*candidate]) continue;
    if (assigned[git->second] != SIZE_MAX) continue;
    assigned[git->second] = *candidate;
    assigned_confidence[git->second] = 1.0;
    is_seed[git->second] = 1;
    candidate_used[*candidate] = 1;
  }

  const auto score_pair = [&](std::size_t g, std::size_t c) {
    double s = 0.0;
    if (widths_informative && options.width_weight > 0 && profiles[g].row_width > 0) {
      double predicted =
          std::max(1.0, background.relative_frequency(c) * server_files);
      if (pow2_buckets) {
        std::uint64_t bucket = 1;
        while (static_cast<double>(bucket) < predicted) bucket <<= 1;
        predicted = static_cast<double>(bucket);
      }
      s -= options.width_weight *
           std::abs(std::log(static_cast<double>(profiles[g].row_width)) -
                    std::log(predicted));
    }
    if (options.query_frequency_weight > 0) {
      const double observed =
          static_cast<double>(query_hist[g]) / total_queries;
      const double expected = background.relative_frequency(c) / candidate_freq_sum;
      s -= options.query_frequency_weight *
           std::abs(std::log(std::max(observed, 1e-9)) -
                    std::log(std::max(expected, 1e-9)));
    }
    if (options.cooccurrence_weight > 0) {
      double err = 0.0;
      std::size_t anchors = 0;
      for (std::size_t g2 = 0; g2 < n_groups; ++g2) {
        if (g2 == g || assigned[g2] == SIZE_MAX) continue;
        err += std::abs(observed_cooc[g * n_groups + g2] -
                        background.cooccurrence(c, assigned[g2]));
        ++anchors;
      }
      if (anchors > 0)
        s -= options.cooccurrence_weight * (err / static_cast<double>(anchors));
    }
    return s;
  };

  const auto best_for_group = [&](std::size_t g) {
    Scored best;
    double runner_up = 0.0;
    double worst = 0.0;
    std::size_t scoreable = 0;
    for (std::size_t c = 0; c < n_candidates; ++c) {
      if (candidate_used[c]) continue;
      const double s = score_pair(g, c);
      ++scoreable;
      if (scoreable == 1) {
        best = Scored{c, s, 0.0, true};
        runner_up = s;
        worst = s;
        continue;
      }
      // Strict improvement wins; ties keep the earlier (lexicographically
      // smaller, since candidates are sorted) keyword — deterministic.
      if (s > best.score) {
        runner_up = best.score;
        best.candidate = c;
        best.score = s;
      } else if (scoreable == 2 || s > runner_up) {
        runner_up = s;
      }
      worst = std::min(worst, s);
    }
    if (!best.valid) return best;
    if (scoreable == 1) {
      best.confidence = 1.0;
    } else {
      const double range = best.score - worst;
      best.confidence = range > 0 ? (best.score - runner_up) / range : 0.0;
    }
    return best;
  };

  // Iterative refinement: promote the most confident predictions to
  // pseudo-known queries so they anchor the co-occurrence term for the
  // rest, until no prediction clears the confidence bar.
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<std::tuple<double, std::size_t, std::size_t>> pending;
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (assigned[g] != SIZE_MAX) continue;
      const Scored guess = best_for_group(g);
      if (guess.valid && guess.confidence >= options.confidence_threshold)
        pending.emplace_back(guess.confidence, g, guess.candidate);
    }
    if (pending.empty()) break;
    std::sort(pending.begin(), pending.end(), [](const auto& a, const auto& b) {
      if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
      return std::get<1>(a) < std::get<1>(b);
    });
    std::size_t promoted = 0;
    for (const auto& [confidence, g, c] : pending) {
      if (promoted >= options.refinement_batch) break;
      if (candidate_used[c]) continue;  // taken earlier this round
      assigned[g] = c;
      assigned_confidence[g] = confidence;
      is_refined[g] = 1;
      candidate_used[c] = 1;
      ++promoted;
    }
    if (promoted == 0) break;
    ++result.refinement_rounds;
  }

  // Final pass: every group gets a verdict; unpromoted groups take their
  // best remaining candidate with whatever (sub-threshold) confidence.
  result.guesses.reserve(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    QueryGuess guess;
    guess.group = g;
    guess.row_label = profiles[g].row_label;
    if (assigned[g] != SIZE_MAX) {
      guess.keyword = background.keywords()[assigned[g]];
      guess.confidence = assigned_confidence[g];
      guess.seed = is_seed[g] != 0;
      guess.refined = is_refined[g] != 0;
    } else {
      const Scored best = best_for_group(g);
      if (best.valid) {
        guess.keyword = background.keywords()[best.candidate];
        guess.confidence = best.confidence;
      }
    }
    if (!guess.seed && guess.confidence >= options.confidence_threshold)
      ++result.confident;
    result.guesses.push_back(std::move(guess));
  }
  return result;
}

double recovery_rate(const AttackResult& result,
                     const std::map<Bytes, std::string>& truth) {
  std::size_t eligible = 0;
  std::size_t correct = 0;
  for (const QueryGuess& guess : result.guesses) {
    if (guess.seed) continue;
    const auto it = truth.find(guess.row_label);
    if (it == truth.end()) continue;
    ++eligible;
    if (!guess.keyword.empty() && guess.keyword == it->second) ++correct;
  }
  return eligible == 0 ? 0.0
                       : static_cast<double>(correct) / static_cast<double>(eligible);
}

}  // namespace rsse::analysis
