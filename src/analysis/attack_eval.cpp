#include "analysis/attack_eval.h"

#include <utility>

namespace rsse::analysis {

AttackEvaluator::AttackEvaluator(const TranscriptSink& sink,
                                 BackgroundKnowledge background,
                                 obs::MetricsRegistry& registry,
                                 AttackEvaluatorOptions options,
                                 std::vector<KnownQuery> known,
                                 std::map<Bytes, std::string> truth)
    : sink_(sink),
      background_(std::move(background)),
      options_(options),
      known_(std::move(known)),
      truth_(std::move(truth)),
      queries_observed_(registry.gauge(
          "rsse_attack_queries_observed",
          "Transcript queries the query-recovery adversary has consumed")),
      distinct_queries_(registry.gauge(
          "rsse_attack_distinct_queries",
          "Distinct search-pattern groups in the adversary's transcript")),
      confident_guesses_(registry.gauge(
          "rsse_attack_confident_guesses",
          "Non-seed keyword guesses at or above the confidence threshold")),
      background_keywords_(registry.gauge(
          "rsse_attack_background_keywords",
          "Candidate keywords in the adversary's public background corpus")),
      recovery_rate_(registry.double_gauge(
          "rsse_attack_recovery_rate",
          "Query-recovery success: fraction of non-seed queries whose "
          "keyword the adversary named correctly (with ground truth), or "
          "its confident-guess fraction (live, no ground truth)")),
      evaluations_total_(registry.counter(
          "rsse_attack_evaluations_total",
          "Completed background attack evaluations")) {
  background_keywords_.set(static_cast<std::int64_t>(background_.num_keywords()));
  thread_ = std::thread([this] { run(); });
}

AttackEvaluator::~AttackEvaluator() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void AttackEvaluator::notify() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_ = true;
  }
  cv_.notify_all();
}

void AttackEvaluator::wait_for_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !pending_ && !working_; });
}

std::uint64_t AttackEvaluator::evaluations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

AttackResult AttackEvaluator::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

void AttackEvaluator::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return pending_ || stop_; });
    if (stop_) return;
    pending_ = false;
    const std::uint64_t total = sink_.total_recorded();
    const bool due = total > last_evaluated_total_ &&
                     (total - last_evaluated_total_ >= options_.min_new_queries ||
                      last_evaluated_total_ == 0);
    if (!due) {
      cv_.notify_all();  // wake wait_for_idle(): nothing to do yet
      continue;
    }
    working_ = true;
    lock.unlock();
    evaluate_once();
    lock.lock();
    working_ = false;
    last_evaluated_total_ = total;
    ++evaluations_;
    cv_.notify_all();
  }
}

void AttackEvaluator::evaluate_once() {
  const LeakageLedger ledger = sink_.ledger();
  AttackResult result =
      run_query_recovery(ledger, background_, known_, options_.attack);

  queries_observed_.set(static_cast<std::int64_t>(result.queries_observed));
  distinct_queries_.set(static_cast<std::int64_t>(result.groups));
  confident_guesses_.set(static_cast<std::int64_t>(result.confident));
  if (!truth_.empty()) {
    recovery_rate_.set(recovery_rate(result, truth_));
  } else {
    std::size_t non_seed = 0;
    for (const QueryGuess& g : result.guesses)
      if (!g.seed) ++non_seed;
    recovery_rate_.set(non_seed == 0 ? 0.0
                                     : static_cast<double>(result.confident) /
                                           static_cast<double>(non_seed));
  }
  evaluations_total_.inc();

  const std::lock_guard<std::mutex> lock(mutex_);
  latest_ = std::move(result);
}

}  // namespace rsse::analysis
