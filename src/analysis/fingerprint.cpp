#include "analysis/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/errors.h"

namespace rsse::analysis {

KeywordFingerprinter::KeywordFingerprinter(std::vector<Candidate> candidates,
                                           std::size_t bins)
    : candidates_(std::move(candidates)), bins_(bins) {
  detail::require(!candidates_.empty(), "KeywordFingerprinter: no candidates");
  detail::require(bins_ >= 2, "KeywordFingerprinter: need at least two bins");
  candidate_signatures_.reserve(candidates_.size());
  for (const Candidate& c : candidates_) {
    detail::require(!c.score_values.empty(),
                    "KeywordFingerprinter: empty candidate profile");
    candidate_signatures_.push_back(signature(c.score_values));
  }
}

std::vector<double> KeywordFingerprinter::signature(
    const std::vector<std::uint64_t>& values) const {
  detail::require(!values.empty(), "KeywordFingerprinter: empty observation");
  std::unordered_map<std::uint64_t, std::size_t> multiplicities;
  for (std::uint64_t v : values) ++multiplicities[v];
  std::vector<double> profile;
  profile.reserve(multiplicities.size());
  for (const auto& [value, count] : multiplicities)
    profile.push_back(static_cast<double>(count) / static_cast<double>(values.size()));
  std::sort(profile.begin(), profile.end(), std::greater<>());
  profile.resize(bins_, 0.0);  // truncate the tail / pad with zeros
  return profile;
}

std::vector<KeywordFingerprinter::Match> KeywordFingerprinter::rank_candidates(
    const std::vector<std::uint64_t>& observed_values) const {
  const std::vector<double> observed = signature(observed_values);
  std::vector<Match> matches;
  matches.reserve(candidates_.size());
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    double l1 = 0.0;
    for (std::size_t b = 0; b < bins_; ++b)
      l1 += std::abs(observed[b] - candidate_signatures_[c][b]);
    matches.push_back(Match{candidates_[c].keyword, l1});
  }
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.keyword < b.keyword;
  });
  return matches;
}

std::string KeywordFingerprinter::best_match(
    const std::vector<std::uint64_t>& observed_values) const {
  return rank_candidates(observed_values).front().keyword;
}

}  // namespace rsse::analysis
