// Executable leakage profile — the quantities Sec. V says the scheme
// reveals, computed from what an honest-but-curious server actually
// observes. Used by the leakage example, the ablation bench, and tests
// that pin the leakage to exactly the defined profile (nothing more).
//
//   * IndexShape: the static view — row count m, row widths, total bytes.
//   * QueryObservation / LeakageLedger: the dynamic view — for each query
//     the touched row label and returned file ids, from which the ledger
//     derives the SEARCH PATTERN (which queries were for the same
//     keyword) and the ACCESS PATTERN (which files each query returned),
//     exactly the two objects SSE security definitions condition on.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.h"
#include "sse/rsse_scheme.h"
#include "sse/secure_index.h"
#include "sse/types.h"

namespace rsse::analysis {

/// The static shape a curious server learns from the stored index alone.
struct IndexShape {
  std::size_t num_rows = 0;          ///< m
  std::size_t min_row_width = 0;
  std::size_t max_row_width = 0;     ///< nu under full padding
  std::size_t distinct_widths = 0;
  double width_shannon_entropy = 0;  ///< bits; 0 = widths reveal nothing
  std::uint64_t total_bytes = 0;
};

/// Computes the shape of a stored index.
IndexShape index_shape(const sse::SecureIndex& index);

/// Exports a build-time leakage audit as live gauges on `registry`, so a
/// serving deployment's /metrics exposes the paper's security claims:
///   rsse_opm_ciphertext_duplicates        must stay 0 (Fig. 6)
///   rsse_leakage_audited_postings         audit coverage
///   rsse_leakage_width_entropy_bits       row-width leakage under padding
///   rsse_leakage_level_min_entropy_bits   Ablation C, plaintext side
///   rsse_leakage_opm_min_entropy_bits     Ablation C, after the OPM
/// Idempotent: re-registering updates the same series. `labels` scopes
/// the series (a tenant host passes {tenant=<id>}; single-owner servers
/// pass nothing and keep the unlabeled series).
void export_leakage_gauges(const sse::LeakageAudit& audit,
                           obs::MetricsRegistry& registry,
                           const obs::Labels& labels = {});

/// One observed query: the opaque row label it touched and the file ids
/// it returned (in server-visible order). `row_width` is the stored
/// posting-row width the server saw while answering (padding included;
/// 0 = not recorded / row absent) — the only frequency signal the
/// padding policy modulates when queries are top-k truncated.
struct QueryObservation {
  Bytes row_label;
  std::vector<std::uint64_t> returned_ids;
  std::size_t row_width = 0;
};

/// One search-pattern group with everything the adversary correlates:
/// which queries it covers, the union of file ids they returned, and the
/// stored row width. Groups are in first-seen order (matching
/// search_pattern()).
struct QueryGroupProfile {
  Bytes row_label;
  std::vector<std::size_t> query_indices;      ///< into the ledger
  std::vector<std::uint64_t> result_union;     ///< sorted, distinct
  std::size_t row_width = 0;                   ///< max observed (0 = unknown)
};

/// The server's accumulated observations over a session.
class LeakageLedger {
 public:
  /// Records one query's observation.
  void record(QueryObservation observation);

  /// Number of recorded queries.
  [[nodiscard]] std::size_t num_queries() const { return observations_.size(); }

  /// SEARCH PATTERN: the partition of query indices by row label — two
  /// queries land in one group iff they were for the same keyword (the
  /// equality pattern of Sec. III-A). Groups are in first-seen order.
  [[nodiscard]] std::vector<std::vector<std::size_t>> search_pattern() const;

  /// ACCESS PATTERN: per query, the set of returned file ids.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> access_pattern() const;

  /// Number of distinct keywords queried (search-pattern group count).
  [[nodiscard]] std::size_t distinct_keywords_queried() const;

  /// File-id co-occurrence: how often each file appeared across all
  /// queries — the frequency signal an adversary correlates with public
  /// metadata.
  [[nodiscard]] std::map<std::uint64_t, std::size_t> file_frequencies() const;

  /// Per-group aggregation of everything above: one profile per
  /// search-pattern group, in first-seen order. This is the canonical
  /// adversary view — the attack engine and the tests both consume it
  /// instead of re-deriving the partition.
  [[nodiscard]] std::vector<QueryGroupProfile> query_profiles() const;

  /// Group-by-group co-occurrence of result sets as the overlap
  /// coefficient |A ∩ B| / min(|A|, |B|) (0 when either is empty), in
  /// query_profiles() order, row-major n*n (diagonal = 1 for non-empty
  /// groups). Scale-free, so an adversary can compare it against the
  /// same statistic of a public corpus with a different document count.
  [[nodiscard]] std::vector<double> cooccurrence_matrix() const;

  /// Queries per group in query_profiles() order — the query-frequency
  /// histogram (the search-pattern side of the frequency attack).
  [[nodiscard]] std::vector<std::size_t> query_frequency_histogram() const;

 private:
  std::vector<QueryObservation> observations_;
};

/// Overlap coefficient of two sorted id sets: |A ∩ B| / min(|A|, |B|),
/// 0 when either is empty. Shared by the ledger and the background-
/// knowledge side of the attack so both sides use one definition.
[[nodiscard]] double overlap_coefficient(const std::vector<std::uint64_t>& a,
                                         const std::vector<std::uint64_t>& b);

}  // namespace rsse::analysis
