// Live attack evaluation: a background worker that re-runs the
// query-recovery adversary (analysis/attack.h) against a server's live
// transcript and exports the outcome as metrics — `rsse serve
// --attack-eval` turns the security claim into a dashboard number the
// operator can watch degrade or hold as traffic accumulates.
//
// Deterministic by construction, like seg::Compactor — no timers, no
// sleeps. The worker only wakes on notify() (wired as the transcript
// sink's listener) and evaluates when enough new queries arrived; tests
// synchronize with wait_for_idle() instead of polling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/attack.h"
#include "analysis/transcript.h"
#include "obs/metrics.h"
#include "util/bytes.h"

namespace rsse::analysis {

struct AttackEvaluatorOptions {
  /// Re-run the attack once at least this many queries arrived since the
  /// last evaluation (batches the O(groups^2 * candidates) work).
  std::size_t min_new_queries = 8;
  AttackOptions attack;
};

/// Owns the evaluation thread for one TranscriptSink. Construction
/// registers the rsse_attack_* instruments and starts the thread;
/// destruction stops and joins it. The caller wires notify() as the
/// sink's listener (and must clear it before destroying the evaluator).
class AttackEvaluator {
 public:
  /// `truth` (row label -> normalized keyword) is evaluation-side ground
  /// truth: when non-empty, rsse_attack_recovery_rate reports the true
  /// recovery rate; when empty (a real deployment — the server cannot
  /// know it), the gauge reports the confident-guess fraction instead,
  /// the adversary's own estimate of its success.
  AttackEvaluator(const TranscriptSink& sink, BackgroundKnowledge background,
                  obs::MetricsRegistry& registry,
                  AttackEvaluatorOptions options = {},
                  std::vector<KnownQuery> known = {},
                  std::map<Bytes, std::string> truth = {});

  AttackEvaluator(const AttackEvaluator&) = delete;
  AttackEvaluator& operator=(const AttackEvaluator&) = delete;

  ~AttackEvaluator();

  /// Signals that the transcript may have grown. Cheap; safe from any
  /// thread (it is called from the serving path via the sink listener).
  void notify();

  /// Blocks until the worker has drained every pending notification.
  void wait_for_idle();

  /// Completed evaluations (monotonic).
  [[nodiscard]] std::uint64_t evaluations() const;

  /// The most recent attack outcome (empty before the first evaluation).
  [[nodiscard]] AttackResult latest() const;

 private:
  void run();
  void evaluate_once();

  const TranscriptSink& sink_;
  const BackgroundKnowledge background_;
  const AttackEvaluatorOptions options_;
  const std::vector<KnownQuery> known_;
  const std::map<Bytes, std::string> truth_;

  obs::Gauge& queries_observed_;
  obs::Gauge& distinct_queries_;
  obs::Gauge& confident_guesses_;
  obs::Gauge& background_keywords_;
  obs::DoubleGauge& recovery_rate_;
  obs::Counter& evaluations_total_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool pending_ = false;
  bool working_ = false;
  bool stop_ = false;
  std::uint64_t evaluations_ = 0;
  std::uint64_t last_evaluated_total_ = 0;
  AttackResult latest_;

  std::thread thread_;  // last: starts in the ctor after state is ready
};

}  // namespace rsse::analysis
