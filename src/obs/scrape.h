// Plaintext HTTP scrape endpoint: serves the metrics registries of a
// process over GET /metrics (Prometheus text exposition, version 0.0.4)
// and GET /metrics.json (JSON snapshot). Deliberately tiny — it speaks
// just enough HTTP/1.1 for prometheus-style scrapers and curl, closes
// the connection after every response, and shares nothing with the RSSE
// binary protocol, so it can never confuse a protocol peer.
//
// A process with several metric sources (a sharded example hosting both a
// CloudServer registry and a coordinator registry) registers them all;
// /metrics concatenates their expositions. Sources MUST use disjoint
// family-name prefixes (rsse_server_*, rsse_cluster_*, ...) — duplicate
// family names across sources would produce invalid exposition.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rsse::net {
class Socket;
class TcpListener;
}  // namespace rsse::net

namespace rsse::obs {

/// One named registry exposed by the endpoint. The registry must outlive
/// the endpoint.
struct ScrapeSource {
  std::string name;  // JSON key, e.g. "server" / "cluster"
  const MetricsRegistry* registry = nullptr;
  // Optional: invoked before each render of this source, for gauges that
  // are computed on demand (e.g. syncing the obs::cost counters). Must be
  // thread-safe; called from scrape worker threads.
  std::function<void()> refresh;
};

/// HTTP scrape server. Runs its own accept loop; stop() (or destruction)
/// shuts it down and joins every worker.
///
/// Every endpoint also exposes a built-in "process" source with process-
/// level health gauges, refreshed on each scrape:
///   rsse_process_uptime_seconds         seconds since the endpoint started
///   rsse_process_resident_memory_bytes  RSS from /proc/self/statm (Linux)
///   rsse_process_open_fds               entries in /proc/self/fd (Linux)
/// On non-Linux platforms the memory/fd gauges stay 0; uptime always works.
class ScrapeEndpoint {
 public:
  /// Serves `sources` on 127.0.0.1:`port` (0 = pick an ephemeral port).
  /// Throws ProtocolError when binding fails, InvalidArgument when a
  /// source is null, names collide, or a source claims the reserved name
  /// "process".
  ScrapeEndpoint(std::vector<ScrapeSource> sources, std::uint16_t port = 0);

  /// Convenience: a single unnamed source.
  ScrapeEndpoint(const MetricsRegistry& registry, std::uint16_t port = 0);

  ~ScrapeEndpoint();

  ScrapeEndpoint(const ScrapeEndpoint&) = delete;
  ScrapeEndpoint& operator=(const ScrapeEndpoint&) = delete;

  /// The bound port.
  [[nodiscard]] std::uint16_t port() const;

  /// Number of HTTP requests served so far.
  [[nodiscard]] std::uint64_t requests_served() const;

  /// Stops accepting, closes live connections, joins workers. Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(net::Socket socket);
  [[nodiscard]] std::string respond(const std::string& request_line) const;

  void refresh_process_metrics() const;

  // The built-in "process" source's registry; appended to sources_ in the
  // ctor so every scrape path (text + JSON) carries it automatically.
  // Mutable: refreshed from const render paths, like any refresh hook.
  mutable MetricsRegistry process_registry_;
  std::chrono::steady_clock::time_point started_at_;

  std::vector<ScrapeSource> sources_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  mutable std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// Fetches `path` (e.g. "/metrics") from a ScrapeEndpoint-style HTTP
/// server on 127.0.0.1:`port` and returns the response body. Throws
/// ProtocolError on connection failure or a non-200 status. Used by the
/// self-scraping example and the CLI; doubles as a minimal HTTP client
/// for tests.
[[nodiscard]] std::string http_get(std::uint16_t port, const std::string& path);

}  // namespace rsse::obs
