#include "obs/slow_log.h"

namespace rsse::obs {

bool SlowQueryLog::maybe_record(const std::string& operation, double seconds,
                                std::vector<Span> spans, const std::string& tenant) {
  const std::uint64_t threshold = threshold_ns_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (seconds * 1e9 < static_cast<double>(threshold)) return false;

  SlowQueryEntry entry;
  entry.at_ns = now_ns();
  entry.operation = operation;
  entry.tenant = tenant;
  entry.seconds = seconds;
  entry.spans = std::move(spans);

  total_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard lock(mutex_);
  if (entries_.size() >= capacity_ && !entries_.empty()) {
    entries_.erase(entries_.begin());
  }
  entries_.push_back(std::move(entry));
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  const std::lock_guard lock(mutex_);
  return entries_;
}

void SlowQueryLog::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
}

}  // namespace rsse::obs
