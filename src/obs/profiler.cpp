#include "obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "util/errors.h"

// ---------------------------------------------------------------------------
// Allocation tracking: a global operator new/delete replacement that
// bumps a thread-local counter when tracking is on. Malloc-backed, so
// ASan/TSan still see every allocation through their malloc interceptors.
// Linking rule: any binary that pulls in this translation unit (anything
// using the profiler) gets the replacement for ALL its allocations; the
// counter costs one relaxed load per allocation when tracking is off.
// ---------------------------------------------------------------------------

namespace {

constinit std::atomic<bool> g_alloc_tracking{false};
// Trivially-initialized thread_local: safe to touch from operator new
// even during thread setup/teardown (no dynamic TLS constructors).
constinit thread_local std::uint64_t tl_allocations = 0;

void* allocate(std::size_t size, std::size_t alignment) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = nullptr;
    if (alignment == 0) {
      ptr = std::malloc(size);
    } else if (posix_memalign(&ptr, alignment, size) != 0) {
      ptr = nullptr;
    }
    if (ptr != nullptr) {
      if (g_alloc_tracking.load(std::memory_order_relaxed)) ++tl_allocations;
      return ptr;
    }
    // Standard new-handler protocol: give the handler a chance to free
    // memory, fail only when there is none.
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* allocate_or_throw(std::size_t size, std::size_t alignment) {
  void* ptr = allocate(size, alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return allocate_or_throw(size, 0); }
void* operator new[](std::size_t size) { return allocate_or_throw(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return allocate_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return allocate_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return allocate(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return allocate(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return allocate(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return allocate(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace rsse::obs {
namespace {

// The innermost open scope of this thread — the call-frame stack.
constinit thread_local ProfileScope* tl_current_scope = nullptr;

std::uint64_t now_ns(clockid_t clock) {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t wall_now_ns() { return now_ns(CLOCK_MONOTONIC); }
std::uint64_t cpu_now_ns() { return now_ns(CLOCK_THREAD_CPUTIME_ID); }

}  // namespace

std::uint64_t thread_allocation_count() { return tl_allocations; }

Profiler::Profiler() : registry_(std::make_unique<MetricsRegistry>()) {}

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

Profiler::StageId Profiler::stage(const std::string& name) {
  // Lock-free fast path over already-published stages; callers typically
  // cache the id in a function-local static, so even this is cold.
  const std::uint32_t published = num_stages_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < published; ++i) {
    if (stages_[i].load(std::memory_order_relaxed)->name == name) return i;
  }
  const std::lock_guard lock(mutex_);
  const auto count = num_stages_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (stages_[i].load(std::memory_order_relaxed)->name == name) return i;
  }
  detail::require(count < kMaxStages, "Profiler: too many stages");
  auto stage = std::make_unique<Stage>();
  stage->name = name;
  const Labels labels{{"stage", name}};
  stage->calls = &registry_->counter("rsse_profile_stage_calls_total",
                                     "Times the stage ran", labels);
  stage->wall_ns =
      &registry_->counter("rsse_profile_stage_wall_ns_total",
                          "Wall time inside the stage, nested stages included",
                          labels);
  stage->self_wall_ns = &registry_->counter(
      "rsse_profile_stage_self_wall_ns_total",
      "Wall time inside the stage, nested stages excluded", labels);
  stage->cpu_ns = &registry_->counter(
      "rsse_profile_stage_cpu_ns_total",
      "Thread CPU time inside the stage (CLOCK_THREAD_CPUTIME_ID)", labels);
  stage->allocations = &registry_->counter(
      "rsse_profile_stage_allocations_total",
      "Heap allocations (operator new calls) inside the stage", labels);
  stage->seconds = &registry_->histogram(
      "rsse_profile_stage_seconds", "Per-call wall time of the stage",
      log_bounds(1e-7, 1e2, 3), labels);
  stages_[count].store(stage.get(), std::memory_order_release);
  owned_.push_back(std::move(stage));
  num_stages_.store(count + 1, std::memory_order_release);
  return count;
}

void Profiler::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  // Allocation tracking is a process-wide switch: enabling any profiler
  // turns it on (the counter is per-thread and diffed per scope, so
  // unrelated profilers cannot corrupt each other's numbers).
  g_alloc_tracking.store(on, std::memory_order_relaxed);
}

std::vector<Profiler::StageSnapshot> Profiler::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<StageSnapshot> out;
  out.reserve(owned_.size());
  for (const auto& stage : owned_) {
    StageSnapshot s;
    s.name = stage->name;
    s.calls = stage->calls->value();
    s.wall_seconds = 1e-9 * static_cast<double>(stage->wall_ns->value());
    s.self_wall_seconds =
        1e-9 * static_cast<double>(stage->self_wall_ns->value());
    s.cpu_seconds = 1e-9 * static_cast<double>(stage->cpu_ns->value());
    s.allocations = stage->allocations->value();
    out.push_back(std::move(s));
  }
  return out;
}

std::string Profiler::report() const {
  std::vector<StageSnapshot> stages = snapshot();
  std::erase_if(stages, [](const StageSnapshot& s) { return s.calls == 0; });
  if (stages.empty()) return "";
  std::sort(stages.begin(), stages.end(),
            [](const StageSnapshot& a, const StageSnapshot& b) {
              return a.self_wall_seconds > b.self_wall_seconds;
            });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %10s %12s %12s %12s %10s\n", "stage",
                "calls", "wall ms", "self ms", "cpu ms", "allocs");
  out += line;
  for (const StageSnapshot& s : stages) {
    std::snprintf(line, sizeof(line),
                  "%-24s %10llu %12.3f %12.3f %12.3f %10llu\n", s.name.c_str(),
                  static_cast<unsigned long long>(s.calls),
                  1e3 * s.wall_seconds, 1e3 * s.self_wall_seconds,
                  1e3 * s.cpu_seconds,
                  static_cast<unsigned long long>(s.allocations));
    out += line;
  }
  return out;
}

void Profiler::reset() { registry_->reset_values(); }

ProfileScope::ProfileScope(Profiler::StageId id, Profiler& profiler) {
  if (!profiler.enabled()) return;
  if (id >= Profiler::kMaxStages) return;  // not a valid stage id
  profiler_ = &profiler;
  id_ = id;
  parent_ = tl_current_scope;
  tl_current_scope = this;
  start_allocations_ = tl_allocations;
  start_cpu_ns_ = cpu_now_ns();
  start_wall_ns_ = wall_now_ns();  // last: excludes the other reads
}

void ProfileScope::finish() {
  if (profiler_ == nullptr) return;
  const std::uint64_t wall = wall_now_ns() - start_wall_ns_;
  const std::uint64_t cpu = cpu_now_ns() - start_cpu_ns_;
  const std::uint64_t allocations = tl_allocations - start_allocations_;
  const std::uint64_t self = wall >= child_wall_ns_ ? wall - child_wall_ns_ : 0;
  Profiler::Stage* stage =
      profiler_->stages_[id_].load(std::memory_order_acquire);
  if (stage != nullptr) {
    stage->calls->inc();
    stage->wall_ns->inc(wall);
    stage->self_wall_ns->inc(self);
    stage->cpu_ns->inc(cpu);
    stage->allocations->inc(allocations);
    stage->seconds->observe(1e-9 * static_cast<double>(wall));
  }
  tl_current_scope = parent_;
  if (parent_ != nullptr) parent_->child_wall_ns_ += wall;
  profiler_ = nullptr;
}

#ifndef RSSE_BUILD_VERSION
#define RSSE_BUILD_VERSION "dev"
#endif
#ifndef RSSE_BUILD_COMMIT
#define RSSE_BUILD_COMMIT "unknown"
#endif

void register_build_info(MetricsRegistry& registry) {
  std::string compiler;
#if defined(__clang__)
  compiler = "clang " + std::to_string(__clang_major__) + "." +
             std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  compiler = "gcc " + std::to_string(__GNUC__) + "." +
             std::to_string(__GNUC_MINOR__);
#else
  compiler = "unknown";
#endif
  registry
      .gauge("rsse_build_info",
             "Build identity: constant 1 with version/commit/compiler labels",
             {{"version", RSSE_BUILD_VERSION},
              {"commit", RSSE_BUILD_COMMIT},
              {"compiler", compiler}})
      .set(1);
}

}  // namespace rsse::obs
