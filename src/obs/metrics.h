// The unified metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer of the serving system (cloud server,
// network front end, cluster coordinator, replica sets).
//
// Design constraints, in order:
//   * Lock-free hot path. Recording a sample is a relaxed atomic add on a
//     pre-registered instrument — no map lookup, no string formatting, no
//     mutex — so the request path pays nanoseconds for its accounting.
//     Registration (name + labels -> instrument) happens once at
//     construction time under a mutex and returns a stable reference.
//   * One observability surface. The same registry renders Prometheus
//     text exposition (for the HTTP scrape endpoint), a JSON snapshot
//     (for tooling), and answers the kStats protocol message, so every
//     export path agrees by construction.
//   * Content-free. Metric names and label values are chosen by the code,
//     never derived from query content: counting requests, bytes and
//     service times reveals nothing the honest-but-curious server does
//     not already see. Trapdoor labels and ciphertexts never enter a
//     metric label.
//
// Histogram quantiles delegate to util/histogram's binned_quantile — the
// single binned-quantile implementation in the library (see that header).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rsse::obs {

/// Label set of one series: ordered (key, value) pairs.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing count. Lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down. Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (lock-free CAS max) — how
  /// high-water marks (peak in-flight requests, peak queue depth) are
  /// recorded without a mutex on the hot path.
  void max_with(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A gauge holding a floating-point value (entropies, ratios). Lock-free.
/// Renders as a Prometheus gauge alongside the integer Gauge.
class DoubleGauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A histogram over fixed, ascending upper bucket bounds (Prometheus
/// semantics: bucket i counts observations <= bounds[i]; one implicit
/// +Inf bucket catches the rest). observe() is lock-free: a binary search
/// over the immutable bounds, one relaxed bucket add, one CAS-loop add to
/// the running sum.
class HistogramMetric {
 public:
  /// Throws InvalidArgument when `bounds` is empty or not strictly
  /// ascending.
  explicit HistogramMetric(std::vector<double> bounds);

  /// Records one observation.
  void observe(double value);

  /// The configured finite upper bounds.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket counts (bounds().size() + 1 entries; last = +Inf bucket).
  /// Weakly consistent under concurrent observation, like every snapshot
  /// here — fine for monitoring.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Total observations.
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all observed values.
  [[nodiscard]] double sum() const;

  /// The q-quantile of the binned distribution, linearly interpolated
  /// inside the crossing bucket (util/histogram::binned_quantile).
  /// Observations above the top bound clamp to it — quantiles never
  /// extrapolate past the configured range. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Zeroes all buckets, the count and the sum.
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-spaced bounds covering [lo, hi] with `per_decade` buckets per
/// decade — the standard latency layout (default: 1e-7 s .. 1e2 s).
std::vector<double> log_bounds(double lo = 1e-7, double hi = 1e2,
                               std::size_t per_decade = 10);

/// The registry: metric families (name + help + type) each holding one
/// series per distinct label set. Look up an instrument once, keep the
/// reference (stable for the registry's lifetime), record lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the counter series `name`+`labels`. Repeated
  /// calls with the same name and labels return the same instance; a name
  /// registered with a different metric type throws InvalidArgument, as
  /// does an invalid metric/label name ([a-zA-Z_][a-zA-Z0-9_]*).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});

  /// Registers (or finds) the gauge series `name`+`labels`.
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});

  /// Registers (or finds) the floating-point gauge series `name`+`labels`
  /// (Prometheus type "gauge"; a family is either all-integer or
  /// all-double — mixing the two under one name throws).
  DoubleGauge& double_gauge(const std::string& name, const std::string& help,
                            const Labels& labels = {});

  /// Registers (or finds) the histogram series `name`+`labels` over
  /// `bounds` (all series of one family must share the bounds).
  HistogramMetric& histogram(const std::string& name, const std::string& help,
                             const std::vector<double>& bounds,
                             const Labels& labels = {});

  /// Number of registered metric families.
  [[nodiscard]] std::size_t family_count() const;

  /// Caps the number of distinct label sets one family may hold. Once a
  /// family is at the cap, a NEW label set registers against a single
  /// shared series whose label values are all "overflow" (created on
  /// first overflow; label keys are preserved) instead of growing the
  /// family — so label values fed from external input (tenant ids,
  /// node names) cannot grow the registry without bound. Existing
  /// series are never evicted; unlabeled series are exempt. 0 disables
  /// the cap. Default: 256 per family.
  void set_label_cardinality_cap(std::size_t cap);
  [[nodiscard]] std::size_t label_cardinality_cap() const;

  /// The label-set count of family `name` (0 when unregistered) —
  /// observability for the cap itself.
  [[nodiscard]] std::size_t series_count(const std::string& name) const;

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE headers
  /// per family, one sample line per series (histograms expand into
  /// _bucket/_sum/_count). `extra` labels are appended to every series —
  /// how a multi-node process distinguishes its sources.
  [[nodiscard]] std::string render_prometheus(const Labels& extra = {}) const;

  /// JSON snapshot: {"families":[{name, type, help, series:[...]}]}.
  [[nodiscard]] std::string render_json() const;

  /// Zeroes every instrument's value. Registration survives (references
  /// stay valid) — this resets measurements, not structure.
  void reset_values();

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<DoubleGauge> double_gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<Series> series;
  };

  Family& family_of(const std::string& name, const std::string& help, Type type);
  Series& series_of(Family& family, const Labels& labels);

  mutable std::mutex mutex_;  // registration + render; never on record paths
  std::vector<Family> families_;  // registration order = render order
  std::size_t cardinality_cap_ = 256;  // distinct label sets per family
};

}  // namespace rsse::obs
