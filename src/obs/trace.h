// Distributed tracing for ranked queries: one trace per query, one span
// per hop (client decode, coordinator, replica attempt, server handler,
// index rank), with timestamped events for the interesting transitions
// (retry, failover, deadline expiry).
//
// The model is deliberately small:
//   * TraceContext — the 17 bytes that ride the wire: trace id, parent
//     span id, sampled flag. Attached to a net::frame request when the
//     caller traces; absent frames are byte-identical to the old format.
//   * Span — what a node records locally: ids, name, node, status,
//     start/end timestamps (steady-clock nanoseconds, meaningful only
//     relative to other spans from the same process) and a list of
//     events.
//   * TraceRecorder — a thread-safe sink the query's spans accumulate
//     into. Remote spans come back piggybacked on the response frame and
//     are merged by the caller.
//   * SpanScope — the RAII recording handle. Null-recorder-safe: with no
//     recorder attached every operation is a no-op, so traced code paths
//     cost nothing when tracing is off.
//
// Privacy: spans carry operation names, node names, sizes and timings —
// never plaintext keywords, scores, or ciphertext bytes. The trapdoor
// label a server sees in a traced request is exactly what it sees in the
// untraced request; tracing adds no leakage beyond timing it already had.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace rsse::obs {

/// Steady-clock timestamp in nanoseconds. Monotonic within a process.
[[nodiscard]] std::uint64_t now_ns();

/// Returns a process-unique, nonzero span/trace id.
[[nodiscard]] std::uint64_t next_span_id();

/// The trace context that crosses the wire with a request.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;

  /// Encoded size on the wire: 8 + 8 + 1.
  static constexpr std::size_t kWireSize = 17;

  /// True when this context carries a live trace.
  [[nodiscard]] bool active() const { return sampled && trace_id != 0; }

  /// Appends the 17-byte wire form to `out`.
  void encode(Bytes& out) const;

  /// Parses the wire form. Throws ParseError on short input.
  static TraceContext decode(ByteReader& reader);
};

/// A timestamped note inside a span ("retry", "failover", ...).
struct SpanEvent {
  std::uint64_t at_ns = 0;
  std::string name;
  std::string detail;
};

/// One timed operation in a trace.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;    // operation, e.g. "coordinator.ranked_search"
  std::string node;    // where it ran, e.g. "shard1/replica0"
  std::string status = "ok";
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<SpanEvent> events;
};

/// Serializes spans for the wire (response piggyback, kTrace payloads).
[[nodiscard]] Bytes serialize_spans(const std::vector<Span>& spans);

/// Parses serialize_spans output. Throws ParseError on malformed input.
[[nodiscard]] std::vector<Span> deserialize_spans(BytesView bytes);

/// Thread-safe span sink for one query. Scatter-gather workers and the
/// response-merge path add spans concurrently.
class TraceRecorder {
 public:
  /// Starts a recorder with a fresh trace id.
  TraceRecorder() : trace_id_(next_span_id()) {}

  /// Adopts an existing trace id (server side of a propagated trace).
  explicit TraceRecorder(std::uint64_t trace_id) : trace_id_(trace_id) {}

  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  void add(Span span);
  void add_all(std::vector<Span> spans);

  /// All spans recorded so far, sorted by start timestamp.
  [[nodiscard]] std::vector<Span> spans() const;

 private:
  std::uint64_t trace_id_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

/// RAII span handle. Records into `recorder` on destruction (or an
/// explicit finish()); with a null recorder every member is a no-op.
class SpanScope {
 public:
  /// Opens a span named `name` on `node`, parented to `parent_span_id`
  /// (0 = root). A null recorder yields an inert scope.
  SpanScope(TraceRecorder* recorder, std::string name, std::string node,
            std::uint64_t parent_span_id = 0);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  SpanScope(SpanScope&& other) noexcept;
  SpanScope& operator=(SpanScope&& other) noexcept;

  /// True when backed by a recorder (tracing on).
  [[nodiscard]] bool active() const { return recorder_ != nullptr; }

  /// This span's id (0 when inert).
  [[nodiscard]] std::uint64_t span_id() const { return span_.span_id; }

  /// Context to propagate to a child hop: same trace, this span as parent.
  [[nodiscard]] TraceContext context() const;

  /// Adds a timestamped event.
  void event(const std::string& name, const std::string& detail = "");

  /// Overrides the final status (default "ok").
  void set_status(const std::string& status);

  /// Closes and records the span now (idempotent).
  void finish();

 private:
  TraceRecorder* recorder_ = nullptr;
  Span span_;
};

/// Renders spans as an indented tree with millisecond offsets relative to
/// the earliest span — the `rsse trace` output.
[[nodiscard]] std::string format_trace(const std::vector<Span>& spans);

}  // namespace rsse::obs
