// Slow-query log: a bounded ring of the most recent requests that ran
// over a configurable latency threshold, each with the trace spans that
// were recorded for it (when the request was traced). The `rsse trace`
// CLI and the kTrace protocol message read from here, so an operator can
// ask a live server "show me where your slow queries spent their time"
// without having had tracing armed in advance on the client.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rsse::obs {

/// One over-threshold request.
struct SlowQueryEntry {
  std::uint64_t at_ns = 0;      // steady-clock capture time
  std::string operation;        // e.g. "ranked_search"
  std::string tenant;           // owning tenant ("" on single-owner servers)
  double seconds = 0.0;         // observed handler latency
  std::vector<Span> spans;      // the request's trace (empty if untraced)
};

/// Thread-safe bounded slow-query ring. Threshold 0 disables recording
/// (the default — operators opt in via `rsse serve --slow-ms`).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Sets the threshold in milliseconds (0 = disabled).
  void set_threshold_ms(double ms) { threshold_ns_.store(static_cast<std::uint64_t>(ms * 1e6)); }

  /// The current threshold in milliseconds.
  [[nodiscard]] double threshold_ms() const {
    return static_cast<double>(threshold_ns_.load()) / 1e6;
  }

  /// Records the request iff the threshold is set and `seconds` exceeds
  /// it. Returns true when recorded. `tenant` attributes the entry on
  /// multi-tenant hosts (empty elsewhere).
  bool maybe_record(const std::string& operation, double seconds,
                    std::vector<Span> spans, const std::string& tenant = {});

  /// The retained entries, oldest first.
  [[nodiscard]] std::vector<SlowQueryEntry> entries() const;

  /// Total entries ever recorded (including ones evicted from the ring).
  [[nodiscard]] std::uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Drops all retained entries (counters keep counting).
  void clear();

 private:
  std::size_t capacity_;
  std::atomic<std::uint64_t> threshold_ns_{0};
  std::atomic<std::uint64_t> total_{0};
  mutable std::mutex mutex_;
  std::vector<SlowQueryEntry> entries_;  // ring, oldest at front
};

}  // namespace rsse::obs
