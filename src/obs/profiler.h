// Scoped stage profiler: attributes wall time, thread CPU time
// (CLOCK_THREAD_CPUTIME_ID) and heap allocation counts to named stages
// of the pipeline (opse/split, opse/hgd_sample, crypto/tape_gen,
// index/build_row, server/parse, server/rank, server/serialize,
// cluster/merge, ...).
//
// Usage at an instrumentation site:
//
//   static const auto kStage = obs::Profiler::global().stage("server/rank");
//   ...
//   obs::ProfileScope scope(kStage);
//
// Design constraints, in order:
//   * Near-zero cost when disabled. A ProfileScope on the disabled
//     profiler is one relaxed atomic load and a branch — a few ns — so
//     instrumentation can stay compiled into the crypto hot paths
//     (tests/test_profiler.cpp pins this with a counter-based check:
//     disabled scopes leave every instrument untouched).
//   * Aggregation lives in the existing MetricsRegistry. Each stage owns
//     counters (calls, wall ns, self wall ns, CPU ns, allocations) and a
//     latency histogram, all labelled {stage="..."}, so profiles render
//     through the same Prometheus/JSON scrape surfaces as every other
//     metric and need no second export path.
//   * Correct nesting without heap frames. Scopes live on the call
//     stack; a thread-local pointer to the innermost open scope forms
//     the call-frame stack. A closing scope subtracts its children's
//     wall time to get self time, then credits its own total to the
//     parent. Threads are independent — the thread pool's workers each
//     carry their own chain.
//   * Content-free. Stage names are compile-time string literals chosen
//     by the code; no keyword, score, trapdoor or ciphertext ever
//     reaches a label (DESIGN.md §8).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rsse::obs {

/// The per-thread count of operator-new allocations, tracked only while
/// some profiler is enabled (the global operator new/delete replacement
/// lives in profiler.cpp). Monotone per thread; scopes diff it.
[[nodiscard]] std::uint64_t thread_allocation_count();

class ProfileScope;

/// A set of named stages aggregating into an owned MetricsRegistry.
/// Stage registration returns a small dense id; recording through a
/// ProfileScope is lock-free. Disabled by default.
class Profiler {
 public:
  using StageId = std::uint32_t;

  /// Stage ids are dense indices below this bound; exceeding it throws.
  static constexpr std::size_t kMaxStages = 256;

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler every instrumentation site records into.
  static Profiler& global();

  /// Registers (or finds) the stage `name` and returns its id. Safe to
  /// call concurrently; repeated calls return the same id. Instruments
  /// for the stage are created in the registry immediately, so a scrape
  /// shows the family (at zero) before the stage first runs.
  StageId stage(const std::string& name);

  /// Enables/disables recording. Also toggles allocation tracking in the
  /// operator-new hook. Scopes already open observe the state they were
  /// constructed under.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The registry holding the per-stage instruments — hand it to a
  /// ScrapeEndpoint or render it directly.
  [[nodiscard]] MetricsRegistry& registry() { return *registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return *registry_; }

  /// Aggregated view of one stage, read from the registry instruments.
  struct StageSnapshot {
    std::string name;
    std::uint64_t calls = 0;
    double wall_seconds = 0.0;       // inclusive of nested stages
    double self_wall_seconds = 0.0;  // exclusive
    double cpu_seconds = 0.0;        // thread CPU, inclusive
    std::uint64_t allocations = 0;   // operator-new calls, inclusive
  };

  /// Snapshot of every registered stage, registration order.
  [[nodiscard]] std::vector<StageSnapshot> snapshot() const;

  /// Human-readable per-stage breakdown (sorted by self wall time), the
  /// table `rsse trace`/slow-query output appends. Empty string when no
  /// stage has run.
  [[nodiscard]] std::string report() const;

  /// Zeroes every instrument. Stage registration (ids, references)
  /// survives.
  void reset();

 private:
  friend class ProfileScope;

  struct Stage {
    std::string name;
    Counter* calls = nullptr;
    Counter* wall_ns = nullptr;
    Counter* self_wall_ns = nullptr;
    Counter* cpu_ns = nullptr;
    Counter* allocations = nullptr;
    HistogramMetric* seconds = nullptr;
  };

  std::atomic<bool> enabled_{false};
  std::unique_ptr<MetricsRegistry> registry_;
  // stages_[id] is set exactly once (under mutex_) and then immutable;
  // the hot path reads it with a relaxed load.
  std::array<std::atomic<Stage*>, kMaxStages> stages_{};
  std::atomic<std::uint32_t> num_stages_{0};
  mutable std::mutex mutex_;                    // registration only
  std::vector<std::unique_ptr<Stage>> owned_;   // guarded by mutex_
};

/// RAII frame: opens the stage on construction, records on destruction
/// (or an explicit finish()). Must be destroyed on the constructing
/// thread, in LIFO order with any nested scopes — i.e. used as a stack
/// variable, which is the only way it is meant to be used.
class ProfileScope {
 public:
  explicit ProfileScope(Profiler::StageId id,
                        Profiler& profiler = Profiler::global());
  ~ProfileScope() { finish(); }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  /// Records and closes the frame early. Idempotent.
  void finish();

 private:
  Profiler* profiler_ = nullptr;  // null = disabled at entry: no-op
  Profiler::StageId id_ = 0;
  ProfileScope* parent_ = nullptr;
  std::uint64_t start_wall_ns_ = 0;
  std::uint64_t start_cpu_ns_ = 0;
  std::uint64_t start_allocations_ = 0;
  std::uint64_t child_wall_ns_ = 0;  // accumulated by closing children
};

/// Registers the `rsse_build_info` gauge (value 1) with version, commit
/// and compiler labels on `registry` — the standard build-identity
/// series scrapers join against. Idempotent.
void register_build_info(MetricsRegistry& registry);

}  // namespace rsse::obs
