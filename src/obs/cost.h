// Deterministic cost accounting for the cryptographic hot paths.
//
// Wall-clock benchmarks drift with container noise; these counters do
// not. Each one counts a unit of *algorithmic* work — an HMAC
// compression, an HGD sample, a tape derivation, an OPM draw, a posting
// encrypted — so a perf regression in the OPM descent (the 57.5% of
// index build Table I attributes to it) shows up as a counter delta even
// when the timings are too noisy to call. The bench fleet snapshots
// these into every JSON document and scripts/bench_all.py gates >10%
// drift against the checked-in baseline.
//
// Header-only on purpose: the counters are inline atomics, so crypto and
// opse can increment them without linking rsse_obs (no new edges in the
// dependency graph). The increment is one relaxed fetch_add — noise next
// to the SHA-256 compression or lgamma evaluation it sits beside.
//
// Content-free, like every metric in this repo: counts of operations
// only, never keywords, scores or ciphertext bytes themselves.
#pragma once

#include <atomic>
#include <cstdint>

namespace rsse::obs::cost {

// One cache line apart would be nicer under heavy multi-thread build,
// but these sit next to ~microsecond crypto work; plain atomics are
// within noise.
inline constinit std::atomic<std::uint64_t> hmac_invocations{0};
inline constinit std::atomic<std::uint64_t> tape_derivations{0};
inline constinit std::atomic<std::uint64_t> hgd_samples{0};
inline constinit std::atomic<std::uint64_t> opm_mappings{0};
inline constinit std::atomic<std::uint64_t> split_cache_hits{0};
inline constinit std::atomic<std::uint64_t> entries_encrypted{0};
inline constinit std::atomic<std::uint64_t> bytes_encrypted{0};

inline void add(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

/// Weakly consistent snapshot of every cost counter (totals since
/// process start, or since reset_all()).
struct Snapshot {
  std::uint64_t hmac_invocations = 0;
  std::uint64_t tape_derivations = 0;
  std::uint64_t hgd_samples = 0;
  std::uint64_t opm_mappings = 0;
  std::uint64_t split_cache_hits = 0;
  std::uint64_t entries_encrypted = 0;
  std::uint64_t bytes_encrypted = 0;
};

inline Snapshot snapshot() {
  Snapshot s;
  s.hmac_invocations = hmac_invocations.load(std::memory_order_relaxed);
  s.tape_derivations = tape_derivations.load(std::memory_order_relaxed);
  s.hgd_samples = hgd_samples.load(std::memory_order_relaxed);
  s.opm_mappings = opm_mappings.load(std::memory_order_relaxed);
  s.split_cache_hits = split_cache_hits.load(std::memory_order_relaxed);
  s.entries_encrypted = entries_encrypted.load(std::memory_order_relaxed);
  s.bytes_encrypted = bytes_encrypted.load(std::memory_order_relaxed);
  return s;
}

/// The per-field difference `after - before` — what one measured section
/// of a bench cost. Fields are monotone between resets, so plain
/// subtraction is safe.
inline Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
  d.hmac_invocations = after.hmac_invocations - before.hmac_invocations;
  d.tape_derivations = after.tape_derivations - before.tape_derivations;
  d.hgd_samples = after.hgd_samples - before.hgd_samples;
  d.opm_mappings = after.opm_mappings - before.opm_mappings;
  d.split_cache_hits = after.split_cache_hits - before.split_cache_hits;
  d.entries_encrypted = after.entries_encrypted - before.entries_encrypted;
  d.bytes_encrypted = after.bytes_encrypted - before.bytes_encrypted;
  return d;
}

inline void reset_all() {
  hmac_invocations.store(0, std::memory_order_relaxed);
  tape_derivations.store(0, std::memory_order_relaxed);
  hgd_samples.store(0, std::memory_order_relaxed);
  opm_mappings.store(0, std::memory_order_relaxed);
  split_cache_hits.store(0, std::memory_order_relaxed);
  entries_encrypted.store(0, std::memory_order_relaxed);
  bytes_encrypted.store(0, std::memory_order_relaxed);
}

}  // namespace rsse::obs::cost
