#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <sstream>

#include "util/errors.h"

namespace rsse::obs {
namespace {

// Id generation: a process-random 64-bit base XOR a monotone counter.
// Ids need to be unique across the processes of one deployment (so spans
// from different nodes never collide in a merged trace), not secret —
// they label accounting records, they do not protect anything.
std::uint64_t id_base() {
  static const std::uint64_t base = [] {
    std::random_device rd;
    std::uint64_t v = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    return v | 1;  // never zero
  }();
  return base;
}

std::atomic<std::uint64_t> id_counter{1};

}  // namespace

std::uint64_t now_ns() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

std::uint64_t next_span_id() {
  const std::uint64_t n = id_counter.fetch_add(1, std::memory_order_relaxed);
  // Mix the counter across the word so ids from one process look distinct
  // from its neighbors' even when counters align.
  std::uint64_t id = id_base() ^ (n * 0x9e3779b97f4a7c15ULL);
  if (id == 0) id = 1;
  return id;
}

void TraceContext::encode(Bytes& out) const {
  append_u64(out, trace_id);
  append_u64(out, parent_span_id);
  out.push_back(sampled ? 1 : 0);
}

TraceContext TraceContext::decode(ByteReader& reader) {
  TraceContext ctx;
  ctx.trace_id = reader.read_u64();
  ctx.parent_span_id = reader.read_u64();
  const Bytes flag = reader.read(1);
  ctx.sampled = flag[0] != 0;
  return ctx;
}

Bytes serialize_spans(const std::vector<Span>& spans) {
  Bytes out;
  append_u64(out, spans.size());
  for (const Span& span : spans) {
    append_u64(out, span.trace_id);
    append_u64(out, span.span_id);
    append_u64(out, span.parent_span_id);
    append_lp(out, to_bytes(span.name));
    append_lp(out, to_bytes(span.node));
    append_lp(out, to_bytes(span.status));
    append_u64(out, span.start_ns);
    append_u64(out, span.end_ns);
    append_u64(out, span.events.size());
    for (const SpanEvent& event : span.events) {
      append_u64(out, event.at_ns);
      append_lp(out, to_bytes(event.name));
      append_lp(out, to_bytes(event.detail));
    }
  }
  return out;
}

std::vector<Span> deserialize_spans(BytesView bytes) {
  ByteReader reader(bytes);
  // 5 id/timestamp u64s + 3 empty length prefixes + event count = 60 min.
  const std::uint64_t n = reader.read_count(60);
  std::vector<Span> spans;
  spans.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Span span;
    span.trace_id = reader.read_u64();
    span.span_id = reader.read_u64();
    span.parent_span_id = reader.read_u64();
    span.name = to_string(reader.read_lp());
    span.node = to_string(reader.read_lp());
    span.status = to_string(reader.read_lp());
    span.start_ns = reader.read_u64();
    span.end_ns = reader.read_u64();
    const std::uint64_t events = reader.read_count(16);
    span.events.reserve(events);
    for (std::uint64_t e = 0; e < events; ++e) {
      SpanEvent event;
      event.at_ns = reader.read_u64();
      event.name = to_string(reader.read_lp());
      event.detail = to_string(reader.read_lp());
      span.events.push_back(std::move(event));
    }
    spans.push_back(std::move(span));
  }
  if (!reader.exhausted()) throw ParseError("spans: trailing bytes");
  return spans;
}

void TraceRecorder::add(Span span) {
  const std::lock_guard lock(mutex_);
  spans_.push_back(std::move(span));
}

void TraceRecorder::add_all(std::vector<Span> spans) {
  const std::lock_guard lock(mutex_);
  for (Span& span : spans) spans_.push_back(std::move(span));
}

std::vector<Span> TraceRecorder::spans() const {
  std::vector<Span> out;
  {
    const std::lock_guard lock(mutex_);
    out = spans_;
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

SpanScope::SpanScope(TraceRecorder* recorder, std::string name, std::string node,
                     std::uint64_t parent_span_id)
    : recorder_(recorder) {
  if (!recorder_) return;
  span_.trace_id = recorder_->trace_id();
  span_.span_id = next_span_id();
  span_.parent_span_id = parent_span_id;
  span_.name = std::move(name);
  span_.node = std::move(node);
  span_.start_ns = now_ns();
}

SpanScope::~SpanScope() { finish(); }

SpanScope::SpanScope(SpanScope&& other) noexcept
    : recorder_(other.recorder_), span_(std::move(other.span_)) {
  other.recorder_ = nullptr;
}

SpanScope& SpanScope::operator=(SpanScope&& other) noexcept {
  if (this != &other) {
    finish();
    recorder_ = other.recorder_;
    span_ = std::move(other.span_);
    other.recorder_ = nullptr;
  }
  return *this;
}

TraceContext SpanScope::context() const {
  TraceContext ctx;
  if (!recorder_) return ctx;
  ctx.trace_id = span_.trace_id;
  ctx.parent_span_id = span_.span_id;
  ctx.sampled = true;
  return ctx;
}

void SpanScope::event(const std::string& name, const std::string& detail) {
  if (!recorder_) return;
  span_.events.push_back(SpanEvent{now_ns(), name, detail});
}

void SpanScope::set_status(const std::string& status) {
  if (!recorder_) return;
  span_.status = status;
}

void SpanScope::finish() {
  if (!recorder_) return;
  span_.end_ns = now_ns();
  recorder_->add(std::move(span_));
  recorder_ = nullptr;
}

std::string format_trace(const std::vector<Span>& spans) {
  if (spans.empty()) return "(empty trace)\n";
  std::uint64_t t0 = spans.front().start_ns;
  for (const Span& span : spans) t0 = std::min(t0, span.start_ns);

  auto ms = [t0](std::uint64_t ns) {
    return static_cast<double>(ns - t0) / 1e6;
  };

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);

  // Render as a tree: children sorted by start under their parent.
  // Spans whose parent is absent (remote root, or the parent span was
  // dropped) render at top level.
  std::vector<const Span*> order(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) order[i] = &spans[i];
  std::stable_sort(order.begin(), order.end(), [](const Span* a, const Span* b) {
    return a->start_ns < b->start_ns;
  });

  auto has_parent = [&](const Span* s) {
    if (s->parent_span_id == 0) return false;
    return std::any_of(order.begin(), order.end(), [&](const Span* p) {
      return p->span_id == s->parent_span_id;
    });
  };

  std::vector<bool> printed(order.size(), false);
  // Recursive lambda via explicit stack-free structure: print `span` at
  // `depth`, then its children in start order.
  auto print_span = [&](auto&& self, std::size_t idx, std::size_t depth) -> void {
    const Span* span = order[idx];
    printed[idx] = true;
    const std::string indent(depth * 2, ' ');
    os << indent << "+ " << span->name << " [" << span->node << "] "
       << ms(span->start_ns) << "ms .. " << ms(span->end_ns) << "ms ("
       << (ms(span->end_ns) - ms(span->start_ns)) << "ms)";
    if (span->status != "ok") os << " status=" << span->status;
    os << "\n";
    for (const SpanEvent& event : span->events) {
      os << indent << "    @" << ms(event.at_ns) << "ms " << event.name;
      if (!event.detail.empty()) os << ": " << event.detail;
      os << "\n";
    }
    for (std::size_t j = 0; j < order.size(); ++j) {
      if (!printed[j] && order[j]->parent_span_id == span->span_id) {
        self(self, j, depth + 1);
      }
    }
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    if (!printed[i] && !has_parent(order[i])) print_span(print_span, i, 0);
  }
  // Orphans whose parent id points at a span that never arrived.
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (!printed[i]) print_span(print_span, i, 0);
  }
  return os.str();
}

}  // namespace rsse::obs
