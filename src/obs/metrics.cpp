#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "util/errors.h"
#include "util/histogram.h"

namespace rsse::obs {
namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name.front())) || name.front() == '_')) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

// Prometheus label values escape backslash, double-quote and newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// JSON string escape (control characters, quote, backslash).
std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Formats a double the way Prometheus clients do: shortest round-trip-ish
// representation, +Inf for infinity.
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// Renders {a="x",b="y"} (empty string when there are no labels).
std::string label_block(const Labels& labels, const Labels& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto* set : {&labels, &extra}) {
    for (const auto& [key, value] : *set) {
      if (!first) out += ",";
      first = false;
      out += key + "=\"" + escape_label(value) + "\"";
    }
  }
  out += "}";
  return out;
}

// Same, with one extra label appended (histogram `le`).
std::string label_block_with(const Labels& labels, const Labels& extra,
                            const std::string& key, const std::string& value) {
  Labels merged = labels;
  merged.emplace_back(key, value);
  return label_block(merged, extra);
}

}  // namespace

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  detail::require(!bounds_.empty(), "HistogramMetric: bounds must be non-empty");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    detail::require(bounds_[i] < bounds_[i + 1],
                    "HistogramMetric: bounds must be strictly ascending");
  }
}

void HistogramMetric::observe(double value) {
  // Prometheus bucket semantics: bucket i counts values <= bounds_[i];
  // everything above the last finite bound lands in the +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> HistogramMetric::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double HistogramMetric::sum() const { return sum_.load(std::memory_order_relaxed); }

double HistogramMetric::quantile(double q) const {
  std::vector<std::uint64_t> counts = bucket_counts();
  // Fold the +Inf bucket into the last finite one so the quantile clamps
  // at the configured top bound instead of extrapolating to infinity.
  counts[counts.size() - 2] += counts.back();
  counts.pop_back();
  std::vector<double> edges;
  edges.reserve(bounds_.size() + 1);
  // The first bucket spans (-inf, bounds_[0]]; anchor its lower edge at 0
  // for non-negative quantities (latencies, sizes) — or at the bound
  // itself when the bound is negative, degenerating gracefully.
  edges.push_back(std::min(0.0, bounds_.front()));
  // Keep edges strictly ascending even when bounds_.front() == 0.
  if (edges.front() == bounds_.front()) edges.front() = bounds_.front() - 1.0;
  for (double b : bounds_) edges.push_back(b);
  return binned_quantile(edges, counts, q);
}

void HistogramMetric::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> log_bounds(double lo, double hi, std::size_t per_decade) {
  detail::require(lo > 0 && hi > lo, "log_bounds: need 0 < lo < hi");
  detail::require(per_decade > 0, "log_bounds: per_decade must be positive");
  std::vector<double> bounds;
  const double lg_lo = std::log10(lo);
  const double lg_hi = std::log10(hi);
  const auto steps =
      static_cast<std::size_t>(std::ceil((lg_hi - lg_lo) * static_cast<double>(per_decade) - 1e-9));
  bounds.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    const double lg = lg_lo + static_cast<double>(i) / static_cast<double>(per_decade);
    bounds.push_back(std::pow(10.0, std::min(lg, lg_hi)));
  }
  return bounds;
}

MetricsRegistry::Family& MetricsRegistry::family_of(const std::string& name,
                                                    const std::string& help,
                                                    Type type) {
  detail::require(valid_name(name), "MetricsRegistry: invalid metric name: " + name);
  for (auto& family : families_) {
    if (family.name == name) {
      detail::require(family.type == type,
                      "MetricsRegistry: metric re-registered with a different type: " + name);
      return family;
    }
  }
  families_.push_back(Family{name, help, type, {}});
  return families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series_of(Family& family, const Labels& labels) {
  for (const auto& [key, value] : labels) {
    detail::require(valid_name(key), "MetricsRegistry: invalid label name: " + key);
  }
  for (auto& series : family.series) {
    if (series.labels == labels) return series;
  }
  // A NEW labeled series past the cardinality cap collapses onto the
  // family's shared overflow series (all label values "overflow") so an
  // externally influenced label value (tenant id, peer name) cannot grow
  // the registry without bound. The overflow series itself may be the
  // cap-th + 1 entry.
  if (cardinality_cap_ != 0 && !labels.empty() &&
      family.series.size() >= cardinality_cap_) {
    Labels overflow = labels;
    for (auto& [key, value] : overflow) value = "overflow";
    for (auto& series : family.series) {
      if (series.labels == overflow) return series;
    }
    family.series.push_back(Series{std::move(overflow), nullptr, nullptr, nullptr, nullptr});
    return family.series.back();
  }
  family.series.push_back(Series{labels, nullptr, nullptr, nullptr, nullptr});
  return family.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  const std::lock_guard lock(mutex_);
  Series& series = series_of(family_of(name, help, Type::kCounter), labels);
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  const std::lock_guard lock(mutex_);
  Series& series = series_of(family_of(name, help, Type::kGauge), labels);
  detail::require(!series.double_gauge,
                  "MetricsRegistry: gauge re-registered with a different type: " + name);
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

DoubleGauge& MetricsRegistry::double_gauge(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels) {
  const std::lock_guard lock(mutex_);
  Series& series = series_of(family_of(name, help, Type::kGauge), labels);
  detail::require(!series.gauge,
                  "MetricsRegistry: gauge re-registered with a different type: " + name);
  if (!series.double_gauge) series.double_gauge = std::make_unique<DoubleGauge>();
  return *series.double_gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const std::string& help,
                                            const std::vector<double>& bounds,
                                            const Labels& labels) {
  const std::lock_guard lock(mutex_);
  Series& series = series_of(family_of(name, help, Type::kHistogram), labels);
  if (!series.histogram) series.histogram = std::make_unique<HistogramMetric>(bounds);
  return *series.histogram;
}

std::size_t MetricsRegistry::family_count() const {
  const std::lock_guard lock(mutex_);
  return families_.size();
}

void MetricsRegistry::set_label_cardinality_cap(std::size_t cap) {
  const std::lock_guard lock(mutex_);
  cardinality_cap_ = cap;
}

std::size_t MetricsRegistry::label_cardinality_cap() const {
  const std::lock_guard lock(mutex_);
  return cardinality_cap_;
}

std::size_t MetricsRegistry::series_count(const std::string& name) const {
  const std::lock_guard lock(mutex_);
  for (const auto& family : families_) {
    if (family.name == name) return family.series.size();
  }
  return 0;
}

std::string MetricsRegistry::render_prometheus(const Labels& extra) const {
  const std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& family : families_) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " ";
    switch (family.type) {
      case Type::kCounter: out += "counter\n"; break;
      case Type::kGauge: out += "gauge\n"; break;
      case Type::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& series : family.series) {
      switch (family.type) {
        case Type::kCounter:
          out += family.name + label_block(series.labels, extra) + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Type::kGauge:
          out += family.name + label_block(series.labels, extra) + " " +
                 (series.gauge ? std::to_string(series.gauge->value())
                               : format_double(series.double_gauge->value())) +
                 "\n";
          break;
        case Type::kHistogram: {
          const HistogramMetric& h = *series.histogram;
          const std::vector<std::uint64_t> counts = h.bucket_counts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out += family.name + "_bucket" +
                   label_block_with(series.labels, extra, "le",
                                    format_double(h.bounds()[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += family.name + "_bucket" +
                 label_block_with(series.labels, extra, "le", "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += family.name + "_sum" + label_block(series.labels, extra) + " " +
                 format_double(h.sum()) + "\n";
          out += family.name + "_count" + label_block(series.labels, extra) + " " +
                 std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  const std::lock_guard lock(mutex_);
  std::string out = "{\"families\":[";
  for (std::size_t f = 0; f < families_.size(); ++f) {
    const auto& family = families_[f];
    if (f > 0) out += ",";
    out += "{\"name\":\"" + escape_json(family.name) + "\",\"type\":\"";
    switch (family.type) {
      case Type::kCounter: out += "counter"; break;
      case Type::kGauge: out += "gauge"; break;
      case Type::kHistogram: out += "histogram"; break;
    }
    out += "\",\"help\":\"" + escape_json(family.help) + "\",\"series\":[";
    for (std::size_t s = 0; s < family.series.size(); ++s) {
      const auto& series = family.series[s];
      if (s > 0) out += ",";
      out += "{\"labels\":{";
      for (std::size_t l = 0; l < series.labels.size(); ++l) {
        if (l > 0) out += ",";
        out += "\"" + escape_json(series.labels[l].first) + "\":\"" +
               escape_json(series.labels[l].second) + "\"";
      }
      out += "},";
      switch (family.type) {
        case Type::kCounter:
          out += "\"value\":" + std::to_string(series.counter->value());
          break;
        case Type::kGauge:
          out += "\"value\":" + (series.gauge
                                     ? std::to_string(series.gauge->value())
                                     : format_double(series.double_gauge->value()));
          break;
        case Type::kHistogram: {
          const HistogramMetric& h = *series.histogram;
          out += "\"count\":" + std::to_string(h.count()) +
                 ",\"sum\":" + format_double(h.sum()) +
                 ",\"p50\":" + format_double(h.quantile(0.50)) +
                 ",\"p95\":" + format_double(h.quantile(0.95)) +
                 ",\"p99\":" + format_double(h.quantile(0.99));
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::reset_values() {
  const std::lock_guard lock(mutex_);
  for (auto& family : families_) {
    for (auto& series : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.double_gauge) series.double_gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

}  // namespace rsse::obs
