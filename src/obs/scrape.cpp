#include "obs/scrape.h"

#include <sys/socket.h>
#ifdef __linux__
#include <unistd.h>
#endif

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "net/socket.h"
#include "util/deadline.h"
#include "util/errors.h"

namespace rsse::obs {
namespace {

// Bounds on what we accept from a scraper: header block size and how
// long a request may take to arrive. Anything slower or larger is not a
// scraper; drop it.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr auto kRequestBudget = std::chrono::seconds(5);

std::string http_response(const std::string& status, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

// Reads one HTTP request head (through the blank line). Returns the raw
// head, or an empty string on EOF/overflow/timeout.
std::string read_request_head(const net::Socket& socket) {
  std::string head;
  const Deadline deadline = Deadline::after(kRequestBudget);
  std::uint8_t byte = 0;
  try {
    while (head.size() < kMaxRequestBytes) {
      if (!socket.recv_exact({&byte, 1}, deadline)) return "";
      head.push_back(static_cast<char>(byte));
      if (head.size() >= 4 && head.compare(head.size() - 4, 4, "\r\n\r\n") == 0) {
        return head;
      }
    }
  } catch (const Error&) {
    // mid-request EOF or deadline: treat as no request
  }
  return "";
}

}  // namespace

ScrapeEndpoint::ScrapeEndpoint(std::vector<ScrapeSource> sources, std::uint16_t port)
    : started_at_(std::chrono::steady_clock::now()), sources_(std::move(sources)) {
  detail::require(!sources_.empty(), "ScrapeEndpoint: need at least one source");
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    detail::require(sources_[i].registry != nullptr,
                    "ScrapeEndpoint: null registry source");
    detail::require(sources_[i].name != "process",
                    "ScrapeEndpoint: source name \"process\" is reserved");
    for (std::size_t j = i + 1; j < sources_.size(); ++j) {
      detail::require(sources_[i].name != sources_[j].name,
                      "ScrapeEndpoint: duplicate source name: " + sources_[i].name);
    }
  }
  // Pre-register the process gauges so the exposition is stable from the
  // first scrape, then append the built-in source.
  process_registry_.double_gauge("rsse_process_uptime_seconds",
                                 "Seconds since this scrape endpoint started");
  process_registry_.gauge("rsse_process_resident_memory_bytes",
                          "Resident set size of this process (0 off-Linux)");
  process_registry_.gauge("rsse_process_open_fds",
                          "Open file descriptors of this process (0 off-Linux)");
  sources_.push_back(ScrapeSource{
      "process", &process_registry_, [this] { refresh_process_metrics(); }});
  listener_ = std::make_unique<net::TcpListener>(port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ScrapeEndpoint::refresh_process_metrics() const {
  MetricsRegistry& self = process_registry_;
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_)
          .count();
  self.double_gauge("rsse_process_uptime_seconds",
                    "Seconds since this scrape endpoint started")
      .set(uptime);
#ifdef __linux__
  // statm: size resident shared text lib data dt, all in pages.
  std::int64_t resident_bytes = 0;
  if (std::ifstream statm("/proc/self/statm"); statm) {
    long long size_pages = 0;
    long long resident_pages = 0;
    if (statm >> size_pages >> resident_pages)
      resident_bytes = static_cast<std::int64_t>(resident_pages) *
                       static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
  }
  self.gauge("rsse_process_resident_memory_bytes",
             "Resident set size of this process (0 off-Linux)")
      .set(resident_bytes);
  std::int64_t open_fds = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd", ec)) {
    (void)entry;
    ++open_fds;
  }
  if (!ec)
    self.gauge("rsse_process_open_fds",
               "Open file descriptors of this process (0 off-Linux)")
        .set(open_fds);
#endif
}

ScrapeEndpoint::ScrapeEndpoint(const MetricsRegistry& registry, std::uint16_t port)
    : ScrapeEndpoint(std::vector<ScrapeSource>{{"metrics", &registry, {}}}, port) {}

ScrapeEndpoint::~ScrapeEndpoint() { stop(); }

std::uint16_t ScrapeEndpoint::port() const { return listener_->port(); }

std::uint64_t ScrapeEndpoint::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

void ScrapeEndpoint::stop() {
  if (!stopping_.exchange(true)) listener_->close();  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void ScrapeEndpoint::accept_loop() {
  while (!stopping_.load()) {
    net::Socket accepted = listener_->accept();
    if (!accepted.valid()) break;  // listener closed
    const std::lock_guard lock(workers_mutex_);
    if (stopping_.load()) break;
    // Workers are bounded: every connection either answers within the
    // request budget or times out, so stop() joins promptly.
    auto shared = std::make_shared<net::Socket>(std::move(accepted));
    workers_.emplace_back([this, shared] { serve_connection(std::move(*shared)); });
  }
}

void ScrapeEndpoint::serve_connection(net::Socket socket) {
  const std::string head = read_request_head(socket);
  if (head.empty()) return;
  const std::string request_line = head.substr(0, head.find("\r\n"));
  const std::string response = respond(request_line);
  requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    socket.send_all(to_bytes(response), Deadline::after(kRequestBudget));
    socket.shutdown_write();
  } catch (const Error&) {
    // scraper vanished mid-response; nothing to do
  }
}

std::string ScrapeEndpoint::respond(const std::string& request_line) const {
  // "GET <path> HTTP/1.1"
  const auto first_space = request_line.find(' ');
  const auto second_space = request_line.find(' ', first_space + 1);
  if (first_space == std::string::npos || second_space == std::string::npos ||
      request_line.substr(0, first_space) != "GET") {
    return http_response("405 Method Not Allowed", "text/plain",
                         "only GET is supported\n");
  }
  const std::string path =
      request_line.substr(first_space + 1, second_space - first_space - 1);

  if (path == "/metrics") {
    std::string body;
    for (const ScrapeSource& source : sources_) {
      if (source.refresh) source.refresh();
      body += source.registry->render_prometheus();
    }
    return http_response("200 OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/metrics.json") {
    std::string body = "{";
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (i > 0) body += ",";
      if (sources_[i].refresh) sources_[i].refresh();
      body += "\"" + sources_[i].name + "\":" + sources_[i].registry->render_json();
    }
    body += "}";
    return http_response("200 OK", "application/json", body);
  }
  if (path == "/healthz") {
    // Liveness only: the accept loop answering at all is the signal.
    return http_response("200 OK", "text/plain", "ok\n");
  }
  return http_response("404 Not Found", "text/plain",
                       "unknown path; valid paths: /metrics /metrics.json"
                       " /healthz\n");
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const Deadline deadline = Deadline::after(kRequestBudget);
  const net::Socket socket = net::tcp_connect(port, deadline);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  socket.send_all(to_bytes(request), deadline);

  // Read until EOF (the endpoint closes after each response).
  std::string response;
  std::uint8_t byte = 0;
  while (response.size() < 64 * 1024 * 1024) {
    try {
      if (!socket.recv_exact({&byte, 1}, deadline)) break;
    } catch (const Error&) {
      break;  // mid-stream close after the body is readable enough
    }
    response.push_back(static_cast<char>(byte));
  }

  const auto header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw ProtocolError("http_get: malformed response from scrape endpoint");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    throw ProtocolError("http_get: non-200 response: " + status_line);
  }
  return response.substr(header_end + 4);
}

}  // namespace rsse::obs
