// The scatter-gather coordinator: N CloudServer shards presented to
// DataUser as one logical server.
//
// The coordinator is itself a cloud::Transport, so every existing client
// (DataUser, RestrictedUser, the CLI) runs unchanged against a cluster —
// the same seam that lets one binary talk to an in-process Channel or a
// TCP RemoteChannel. Routing is leakage-free relative to a single server:
// the shard choice hashes the trapdoor label the queried server would see
// anyway, and the gathered per-shard top-k lists are merged by one-to-many
// OPM ciphertext order — the exact comparison a single RSSE server
// performs (Sec. IV), so the union of what N shards observe equals what
// one server observes, minus each shard seeing only its rows and files.
//
// Request routing:
//   RankedSearch / BasicEntries / BasicFiles — single-shard fast path to
//     the keyword's owner; file blobs the owner does not host are filled
//     in by a FetchFiles fan-out over the file-placement map.
//   MultiSearch — trapdoors grouped by owning shard; sub-queries fan out
//     in parallel on a util/thread_pool; per-shard results are k-way
//     merged by OPM order (conjunctive: intersect across groups, sum
//     aggregates; disjunctive: union, max aggregates — matching the
//     single-server semantics exactly).
//   FetchFiles — ids grouped by file shard, fetched in parallel,
//     reassembled in request order.
//   Update — the owner's delta is split by the same maps (rows by
//     keyword shard, file puts by file shard, tombstones broadcast to
//     every shard so each can suppress its own rows' postings), applied
//     in parallel, and the per-shard responses merged. Updates are
//     all-or-nothing: any shard failure fails the whole update (the
//     owner retries with the same delta_id; shards that already applied
//     it replay idempotently). Concurrent updates serialize coordinator-
//     side — one delta scatters at a time — so every shard applies
//     overlapping deltas in the same order.
//
// Failure handling: each shard is a ReplicaSet (replica failover with
// capped exponential backoff). When a whole shard stays down, multi-shard
// queries degrade gracefully — the merged response is returned with its
// `partial` flag set instead of failing the query — while single-shard
// queries have no sound fallback and surface the error.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/replica.h"
#include "cluster/shard_map.h"
#include "util/thread_pool.h"

namespace rsse::cluster {

/// Coordinator knobs.
struct CoordinatorOptions {
  RetryPolicy retry;
  std::size_t fanout_threads = 0;  ///< 0 = one per shard (capped at 16)
  /// File-blob fetches spanning at most this many shards run sequentially
  /// on the calling thread (a fetch is microseconds of shard work; pool
  /// scheduling costs more). Set to 0 to always fan out — worth it on
  /// high-latency transports.
  std::size_t parallel_fetch_threshold = 8;
  /// Whole-query budget applied to every call() (0 = unlimited). Composes
  /// with any deadline the caller passes explicitly — the tighter wins —
  /// and is shared by every sub-request a query fans out into, so a query
  /// can never outlive it no matter how many shards retry.
  std::chrono::milliseconds query_timeout{0};
};

/// The cluster-aware Transport implementation.
class ClusterCoordinator final : public cloud::Transport {
 public:
  /// Takes ownership of one ReplicaSet per shard; `shards.size()` must
  /// equal `manifest.num_shards` and every set must be non-empty.
  ClusterCoordinator(ClusterManifest manifest,
                     std::vector<std::unique_ptr<ReplicaSet>> shards,
                     CoordinatorOptions options = {});

  /// One logical RPC against the cluster (Transport contract). The
  /// effective budget is the tighter of `deadline` and
  /// options.query_timeout; it bounds the whole scatter-gather including
  /// replica retries, surfacing DeadlineExceeded instead of blocking.
  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override;

  /// Traced RPC: records a "coordinator.<type>" root span over the whole
  /// scatter-gather, with every shard sub-request contributing its
  /// replica.call / replica.attempt spans (plus server-side spans from
  /// trace-capable shards) parented under it. `trace` may be null.
  Bytes call(cloud::MessageType type, BytesView request, const Deadline& deadline,
             obs::TraceRecorder* trace, std::uint64_t parent_span_id) override;

  /// The routing geometry.
  [[nodiscard]] const ClusterManifest& manifest() const { return manifest_; }
  [[nodiscard]] const ShardMap& shard_map() const { return shard_map_; }

  /// Health-checks every replica of every shard; returns the number of
  /// shards with at least one live replica.
  std::size_t probe_shards();

  /// Per-shard observability.
  [[nodiscard]] ClusterMetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The coordinator's metric registry (rsse_cluster_* families,
  /// including every shard's ReplicaSet failure counters) — what a scrape
  /// endpoint or the kStats handler renders.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return metrics_.registry(); }

  /// The shard's replica group (failover counters for tests/benches).
  [[nodiscard]] const ReplicaSet& shard(std::size_t i) const { return *shards_[i]; }

 private:
  /// call() without the traffic accounting.
  Bytes dispatch(cloud::MessageType type, BytesView request, const Deadline& deadline,
                 obs::TraceRecorder* trace, std::uint64_t parent_span_id);

  /// One sub-request to a shard, with failover, metrics and timing.
  Bytes shard_call(std::size_t shard, cloud::MessageType type, BytesView request,
                   const Deadline& deadline, obs::TraceRecorder* trace,
                   std::uint64_t parent_span_id);

  cloud::RankedSearchResponse do_ranked_search(BytesView payload,
                                               const Deadline& deadline,
                                               obs::TraceRecorder* trace,
                                               std::uint64_t parent_span_id);
  cloud::RankedSearchResponse do_multi_search(BytesView payload,
                                              const Deadline& deadline,
                                              obs::TraceRecorder* trace,
                                              std::uint64_t parent_span_id);
  cloud::FetchFilesResponse do_fetch_files(const cloud::FetchFilesRequest& req,
                                           bool* degraded, const Deadline& deadline,
                                           obs::TraceRecorder* trace,
                                           std::uint64_t parent_span_id);
  cloud::UpdateResponse do_update(BytesView payload, const Deadline& deadline,
                                  obs::TraceRecorder* trace,
                                  std::uint64_t parent_span_id);

  /// Fills the pointed-at empty blobs by fetching from the owning file
  /// shards in parallel. `skip_shard` marks a shard whose empty answers
  /// are genuine absences (the responder itself) — pass num_shards to
  /// fetch everything. Sets *degraded when a file shard was unreachable.
  void fetch_and_fill(const std::vector<std::pair<std::uint64_t, Bytes*>>& missing,
                      std::size_t skip_shard, bool* degraded, const Deadline& deadline,
                      obs::TraceRecorder* trace, std::uint64_t parent_span_id);

  ClusterManifest manifest_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<ReplicaSet>> shards_;
  CoordinatorOptions options_;
  ThreadPool pool_;
  ClusterMetrics metrics_;
  // Serializes do_update: two overlapping deltas scattered concurrently
  // could reach shards in different orders, diverging per-shard sequence
  // assignment (a cross-delta tombstone/add pair for one file suppressed
  // on one shard, visible on another). Updates are rare; a mutex is
  // cheap insurance that every shard applies deltas in one order.
  std::mutex update_mutex_;
  // Cluster-wide transport counters in the same registry.
  obs::Counter* deadline_expiries_ = nullptr;
  obs::Counter* bytes_up_total_ = nullptr;
  obs::Counter* bytes_down_total_ = nullptr;
};

/// An in-process cluster: N CloudServer shards behind one coordinator
/// over accounted channels — the wiring tests, benches and the CLI use.
/// Real deployments build the coordinator over one ReplicaSet of
/// net::RemoteChannel endpoints per shard instead.
struct LocalCluster {
  ClusterManifest manifest;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;  ///< one per shard
  std::unique_ptr<ClusterCoordinator> coordinator;
};

/// Splits an outsourced deployment across `num_shards` in-process servers
/// (each shard fronted by `replicas` channels to the same server — the
/// in-process stand-in for replicated endpoints) and wires the
/// coordinator. Throws InvalidArgument on zero shards/replicas.
LocalCluster make_local_cluster(const sse::SecureIndex& index,
                                const std::map<std::uint64_t, Bytes>& files,
                                std::uint32_t num_shards, std::uint32_t replicas = 1,
                                CoordinatorOptions options = {});

}  // namespace rsse::cluster
