// The scatter-gather coordinator: N CloudServer shards presented to
// DataUser as one logical server.
//
// The coordinator is itself a cloud::Transport, so every existing client
// (DataUser, RestrictedUser, the CLI) runs unchanged against a cluster —
// the same seam that lets one binary talk to an in-process Channel or a
// TCP RemoteChannel. Routing is leakage-free relative to a single server:
// the shard choice hashes the trapdoor label the queried server would see
// anyway, and the gathered per-shard top-k lists are merged by one-to-many
// OPM ciphertext order — the exact comparison a single RSSE server
// performs (Sec. IV), so the union of what N shards observe equals what
// one server observes, minus each shard seeing only its rows and files.
//
// Request routing:
//   RankedSearch / BasicEntries / BasicFiles — single-shard fast path to
//     the keyword's owner; file blobs the owner does not host are filled
//     in by a FetchFiles fan-out over the file-placement map.
//   MultiSearch — trapdoors grouped by owning shard; sub-queries fan out
//     in parallel on a util/thread_pool; per-shard results are k-way
//     merged by OPM order (conjunctive: intersect across groups, sum
//     aggregates; disjunctive: union, max aggregates — matching the
//     single-server semantics exactly).
//   FetchFiles — ids grouped by file shard, fetched in parallel,
//     reassembled in request order.
//   Update — the owner's delta is split by the same maps (rows by
//     keyword shard, file puts by file shard, tombstones broadcast to
//     every shard so each can suppress its own rows' postings), applied
//     in parallel, and the per-shard responses merged. Updates are
//     all-or-nothing: any shard failure fails the whole update (the
//     owner retries with the same delta_id; shards that already applied
//     it replay idempotently). Concurrent updates serialize coordinator-
//     side — one delta scatters at a time — so every shard applies
//     overlapping deltas in the same order.
//
// Durable replication (deltas with a non-zero delta_id): each shard's
// sub-delta fans out to EVERY replica of the shard (ReplicaSet::call_all)
// and commits once RetryPolicy::write_quorum replicas ack (default: all
// the replicas targeted). A replica that misses a committed delta is
// marked stale — excluded from read routing and further live fan-out —
// and is repaired by the anti-entropy catch-up worker (enable_catch_up):
// a kDeltaBackfill WAL-suffix replay from the freshest live replica, or
// a full kSnapshot rebuild when the donor's retained log no longer
// reaches back (CatchUpOptions::install_snapshot). Deltas WITHOUT a
// delta_id cannot be deduplicated, so they keep the legacy pick-one
// path with failover.
//
// Failure handling: each shard is a ReplicaSet (replica failover with
// capped exponential backoff). When a whole shard stays down, multi-shard
// queries degrade gracefully — the merged response is returned with its
// `partial` flag set instead of failing the query — while single-shard
// queries have no sound fallback and surface the error.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cloud/cloud_server.h"
#include "cluster/metrics.h"
#include "cluster/replica.h"
#include "cluster/shard_map.h"
#include "util/thread_pool.h"

namespace rsse::cluster {

/// Coordinator knobs.
struct CoordinatorOptions {
  RetryPolicy retry;
  std::size_t fanout_threads = 0;  ///< 0 = one per shard (capped at 16)
  /// File-blob fetches spanning at most this many shards run sequentially
  /// on the calling thread (a fetch is microseconds of shard work; pool
  /// scheduling costs more). Set to 0 to always fan out — worth it on
  /// high-latency transports.
  std::size_t parallel_fetch_threshold = 8;
  /// Whole-query budget applied to every call() (0 = unlimited). Composes
  /// with any deadline the caller passes explicitly — the tighter wins —
  /// and is shared by every sub-request a query fans out into, so a query
  /// can never outlive it no matter how many shards retry.
  std::chrono::milliseconds query_timeout{0};
};

/// Anti-entropy knobs (ClusterCoordinator::enable_catch_up).
struct CatchUpOptions {
  /// kDeltaBackfill page size: WAL records fetched from the donor per
  /// round trip (0 = the donor's whole retained tail at once).
  std::uint64_t batch_records = 0;
  /// Fallback when the donor's retained WAL no longer reaches back to
  /// the lagging replica (the suffix was checkpointed away): invoked
  /// with the donor's full kSnapshot so the embedder can rebuild the
  /// replica's state — e.g. CloudServer::install_snapshot on the
  /// in-process server, or save + restart for an out-of-process one.
  /// Return true once installed; false (or an unset callback) leaves
  /// the replica stale until the next catch-up round.
  std::function<bool(std::size_t shard, std::size_t replica,
                     const cloud::SnapshotResponse& snapshot)>
      install_snapshot;
};

/// The cluster-aware Transport implementation.
class ClusterCoordinator final : public cloud::Transport {
 public:
  /// Takes ownership of one ReplicaSet per shard; `shards.size()` must
  /// equal `manifest.num_shards` and every set must be non-empty.
  ClusterCoordinator(ClusterManifest manifest,
                     std::vector<std::unique_ptr<ReplicaSet>> shards,
                     CoordinatorOptions options = {});

  /// Joins the anti-entropy worker (if enable_catch_up ran).
  ~ClusterCoordinator() override;

  /// One logical RPC against the cluster (Transport contract). The
  /// effective budget is the tighter of `deadline` and
  /// options.query_timeout; it bounds the whole scatter-gather including
  /// replica retries, surfacing DeadlineExceeded instead of blocking.
  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override;

  /// Traced RPC: records a "coordinator.<type>" root span over the whole
  /// scatter-gather, with every shard sub-request contributing its
  /// replica.call / replica.attempt spans (plus server-side spans from
  /// trace-capable shards) parented under it. `trace` may be null.
  Bytes call(cloud::MessageType type, BytesView request, const Deadline& deadline,
             obs::TraceRecorder* trace, std::uint64_t parent_span_id) override;

  /// The routing geometry.
  [[nodiscard]] const ClusterManifest& manifest() const { return manifest_; }
  [[nodiscard]] const ShardMap& shard_map() const { return shard_map_; }

  /// Health-checks every replica of every shard; returns the number of
  /// shards with at least one live replica.
  std::size_t probe_shards();

  /// Starts the background anti-entropy worker (modeled on
  /// seg::Compactor): every notify_catch_up() wakes it to probe each
  /// shard, pick the freshest live replica as donor, and replay the
  /// donor's WAL suffix (kDeltaBackfill → kUpdate, in sequence order) to
  /// every stale-but-alive replica, falling back to a full kSnapshot
  /// rebuild when the suffix was checkpointed away. The bulk copy runs
  /// off the update path; only the final drain — the step that flips a
  /// replica fresh — serializes with do_update, so live traffic never
  /// interleaves with a replica's replay. Call at most once; quorum
  /// misses notify the worker automatically.
  void enable_catch_up(CatchUpOptions options = {});

  /// Wakes the catch-up worker for a repair pass (no-op before
  /// enable_catch_up). Also call after restarting a dead replica — a
  /// replica that stays unreachable is left for the next notification
  /// rather than polled in a loop.
  void notify_catch_up();

  /// Blocks until the catch-up worker has no queued or running pass —
  /// the test/bench barrier for "replication has converged as far as it
  /// can".
  void wait_for_catch_up_idle();

  /// WAL records replayed to lagging replicas so far (anti-entropy).
  [[nodiscard]] std::uint64_t backfills_completed() const {
    return backfills_completed_.load();
  }

  /// Lagging replicas rebuilt from a full snapshot so far.
  [[nodiscard]] std::uint64_t snapshot_repairs_completed() const {
    return snapshot_repairs_.load();
  }

  /// Per-shard observability.
  [[nodiscard]] ClusterMetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The coordinator's metric registry (rsse_cluster_* families,
  /// including every shard's ReplicaSet failure counters) — what a scrape
  /// endpoint or the kStats handler renders.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return metrics_.registry(); }

  /// The shard's replica group (failover counters for tests/benches).
  [[nodiscard]] const ReplicaSet& shard(std::size_t i) const { return *shards_[i]; }

 private:
  /// call() without the traffic accounting. `tenant` is non-empty when
  /// the request arrived inside a kTenantScoped envelope: routing uses
  /// the unwrapped inner request, and every outbound sub-request is
  /// re-wrapped so tenant-host shards enforce their own admission
  /// control (the coordinator itself never sheds — quota state lives
  /// with the shards that do the work).
  Bytes dispatch(cloud::MessageType type, BytesView request, const Deadline& deadline,
                 obs::TraceRecorder* trace, std::uint64_t parent_span_id,
                 const std::string& tenant = {});

  /// One sub-request to a shard, with failover, metrics and timing.
  /// A non-empty `tenant` re-wraps the request into the envelope.
  Bytes shard_call(std::size_t shard, cloud::MessageType type, BytesView request,
                   const Deadline& deadline, obs::TraceRecorder* trace,
                   std::uint64_t parent_span_id, const std::string& tenant = {});

  cloud::RankedSearchResponse do_ranked_search(BytesView payload,
                                               const Deadline& deadline,
                                               obs::TraceRecorder* trace,
                                               std::uint64_t parent_span_id,
                                               const std::string& tenant);
  cloud::RankedSearchResponse do_multi_search(BytesView payload,
                                              const Deadline& deadline,
                                              obs::TraceRecorder* trace,
                                              std::uint64_t parent_span_id,
                                              const std::string& tenant);
  cloud::FetchFilesResponse do_fetch_files(const cloud::FetchFilesRequest& req,
                                           bool* degraded, const Deadline& deadline,
                                           obs::TraceRecorder* trace,
                                           std::uint64_t parent_span_id,
                                           const std::string& tenant);
  cloud::UpdateResponse do_update(BytesView payload, const Deadline& deadline,
                                  obs::TraceRecorder* trace,
                                  std::uint64_t parent_span_id,
                                  const std::string& tenant);

  /// Anti-entropy worker loop: waits for notify_catch_up, repairs every
  /// shard, publishes idleness.
  void catch_up_run();
  /// One repair pass over one shard; true when no replica is left stale.
  bool catch_up_shard(std::size_t shard);
  /// Replays donor WAL records to the laggard and flips it fresh under
  /// update_mutex_; true when the laggard fully converged.
  bool catch_up_replica(ReplicaSet& set, std::size_t shard, std::size_t donor,
                        std::size_t laggard, std::uint64_t cursor);
  /// One backfill drain: donor records from `cursor` replayed to the
  /// laggard in order. Returns the laggard's new sequence cursor, or 0
  /// when the donor's retained log no longer reaches back to `cursor`.
  std::uint64_t replay_backfill(ReplicaSet& set, std::size_t donor,
                                std::size_t laggard, std::uint64_t cursor);
  /// Full-snapshot fallback via CatchUpOptions::install_snapshot.
  bool snapshot_repair(ReplicaSet& set, std::size_t shard, std::size_t donor,
                       std::size_t laggard);

  /// Fills the pointed-at empty blobs by fetching from the owning file
  /// shards in parallel. `skip_shard` marks a shard whose empty answers
  /// are genuine absences (the responder itself) — pass num_shards to
  /// fetch everything. Sets *degraded when a file shard was unreachable.
  void fetch_and_fill(const std::vector<std::pair<std::uint64_t, Bytes*>>& missing,
                      std::size_t skip_shard, bool* degraded, const Deadline& deadline,
                      obs::TraceRecorder* trace, std::uint64_t parent_span_id,
                      const std::string& tenant);

  ClusterManifest manifest_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<ReplicaSet>> shards_;
  CoordinatorOptions options_;
  ThreadPool pool_;
  ClusterMetrics metrics_;
  // Serializes do_update: two overlapping deltas scattered concurrently
  // could reach shards in different orders, diverging per-shard sequence
  // assignment (a cross-delta tombstone/add pair for one file suppressed
  // on one shard, visible on another). Updates are rare; a mutex is
  // cheap insurance that every shard applies deltas in one order.
  std::mutex update_mutex_;
  // Cluster-wide transport counters in the same registry.
  obs::Counter* deadline_expiries_ = nullptr;
  obs::Counter* bytes_up_total_ = nullptr;
  obs::Counter* bytes_down_total_ = nullptr;
  obs::Counter* quorum_failures_ = nullptr;
  obs::Counter* backfill_records_counter_ = nullptr;
  obs::Counter* backfill_bytes_counter_ = nullptr;
  obs::Counter* snapshot_repairs_counter_ = nullptr;
  // Anti-entropy worker state (enable_catch_up), seg::Compactor-style.
  CatchUpOptions catch_up_options_;
  std::mutex cu_mutex_;
  std::condition_variable cu_cv_;
  bool cu_pending_ = false;  // a notification not yet picked up
  bool cu_working_ = false;  // a pass currently running
  bool cu_stop_ = false;
  std::atomic<std::uint64_t> backfills_completed_{0};
  std::atomic<std::uint64_t> snapshot_repairs_{0};
  // Last member: joins in the destructor before anything above dies.
  std::thread catch_up_thread_;
};

/// An in-process cluster: N CloudServer shards behind one coordinator
/// over accounted channels — the wiring tests, benches and the CLI use.
/// Real deployments build the coordinator over one ReplicaSet of
/// net::RemoteChannel endpoints per shard instead.
struct LocalCluster {
  ClusterManifest manifest;
  std::vector<std::unique_ptr<cloud::CloudServer>> servers;  ///< one per shard
  std::unique_ptr<ClusterCoordinator> coordinator;
};

/// Splits an outsourced deployment across `num_shards` in-process servers
/// (each shard fronted by `replicas` channels to the same server — the
/// in-process stand-in for replicated endpoints) and wires the
/// coordinator. Throws InvalidArgument on zero shards/replicas.
LocalCluster make_local_cluster(const sse::SecureIndex& index,
                                const std::map<std::uint64_t, Bytes>& files,
                                std::uint32_t num_shards, std::uint32_t replicas = 1,
                                CoordinatorOptions options = {});

}  // namespace rsse::cluster
