#include "cluster/shard_map.h"

#include "util/errors.h"

namespace rsse::cluster {

namespace {

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation. Used both
// to fold label bytes and to whiten sequential file ids; no cryptographic
// strength is needed — labels are already PRF outputs, and file ids are
// public to the server either way.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(std::uint32_t num_shards) : num_shards_(num_shards) {
  detail::require(num_shards > 0, "ShardMap: num_shards must be positive");
}

std::uint32_t ShardMap::shard_of_label(BytesView label) const {
  // Fold the label 8 bytes at a time (little-endian) through the mixer so
  // every byte influences the shard choice.
  std::uint64_t h = 0x6a09e667f3bcc908ULL;  // sqrt(2) fraction, arbitrary
  std::uint64_t chunk = 0;
  std::size_t filled = 0;
  for (const std::uint8_t byte : label) {
    chunk |= static_cast<std::uint64_t>(byte) << (8 * filled);
    if (++filled == 8) {
      h = mix64(h ^ chunk);
      chunk = 0;
      filled = 0;
    }
  }
  if (filled > 0) h = mix64(h ^ chunk ^ (static_cast<std::uint64_t>(filled) << 56));
  return static_cast<std::uint32_t>(h % num_shards_);
}

std::uint32_t ShardMap::shard_of_file(std::uint64_t id) const {
  return static_cast<std::uint32_t>(mix64(id) % num_shards_);
}

std::vector<sse::SecureIndex> ShardMap::split_index(
    const sse::SecureIndex& index) const {
  std::vector<sse::SecureIndex> shards(num_shards_);
  for (const Bytes& label : index.labels()) {
    const std::vector<Bytes>* entries = index.row(label);
    shards[shard_of_label(label)].add_row(label, *entries);
  }
  return shards;
}

std::vector<std::map<std::uint64_t, Bytes>> ShardMap::split_files(
    const std::map<std::uint64_t, Bytes>& files) const {
  std::vector<std::map<std::uint64_t, Bytes>> shards(num_shards_);
  for (const auto& [id, blob] : files) shards[shard_of_file(id)].emplace(id, blob);
  return shards;
}

Bytes ClusterManifest::serialize() const {
  Bytes out;
  append_u32(out, version);
  append_u32(out, num_shards);
  append_u32(out, replicas);
  append_u64(out, total_rows);
  append_u64(out, total_files);
  return out;
}

ClusterManifest ClusterManifest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  ClusterManifest m;
  m.version = reader.read_u32();
  if (m.version != 1) throw ParseError("ClusterManifest: unknown version");
  m.num_shards = reader.read_u32();
  m.replicas = reader.read_u32();
  m.total_rows = reader.read_u64();
  m.total_files = reader.read_u64();
  if (!reader.exhausted()) throw ParseError("ClusterManifest: trailing bytes");
  if (m.num_shards == 0) throw ParseError("ClusterManifest: zero shards");
  if (m.replicas == 0) throw ParseError("ClusterManifest: zero replicas");
  return m;
}

}  // namespace rsse::cluster
