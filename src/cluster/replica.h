// One shard's replica group and the coordinator's retry policy.
//
// A shard may be served by R replicas (each holding the same per-shard
// deployment — replication is owner-side: upload the shard to R
// endpoints). The ReplicaSet turns those R transports into one logical
// endpoint: a call goes to the preferred (last known good) replica, and a
// transport failure fails over to the next one with capped exponential
// backoff between attempts. Replicas that failed recently sit out a
// cooldown before being tried again, so a dead endpoint does not tax
// every request with a connect timeout. A per-attempt budget
// (RetryPolicy::attempt_timeout) turns a *hung* replica into a failed
// attempt too: the slow replica times out and the call fails over
// instead of blocking the query forever.
//
// Writes use the other primitive: call_all fans a kUpdate out to every
// replica in parallel and reports per-replica outcomes, so the
// coordinator can commit on a write quorum (RetryPolicy::write_quorum).
// A replica that misses a committed delta is marked STALE — tracked by
// its last-applied next_seq, refreshed by the kDeltaBackfill health
// probe — and sits out read routing and further live updates until the
// anti-entropy catch-up (cluster/coordinator.h) replays what it missed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace rsse::cluster {

/// Failure-handling knobs of one coordinator.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< total tries per call, across replicas
  std::chrono::milliseconds base_backoff{1};   ///< sleep after first failure
  std::chrono::milliseconds max_backoff{64};   ///< exponential cap
  std::chrono::milliseconds down_cooldown{250};  ///< sit-out after a failure
  /// Budget of one attempt against one replica (0 = unbounded). A replica
  /// exceeding it counts as a failed attempt and the call fails over,
  /// always within the caller's overall deadline.
  std::chrono::milliseconds attempt_timeout{0};
  /// Replicas that must acknowledge a fanned-out kUpdate
  /// (ReplicaSet::call_all via ClusterCoordinator::do_update) before the
  /// coordinator acks the owner. 0 (the default) means every replica;
  /// values above the replica count clamp to it. Replicas that missed a
  /// quorum-committed delta are marked stale and caught up by
  /// anti-entropy instead of live traffic.
  std::uint32_t write_quorum = 0;
  /// Serializes call_all sends in replica-index order instead of
  /// dispatching them in parallel. Needed for byte-reproducible
  /// transcripts when several replica endpoints front the SAME server
  /// (the in-process test wiring): there the parallel applies race for
  /// the server's update lock, flipping which endpoint observes the
  /// idempotent replay. Distinct servers per replica are deterministic
  /// either way.
  bool ordered_fanout = false;
};

/// R replicas of one shard behind a single call() with failover.
/// Thread-safe: concurrent calls serialize per replica (the underlying
/// Transport — a TCP connection or an accounted in-process channel — is
/// not multiplexed) but different replicas proceed in parallel.
class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Adds one replica endpoint. All replicas must serve the same shard.
  void add_replica(std::unique_ptr<cloud::Transport> transport);

  /// Number of replicas R.
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

  /// One RPC with failover: tries up to policy.max_attempts replicas
  /// (preferred replica first, round-robin over the rest, skipping those
  /// in cooldown while any alternative remains), sleeping the capped
  /// exponential backoff between consecutive failures. Each attempt runs
  /// under min(deadline, policy.attempt_timeout). Throws the last replica
  /// error when every attempt failed, DeadlineExceeded when the overall
  /// deadline ran out first, and InvalidArgument on an empty set.
  /// QuotaExceeded is NOT a replica failure: every replica enforces the
  /// same per-tenant quota, so a shed rethrows immediately — no
  /// mark-down, no failover, no backoff.
  Bytes call(cloud::MessageType type, BytesView request, const RetryPolicy& policy,
             const Deadline& deadline = {});

  /// Traced call(): records a "replica.call" span (with retry / failover
  /// / deadline events) plus one "replica.attempt" child span per try,
  /// and propagates the context to the replica transports so server-side
  /// spans parent correctly. `trace` may be null (then exactly call()).
  Bytes call(cloud::MessageType type, BytesView request, const RetryPolicy& policy,
             const Deadline& deadline, obs::TraceRecorder* trace,
             std::uint64_t parent_span_id);

  /// Names this set in spans and metric labels ("shard0", ...). Default
  /// "replicas". Set before serving traffic.
  void set_node_name(std::string name) { node_name_ = std::move(name); }
  [[nodiscard]] const std::string& node_name() const { return node_name_; }

  /// Per-replica outcome of one call_all fan-out.
  struct ReplicaOutcome {
    Bytes response;            ///< the replica's reply (error == null)
    std::exception_ptr error;  ///< why this replica failed, when it did
    bool skipped = false;      ///< stale replica: deliberately not sent
    bool shed = false;         ///< error is QuotaExceeded: replica healthy,
                               ///< not marked down and not re-sent
  };

  /// The update path's quorum primitive: fans `request` out to EVERY
  /// non-stale replica in parallel and reports each replica's outcome —
  /// in contrast to call()'s pick-one failover. Runs up to
  /// policy.max_attempts rounds, each re-sending only to the replicas
  /// still failing (each attempt under min(deadline,
  /// policy.attempt_timeout), capped exponential backoff between
  /// rounds). Replicas already marked stale are skipped (anti-entropy
  /// owns them; sending them a live delta would assign it the wrong
  /// sequence); replicas that fail every round enter cooldown. Quorum
  /// accounting and staleness marking are the caller's job. A replica
  /// that sheds with QuotaExceeded reports the error with shed=true: it
  /// counts against the quorum but is neither marked down nor re-sent
  /// (every replica enforces the same per-tenant quota).
  std::vector<ReplicaOutcome> call_all(cloud::MessageType type, BytesView request,
                                       const RetryPolicy& policy,
                                       const Deadline& deadline = {},
                                       obs::TraceRecorder* trace = nullptr,
                                       std::uint64_t parent_span_id = 0);

  /// One RPC to one specific replica, no failover or sibling diversion —
  /// the anti-entropy primitive for addressing a lagging replica or a
  /// chosen donor. Failures mark the replica down and rethrow
  /// (QuotaExceeded excepted: a shed leaves replica health untouched).
  Bytes call_replica(std::size_t index, cloud::MessageType type, BytesView request,
                     const RetryPolicy& policy, const Deadline& deadline = {});

  /// Mirrors the failure counters into `registry` under
  /// rsse_cluster_failovers_total / failed_attempts_total /
  /// deadline_failures_total, plus one rsse_cluster_replica_lag gauge per
  /// replica, with `labels` (e.g. {{"shard","2"}}). The atomic accessors
  /// below keep working either way. Call after the last add_replica.
  void bind_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels);

  /// Extended health check: pings every replica with an empty
  /// kDeltaBackfill — which reports the replica's applied next_seq
  /// without moving any records — refreshing health, per-replica applied
  /// sequence, staleness and the lag gauges. Returns the number of
  /// replicas that answered.
  std::size_t probe(const RetryPolicy& policy);

  /// What probe() learned, per replica.
  struct ProbeStatus {
    bool alive = false;         ///< answered the probe
    std::uint64_t next_seq = 0; ///< replica's applied sequence cursor (0 = unknown)
    bool stale = false;         ///< excluded from read routing until caught up
  };

  /// probe() with the per-replica detail (the catch-up worker's view).
  std::vector<ProbeStatus> probe_detailed(const RetryPolicy& policy);

  /// Records that replica `index` has applied deltas up to `next_seq`
  /// (from an UpdateResponse ack or a backfill) and refreshes staleness
  /// across the set.
  void note_applied(std::size_t index, std::uint64_t next_seq);

  /// Marks replica `index` stale: excluded from read routing and live
  /// update fan-out until note_applied / probe shows it caught up.
  void mark_stale(std::size_t index);

  /// Staleness of one replica (reads route around stale replicas).
  [[nodiscard]] bool is_stale(std::size_t index) const;

  /// Replicas currently marked stale.
  [[nodiscard]] std::size_t stale_replicas() const;

  /// Highest applied next_seq any replica of this set has reported
  /// (0 until an ack or probe has been seen).
  [[nodiscard]] std::uint64_t target_seq() const;

  /// Last applied next_seq replica `index` reported (0 = unknown).
  [[nodiscard]] std::uint64_t applied_seq(std::size_t index) const;

  /// Replicas currently believed healthy (not in failure cooldown).
  [[nodiscard]] std::size_t healthy_replicas() const;

  /// Calls that succeeded only after failing over off the preferred
  /// replica.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_.load(); }

  /// Individual attempts that failed (includes those later recovered by
  /// a retry).
  [[nodiscard]] std::uint64_t failed_attempts() const { return failed_attempts_.load(); }

  /// Attempts that failed specifically by exhausting their time budget.
  [[nodiscard]] std::uint64_t deadline_failures() const {
    return deadline_failures_.load();
  }

 private:
  struct Replica {
    std::unique_ptr<cloud::Transport> transport;
    std::mutex mutex;                        // serializes use of transport
    std::atomic<std::int64_t> down_until_ns{0};  // steady_clock epoch-ns
    std::atomic<std::uint64_t> applied_next_seq{0};  // 0 = never reported
    std::atomic<bool> stale{false};  // behind on acked updates
  };

  [[nodiscard]] static std::int64_t now_ns();
  [[nodiscard]] bool is_down(const Replica& replica) const;
  /// Healthy AND not stale: eligible for read routing.
  [[nodiscard]] bool routable(const Replica& replica) const;
  void mark_down(Replica& replica, const RetryPolicy& policy);
  /// Recomputes every replica's stale flag against the set-wide maximum
  /// applied sequence and refreshes the lag gauges. Replicas that never
  /// reported a sequence stay as they are (an unprobed read-only cluster
  /// must not route around itself).
  void refresh_staleness();
  void bump_failover();
  void bump_failed_attempt();
  void bump_deadline_failure();

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::size_t> preferred_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> failed_attempts_{0};
  std::atomic<std::uint64_t> deadline_failures_{0};
  // Optional registry mirrors (bind_metrics).
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* failed_attempts_counter_ = nullptr;
  obs::Counter* deadline_failures_counter_ = nullptr;
  std::vector<obs::Gauge*> lag_gauges_;  // one per replica (bind_metrics)
  std::string node_name_ = "replicas";
};

}  // namespace rsse::cluster
