// One shard's replica group and the coordinator's retry policy.
//
// A shard may be served by R replicas (each holding the same per-shard
// deployment — replication is owner-side: upload the shard to R
// endpoints). The ReplicaSet turns those R transports into one logical
// endpoint: a call goes to the preferred (last known good) replica, and a
// transport failure fails over to the next one with capped exponential
// backoff between attempts. Replicas that failed recently sit out a
// cooldown before being tried again, so a dead endpoint does not tax
// every request with a connect timeout. A per-attempt budget
// (RetryPolicy::attempt_timeout) turns a *hung* replica into a failed
// attempt too: the slow replica times out and the call fails over
// instead of blocking the query forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace rsse::cluster {

/// Failure-handling knobs of one coordinator.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< total tries per call, across replicas
  std::chrono::milliseconds base_backoff{1};   ///< sleep after first failure
  std::chrono::milliseconds max_backoff{64};   ///< exponential cap
  std::chrono::milliseconds down_cooldown{250};  ///< sit-out after a failure
  /// Budget of one attempt against one replica (0 = unbounded). A replica
  /// exceeding it counts as a failed attempt and the call fails over,
  /// always within the caller's overall deadline.
  std::chrono::milliseconds attempt_timeout{0};
};

/// R replicas of one shard behind a single call() with failover.
/// Thread-safe: concurrent calls serialize per replica (the underlying
/// Transport — a TCP connection or an accounted in-process channel — is
/// not multiplexed) but different replicas proceed in parallel.
class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Adds one replica endpoint. All replicas must serve the same shard.
  void add_replica(std::unique_ptr<cloud::Transport> transport);

  /// Number of replicas R.
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

  /// One RPC with failover: tries up to policy.max_attempts replicas
  /// (preferred replica first, round-robin over the rest, skipping those
  /// in cooldown while any alternative remains), sleeping the capped
  /// exponential backoff between consecutive failures. Each attempt runs
  /// under min(deadline, policy.attempt_timeout). Throws the last replica
  /// error when every attempt failed, DeadlineExceeded when the overall
  /// deadline ran out first, and InvalidArgument on an empty set.
  Bytes call(cloud::MessageType type, BytesView request, const RetryPolicy& policy,
             const Deadline& deadline = {});

  /// Traced call(): records a "replica.call" span (with retry / failover
  /// / deadline events) plus one "replica.attempt" child span per try,
  /// and propagates the context to the replica transports so server-side
  /// spans parent correctly. `trace` may be null (then exactly call()).
  Bytes call(cloud::MessageType type, BytesView request, const RetryPolicy& policy,
             const Deadline& deadline, obs::TraceRecorder* trace,
             std::uint64_t parent_span_id);

  /// Names this set in spans and metric labels ("shard0", ...). Default
  /// "replicas". Set before serving traffic.
  void set_node_name(std::string name) { node_name_ = std::move(name); }
  [[nodiscard]] const std::string& node_name() const { return node_name_; }

  /// Mirrors the failure counters into `registry` under
  /// rsse_cluster_failovers_total / failed_attempts_total /
  /// deadline_failures_total with `labels` (e.g. {{"shard","2"}}). The
  /// atomic accessors below keep working either way.
  void bind_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels);

  /// Health check: pings every replica with a zero-file fetch and updates
  /// its health state. Returns the number of replicas that answered.
  std::size_t probe(const RetryPolicy& policy);

  /// Replicas currently believed healthy (not in failure cooldown).
  [[nodiscard]] std::size_t healthy_replicas() const;

  /// Calls that succeeded only after failing over off the preferred
  /// replica.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_.load(); }

  /// Individual attempts that failed (includes those later recovered by
  /// a retry).
  [[nodiscard]] std::uint64_t failed_attempts() const { return failed_attempts_.load(); }

  /// Attempts that failed specifically by exhausting their time budget.
  [[nodiscard]] std::uint64_t deadline_failures() const {
    return deadline_failures_.load();
  }

 private:
  struct Replica {
    std::unique_ptr<cloud::Transport> transport;
    std::mutex mutex;                        // serializes use of transport
    std::atomic<std::int64_t> down_until_ns{0};  // steady_clock epoch-ns
  };

  [[nodiscard]] static std::int64_t now_ns();
  [[nodiscard]] bool is_down(const Replica& replica) const;
  void mark_down(Replica& replica, const RetryPolicy& policy);
  void bump_failover();
  void bump_failed_attempt();
  void bump_deadline_failure();

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::size_t> preferred_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> failed_attempts_{0};
  std::atomic<std::uint64_t> deadline_failures_{0};
  // Optional registry mirrors (bind_metrics).
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* failed_attempts_counter_ = nullptr;
  obs::Counter* deadline_failures_counter_ = nullptr;
  std::string node_name_ = "replicas";
};

}  // namespace rsse::cluster
