// Keyword- and file-placement for the sharded cluster layer.
//
// Routing must never touch plaintext: the shard owning a keyword's posting
// row is derived from the *trapdoor label* pi_x(w) — an HMAC output the
// owner computes at BuildIndex time and the user's trapdoor carries anyway
// — so the coordinator learns nothing a single curious server would not
// also see, and neither the owner nor the user needs any extra key
// material to route. Encrypted file blobs are placed independently by a
// mixed hash of their (public) file id, so the file set spreads evenly
// even though ids are sequential.
//
// The assignment is a plain modulus over the label hash: labels are
// pseudorandom (PRF outputs), so the load is balanced by construction and
// the map is fully described by one integer — the shard count — recorded
// in the serializable ClusterManifest the owner ships alongside the
// per-shard deployments.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sse/secure_index.h"
#include "util/bytes.h"

namespace rsse::cluster {

/// Deterministic keyword->shard and file->shard assignment for one
/// cluster geometry.
class ShardMap {
 public:
  /// Binds the map to a fixed shard count. Throws InvalidArgument on 0.
  explicit ShardMap(std::uint32_t num_shards);

  /// Number of shards N.
  [[nodiscard]] std::uint32_t num_shards() const { return num_shards_; }

  /// The shard owning the posting row behind `label` (= pi_x(w), the
  /// trapdoor's first component). Folds the whole label through a 64-bit
  /// mix so short or truncated labels still spread evenly.
  [[nodiscard]] std::uint32_t shard_of_label(BytesView label) const;

  /// The shard storing encrypted file `id`. Ids are sequential, so they
  /// pass through an integer mixer before the modulus.
  [[nodiscard]] std::uint32_t shard_of_file(std::uint64_t id) const;

  /// Splits an outsourced index into per-shard sub-indexes by row label.
  /// Every row lands on exactly one shard; the concatenation equals the
  /// input.
  [[nodiscard]] std::vector<sse::SecureIndex> split_index(
      const sse::SecureIndex& index) const;

  /// Splits the encrypted file collection by file id.
  [[nodiscard]] std::vector<std::map<std::uint64_t, Bytes>> split_files(
      const std::map<std::uint64_t, Bytes>& files) const;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  std::uint32_t num_shards_;
};

/// The owner-published description of a cluster deployment: everything a
/// coordinator needs to route, nothing secret. Extend with care — version
/// gates the wire format.
struct ClusterManifest {
  std::uint32_t version = 1;
  std::uint32_t num_shards = 1;
  std::uint32_t replicas = 1;        ///< replicas per shard (R)
  std::uint64_t total_rows = 0;      ///< index rows across all shards
  std::uint64_t total_files = 0;     ///< encrypted files across all shards

  /// The routing map this manifest describes.
  [[nodiscard]] ShardMap shard_map() const { return ShardMap(num_shards); }

  /// Wire encoding (owner -> coordinator / deployment directory).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input or an
  /// unknown version.
  static ClusterManifest deserialize(BytesView blob);

  friend bool operator==(const ClusterManifest&, const ClusterManifest&) = default;
};

}  // namespace rsse::cluster
