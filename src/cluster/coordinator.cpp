#include "cluster/coordinator.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <map>

#include "obs/profiler.h"
#include "seg/wal.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::cluster {

namespace {

// Fan-out width: one worker per shard covers the worst case (a query
// touching every shard); more would only idle.
std::size_t pool_size(std::size_t num_shards, std::size_t requested) {
  if (requested > 0) return requested;
  return std::min<std::size_t>(std::max<std::size_t>(num_shards, 1), 16);
}

// The cluster-wide ranking comparator — identical to the single server's
// (OPM aggregate descending, file id ascending), so merged output is
// byte-for-byte the order one CloudServer would produce.
bool ranks_before(const cloud::RankedFile& a, const cloud::RankedFile& b) {
  if (a.opm_score != b.opm_score) return a.opm_score > b.opm_score;
  return ir::value(a.id) < ir::value(b.id);
}

const char* message_name(cloud::MessageType type) {
  switch (type) {
    case cloud::MessageType::kRankedSearch: return "ranked_search";
    case cloud::MessageType::kBasicEntries: return "basic_entries";
    case cloud::MessageType::kFetchFiles: return "fetch_files";
    case cloud::MessageType::kBasicFiles: return "basic_files";
    case cloud::MessageType::kMultiSearch: return "multi_search";
    case cloud::MessageType::kSnapshot: return "snapshot";
    case cloud::MessageType::kStats: return "stats";
    case cloud::MessageType::kTrace: return "trace";
    case cloud::MessageType::kUpdate: return "update";
    case cloud::MessageType::kDeltaBackfill: return "delta_backfill";
    case cloud::MessageType::kTenantScoped: return "tenant_scoped";
  }
  return "unknown";
}

// Re-wraps an outbound sub-request into the tenant envelope, so a
// tenant-host shard runs its own validation and admission control on
// exactly the tenant the client claimed.
Bytes wrap_for_tenant(const std::string& tenant, cloud::MessageType type,
                      BytesView request) {
  cloud::TenantScopedRequest env;
  env.tenant = tenant;
  env.inner_type = type;
  env.inner_payload = Bytes(request.begin(), request.end());
  return env.serialize();
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(ClusterManifest manifest,
                                       std::vector<std::unique_ptr<ReplicaSet>> shards,
                                       CoordinatorOptions options)
    : manifest_(manifest),
      shard_map_(manifest.num_shards),
      shards_(std::move(shards)),
      options_(options),
      pool_(pool_size(manifest.num_shards, options.fanout_threads)),
      metrics_(manifest.num_shards) {
  detail::require(shards_.size() == manifest_.num_shards,
                  "ClusterCoordinator: shard count != manifest");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    detail::require(shards_[i] != nullptr && shards_[i]->size() > 0,
                    "ClusterCoordinator: empty shard replica set");
    shards_[i]->set_node_name("shard" + std::to_string(i));
    shards_[i]->bind_metrics(metrics_.registry(), {{"shard", std::to_string(i)}});
  }
  deadline_expiries_ = &metrics_.registry().counter(
      "rsse_cluster_deadline_expiries_total",
      "Queries that exhausted their whole-query budget");
  bytes_up_total_ = &metrics_.registry().counter(
      "rsse_cluster_bytes_up_total", "Serialized request bytes entering the cluster");
  bytes_down_total_ = &metrics_.registry().counter(
      "rsse_cluster_bytes_down_total",
      "Serialized response bytes leaving the cluster");
  quorum_failures_ = &metrics_.registry().counter(
      "rsse_cluster_update_quorum_failures_total",
      "Updates rejected because fewer replicas acked than the write quorum");
  backfill_records_counter_ = &metrics_.registry().counter(
      "rsse_cluster_backfill_records_total",
      "WAL records replayed to lagging replicas by anti-entropy");
  backfill_bytes_counter_ = &metrics_.registry().counter(
      "rsse_cluster_backfill_bytes_total",
      "Serialized delta bytes replayed to lagging replicas by anti-entropy");
  snapshot_repairs_counter_ = &metrics_.registry().counter(
      "rsse_cluster_snapshot_repairs_total",
      "Lagging replicas rebuilt from a full snapshot (WAL suffix gone)");
}

ClusterCoordinator::~ClusterCoordinator() {
  {
    const std::lock_guard<std::mutex> lock(cu_mutex_);
    cu_stop_ = true;
  }
  cu_cv_.notify_all();
  if (catch_up_thread_.joinable()) catch_up_thread_.join();
}

std::size_t ClusterCoordinator::probe_shards() {
  std::size_t live = 0;
  for (auto& shard : shards_)
    if (shard->probe(options_.retry) > 0) ++live;
  return live;
}

Bytes ClusterCoordinator::shard_call(std::size_t shard, cloud::MessageType type,
                                     BytesView request, const Deadline& deadline,
                                     obs::TraceRecorder* trace,
                                     std::uint64_t parent_span_id,
                                     const std::string& tenant) {
  const Stopwatch watch;
  Bytes wrapped;
  if (!tenant.empty()) {
    wrapped = wrap_for_tenant(tenant, type, request);
    type = cloud::MessageType::kTenantScoped;
    request = wrapped;
  }
  try {
    Bytes response = shards_[shard]->call(type, request, options_.retry, deadline,
                                          trace, parent_span_id);
    metrics_.record_request(shard, watch.elapsed_seconds());
    return response;
  } catch (const QuotaExceeded&) {
    // A per-tenant shed is not a shard error: counting it would make one
    // flooding tenant look like shard unhealthiness on the dashboards.
    metrics_.record_request(shard, watch.elapsed_seconds());
    throw;
  } catch (const Error&) {
    metrics_.record_request(shard, watch.elapsed_seconds());
    metrics_.record_error(shard);
    throw;
  }
}

void ClusterCoordinator::fetch_and_fill(
    const std::vector<std::pair<std::uint64_t, Bytes*>>& missing,
    std::size_t skip_shard, bool* degraded, const Deadline& deadline,
    obs::TraceRecorder* trace, std::uint64_t parent_span_id,
    const std::string& tenant) {
  // Group the wanted ids by their placement shard.
  std::map<std::size_t, std::vector<std::pair<std::uint64_t, Bytes*>>> by_shard;
  for (const auto& [id, slot] : missing) {
    const std::size_t shard = shard_map_.shard_of_file(id);
    if (shard == skip_shard) continue;  // the responder already said "absent"
    by_shard[shard].push_back({id, slot});
  }
  if (by_shard.empty()) return;

  struct Fetch {
    std::size_t shard;
    Bytes request;
    const std::vector<std::pair<std::uint64_t, Bytes*>>* wanted;
  };
  std::vector<Fetch> fetches;
  fetches.reserve(by_shard.size());
  for (const auto& [shard, wanted] : by_shard) {
    cloud::FetchFilesRequest req;
    req.ids.reserve(wanted.size());
    for (const auto& [id, slot] : wanted) req.ids.push_back(ir::file_id(id));
    fetches.push_back(Fetch{shard, req.serialize(), &wanted});
  }

  std::atomic<bool> any_down{false};
  // A quota shed must surface as QuotaExceeded to the caller (the tenant
  // is over ITS budget — "degraded, retry the blobs later" would be a
  // lie), but only after every in-flight sibling fetch has joined: the
  // futures borrow `fetches` and `run` by reference.
  std::mutex shed_mutex;
  std::exception_ptr shed_error;
  const auto run = [this, &any_down, &shed_mutex, &shed_error, &deadline, trace,
                    parent_span_id, &tenant](Fetch& fetch) {
    try {
      const auto resp = cloud::FetchFilesResponse::deserialize(
          shard_call(fetch.shard, cloud::MessageType::kFetchFiles, fetch.request,
                     deadline, trace, parent_span_id, tenant));
      // Response order mirrors request order (protocol contract).
      const std::size_t n = std::min(resp.files.size(), fetch.wanted->size());
      for (std::size_t i = 0; i < n; ++i)
        *(*fetch.wanted)[i].second = resp.files[i].blob;
    } catch (const QuotaExceeded&) {
      const std::lock_guard<std::mutex> lock(shed_mutex);
      if (!shed_error) shed_error = std::current_exception();
    } catch (const Error&) {
      any_down.store(true);  // blobs stay empty: degraded, not failed
    }
  };

  // A blob fetch is a map lookup + memcpy at the shard — microseconds —
  // so below the fan-out threshold the calling thread just walks the
  // groups; pushing tiny tasks through the pool costs more in scheduler
  // wake-ups than it saves (measured 0.4 ms -> 3 ms p50 under 8 clients).
  // Wide fetches (many groups, e.g. over TCP) still fan out, with the
  // calling thread taking the largest group itself.
  if (fetches.size() <= options_.parallel_fetch_threshold) {
    for (Fetch& fetch : fetches) run(fetch);
  } else {
    std::size_t inline_index = 0;
    for (std::size_t i = 1; i < fetches.size(); ++i)
      if (fetches[i].wanted->size() > fetches[inline_index].wanted->size())
        inline_index = i;
    std::vector<std::future<void>> futures;
    futures.reserve(fetches.size() - 1);
    for (std::size_t i = 0; i < fetches.size(); ++i)
      if (i != inline_index)
        futures.push_back(pool_.submit([&run, &fetches, i] { run(fetches[i]); }));
    run(fetches[inline_index]);
    for (auto& future : futures) future.get();
  }
  if (shed_error) std::rethrow_exception(shed_error);
  if (any_down.load() && degraded != nullptr) *degraded = true;
}

cloud::RankedSearchResponse ClusterCoordinator::do_ranked_search(
    BytesView payload, const Deadline& deadline, obs::TraceRecorder* trace,
    std::uint64_t parent_span_id, const std::string& tenant) {
  const auto req = cloud::RankedSearchRequest::deserialize(payload);
  const std::size_t shard = shard_map_.shard_of_label(req.trapdoor.label);
  auto resp = cloud::RankedSearchResponse::deserialize(
      shard_call(shard, cloud::MessageType::kRankedSearch, payload, deadline, trace,
                 parent_span_id, tenant));

  std::vector<std::pair<std::uint64_t, Bytes*>> missing;
  for (cloud::RankedFile& f : resp.files)
    if (f.blob.empty()) missing.push_back({ir::value(f.id), &f.blob});
  bool degraded = false;
  fetch_and_fill(missing, shard, &degraded, deadline, trace, parent_span_id, tenant);
  if (degraded) resp.partial = true;
  return resp;
}

cloud::RankedSearchResponse ClusterCoordinator::do_multi_search(
    BytesView payload, const Deadline& deadline, obs::TraceRecorder* trace,
    std::uint64_t parent_span_id, const std::string& tenant) {
  const auto req = cloud::MultiSearchRequest::deserialize(payload);
  detail::require(!req.trapdoor.trapdoors.empty(), "cluster: empty multi-search");
  const bool conjunctive = req.mode == cloud::MultiSearchMode::kConjunctive;

  // Group the per-keyword trapdoors by owning shard.
  std::map<std::size_t, std::vector<sse::Trapdoor>> groups;
  for (const sse::Trapdoor& t : req.trapdoor.trapdoors)
    groups[shard_map_.shard_of_label(t.label)].push_back(t);

  if (groups.size() == 1) {
    // Single-shard fast path: the shard evaluates the whole query.
    const std::size_t shard = groups.begin()->first;
    auto resp = cloud::RankedSearchResponse::deserialize(
        shard_call(shard, cloud::MessageType::kMultiSearch, payload, deadline, trace,
                   parent_span_id, tenant));
    std::vector<std::pair<std::uint64_t, Bytes*>> missing;
    for (cloud::RankedFile& f : resp.files)
      if (f.blob.empty()) missing.push_back({ir::value(f.id), &f.blob});
    bool degraded = false;
    fetch_and_fill(missing, shard, &degraded, deadline, trace, parent_span_id, tenant);
    if (degraded) resp.partial = true;
    return resp;
  }

  metrics_.record_scatter_gather();

  // Scatter: each owning shard evaluates its keyword subset. Conjunctive
  // merges need every intersection candidate, so sub-queries run with
  // top_k = 0; disjunctive max-merge is top-k safe (a global top-k hit is
  // a local top-k hit on the shard achieving its max), so the shards can
  // truncate.
  struct Sub {
    std::size_t shard = 0;
    Bytes request;
    cloud::RankedSearchResponse response;
    bool ok = false;
  };
  std::vector<Sub> subs;
  subs.reserve(groups.size());
  for (auto& [shard, trapdoors] : groups) {
    cloud::MultiSearchRequest sub_req;
    sub_req.trapdoor.trapdoors = std::move(trapdoors);
    sub_req.mode = req.mode;
    sub_req.top_k = conjunctive ? 0 : req.top_k;
    Sub sub;
    sub.shard = shard;
    sub.request = sub_req.serialize();
    subs.push_back(std::move(sub));
  }
  // Quota sheds rethrow once the scatter has joined (the futures borrow
  // `subs` by reference) — a shed sub-query is the tenant over budget,
  // not a shard outage to degrade around.
  std::mutex shed_mutex;
  std::exception_ptr shed_error;
  const auto run_sub = [this, &shed_mutex, &shed_error, &deadline, trace,
                        parent_span_id, &tenant](Sub& sub) {
    try {
      sub.response = cloud::RankedSearchResponse::deserialize(
          shard_call(sub.shard, cloud::MessageType::kMultiSearch, sub.request,
                     deadline, trace, parent_span_id, tenant));
      sub.ok = true;
    } catch (const QuotaExceeded&) {
      const std::lock_guard<std::mutex> lock(shed_mutex);
      if (!shed_error) shed_error = std::current_exception();
    } catch (const Error&) {
      // Whole shard down after failover: degrade below.
    }
  };
  // The calling thread evaluates one sub-query itself (see fetch_and_fill).
  static const auto kScatterStage = obs::Profiler::global().stage("cluster/scatter");
  obs::ProfileScope scatter_profile(kScatterStage);
  std::vector<std::future<void>> futures;
  futures.reserve(subs.size() - 1);
  for (std::size_t i = 1; i < subs.size(); ++i)
    futures.push_back(pool_.submit([&run_sub, &subs, i] { run_sub(subs[i]); }));
  run_sub(subs[0]);
  for (auto& future : futures) future.get();
  scatter_profile.finish();
  if (shed_error) std::rethrow_exception(shed_error);

  std::size_t live = 0;
  for (const Sub& sub : subs)
    if (sub.ok) ++live;
  if (live == 0) throw ProtocolError("cluster: every shard failed for multi-search");
  const bool partial = live < subs.size();

  // Gather: k-way merge by OPM ciphertext order. Conjunctive: a file must
  // appear in every (live) shard group and aggregates sum — exactly the
  // single server's sum over all keywords, since each group contributes
  // its keywords' OPM sum. Disjunctive: union with max aggregates,
  // matching DisjunctiveRanking::kMaxOpm.
  struct Acc {
    std::uint64_t aggregate = 0;
    std::size_t groups_matched = 0;
    Bytes blob;
  };
  static const auto kMergeStage = obs::Profiler::global().stage("cluster/merge");
  obs::ProfileScope merge_profile(kMergeStage);
  std::map<std::uint64_t, Acc> merged;
  for (Sub& sub : subs) {
    if (!sub.ok) continue;
    for (cloud::RankedFile& f : sub.response.files) {
      Acc& acc = merged[ir::value(f.id)];
      if (conjunctive)
        acc.aggregate += f.opm_score;
      else
        acc.aggregate = std::max(acc.aggregate, f.opm_score);
      ++acc.groups_matched;
      if (acc.blob.empty() && !f.blob.empty()) acc.blob = std::move(f.blob);
    }
  }

  cloud::RankedSearchResponse resp;
  resp.partial = partial;
  for (auto& [id, acc] : merged) {
    if (conjunctive && acc.groups_matched != live) continue;
    resp.files.push_back(
        cloud::RankedFile{ir::file_id(id), acc.aggregate, std::move(acc.blob)});
  }
  std::sort(resp.files.begin(), resp.files.end(), ranks_before);
  if (req.top_k > 0 && resp.files.size() > req.top_k)
    resp.files.resize(static_cast<std::size_t>(req.top_k));
  merge_profile.finish();

  std::vector<std::pair<std::uint64_t, Bytes*>> missing;
  for (cloud::RankedFile& f : resp.files)
    if (f.blob.empty()) missing.push_back({ir::value(f.id), &f.blob});
  bool degraded = false;
  // No shard to skip.
  static const auto kFetchStage = obs::Profiler::global().stage("cluster/fetch");
  obs::ProfileScope fetch_profile(kFetchStage);
  fetch_and_fill(missing, shards_.size(), &degraded, deadline, trace, parent_span_id,
                 tenant);
  fetch_profile.finish();
  if (degraded) resp.partial = true;
  return resp;
}

cloud::FetchFilesResponse ClusterCoordinator::do_fetch_files(
    const cloud::FetchFilesRequest& req, bool* degraded, const Deadline& deadline,
    obs::TraceRecorder* trace, std::uint64_t parent_span_id,
    const std::string& tenant) {
  cloud::FetchFilesResponse resp;
  resp.files.reserve(req.ids.size());
  for (sse::FileId id : req.ids) resp.files.push_back(cloud::RankedFile{id, 0, {}});
  std::vector<std::pair<std::uint64_t, Bytes*>> wanted;
  wanted.reserve(resp.files.size());
  for (cloud::RankedFile& f : resp.files) wanted.push_back({ir::value(f.id), &f.blob});
  fetch_and_fill(wanted, shards_.size(), degraded, deadline, trace, parent_span_id,
                 tenant);
  return resp;
}

cloud::UpdateResponse ClusterCoordinator::do_update(BytesView payload,
                                                    const Deadline& deadline,
                                                    obs::TraceRecorder* trace,
                                                    std::uint64_t parent_span_id,
                                                    const std::string& tenant) {
  const auto req = cloud::UpdateRequest::deserialize(payload);
  detail::require(req.delta.op_count > 0, "cluster: empty update delta");

  // One delta at a time: concurrent updates scattered in parallel could
  // be applied in different orders on different shards, letting their
  // per-shard sequence assignments diverge. Held across the whole
  // scatter so every shard observes the same delta order.
  const std::lock_guard<std::mutex> update_lock(update_mutex_);

  // Split the delta along the routing maps. Rows follow the keyword
  // shard; file blobs follow the file shard; tombstones go everywhere
  // (any shard may hold postings of the removed file). op_count is
  // preserved verbatim so each shard assigns the same relative sequence
  // offsets — per-shard absolute counters may diverge, which is harmless
  // because sequence comparisons never cross shards.
  std::vector<cloud::UpdateRequest> sub_reqs(shards_.size());
  for (auto& sub : sub_reqs) {
    sub.delta_id = req.delta_id;
    sub.delta.op_count = req.delta.op_count;
    sub.delta.tombstones = req.delta.tombstones;
  }
  for (const seg::RowDelta& row : req.delta.rows)
    sub_reqs[shard_map_.shard_of_label(row.label)].delta.rows.push_back(row);
  for (const seg::FilePut& put : req.delta.file_puts)
    sub_reqs[shard_map_.shard_of_file(put.id)].delta.file_puts.push_back(put);

  struct Sub {
    std::size_t shard = 0;
    Bytes request;
    cloud::UpdateResponse response;
    std::exception_ptr error;
  };
  std::vector<Sub> subs;
  for (std::size_t shard = 0; shard < sub_reqs.size(); ++shard) {
    if (sub_reqs[shard].delta.empty()) continue;  // nothing routed here
    Sub sub;
    sub.shard = shard;
    sub.request = sub_reqs[shard].serialize();
    subs.push_back(std::move(sub));
  }
  detail::require(!subs.empty(), "cluster: update delta routed nowhere");

  // Deltas carrying an idempotency id fan out to every replica and
  // commit on the write quorum; a replica that misses the commit is
  // marked stale and handed to anti-entropy. A zero delta_id cannot be
  // deduplicated (a duplicate apply would double-count), so those keep
  // the legacy pick-one path with failover.
  const bool replicate = req.delta_id != 0;
  std::atomic<bool> any_missed{false};
  const auto run_sub = [this, replicate, &any_missed, &deadline, trace,
                        parent_span_id, &tenant](Sub& sub) {
    try {
      if (!replicate) {
        sub.response = cloud::UpdateResponse::deserialize(
            shard_call(sub.shard, cloud::MessageType::kUpdate, sub.request, deadline,
                       trace, parent_span_id, tenant));
        return;
      }
      ReplicaSet& set = *shards_[sub.shard];
      const Stopwatch watch;
      cloud::MessageType wire_type = cloud::MessageType::kUpdate;
      BytesView wire_request = sub.request;
      Bytes wrapped;
      if (!tenant.empty()) {
        wrapped = wrap_for_tenant(tenant, wire_type, wire_request);
        wire_type = cloud::MessageType::kTenantScoped;
        wire_request = wrapped;
      }
      const auto outcomes = set.call_all(wire_type, wire_request,
                                         options_.retry, deadline, trace,
                                         parent_span_id);
      metrics_.record_request(sub.shard, watch.elapsed_seconds());
      std::size_t targeted = 0;
      std::size_t acks = 0;
      bool first_ack = true;
      std::exception_ptr first_error;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].skipped) continue;  // stale: anti-entropy owns it
        ++targeted;
        if (outcomes[i].error) {
          if (!first_error) first_error = outcomes[i].error;
          continue;
        }
        try {
          auto ack = cloud::UpdateResponse::deserialize(outcomes[i].response);
          set.note_applied(i, ack.next_seq);
          if (first_ack) {
            sub.response = std::move(ack);
            first_ack = false;
          } else {
            sub.response.replayed = sub.response.replayed && ack.replayed;
          }
          ++acks;
        } catch (const Error&) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      // Quorum 0 means every replica the delta was fanned to — replicas
      // already stale are excluded up front (anti-entropy owns them), so
      // a replica that dies mid-stream stalls writes for one failed
      // update before staleness routes around it.
      const std::size_t quorum = std::max<std::size_t>(
          options_.retry.write_quorum == 0
              ? targeted
              : std::min<std::size_t>(options_.retry.write_quorum, set.size()),
          1);
      if (acks < quorum) {
        metrics_.record_error(sub.shard);
        quorum_failures_->inc();
        sub.error = first_error
                        ? first_error
                        : std::make_exception_ptr(ProtocolError(
                              "cluster: update quorum not met on " + set.node_name()));
        return;
      }
      // Committed. Replicas that missed it are now behind: exclude them
      // from reads and live fan-out until anti-entropy replays the gap.
      for (std::size_t i = 0; i < outcomes.size(); ++i)
        if (outcomes[i].error) set.mark_stale(i);
      if (acks < outcomes.size()) any_missed.store(true);
    } catch (...) {
      sub.error = std::current_exception();
    }
  };
  static const auto kScatterStage =
      obs::Profiler::global().stage("cluster/update_scatter");
  obs::ProfileScope scatter_profile(kScatterStage);
  std::vector<std::future<void>> futures;
  if (subs.size() > 1) futures.reserve(subs.size() - 1);
  for (std::size_t i = 1; i < subs.size(); ++i)
    futures.push_back(pool_.submit([&run_sub, &subs, i] { run_sub(subs[i]); }));
  run_sub(subs[0]);
  for (auto& future : futures) future.get();
  scatter_profile.finish();
  if (any_missed.load()) notify_catch_up();

  // All-or-nothing: a failed shard fails the update. The owner retries
  // with the same delta_id; shards that already applied replay.
  for (const Sub& sub : subs)
    if (sub.error) std::rethrow_exception(sub.error);

  cloud::UpdateResponse merged;
  merged.replayed = true;  // AND below: replayed only if every shard replayed
  for (const Sub& sub : subs) {
    merged.entries_applied += sub.response.entries_applied;
    // Tombstones are broadcast, so every shard reports the full set;
    // report the logical count, not the sum of copies.
    merged.tombstones_applied =
        std::max(merged.tombstones_applied, sub.response.tombstones_applied);
    merged.files_stored += sub.response.files_stored;
    merged.files_erased += sub.response.files_erased;
    merged.sealed_segments =
        std::max(merged.sealed_segments, sub.response.sealed_segments);
    merged.next_seq = std::max(merged.next_seq, sub.response.next_seq);
    merged.replayed = merged.replayed && sub.response.replayed;
  }
  return merged;
}

void ClusterCoordinator::enable_catch_up(CatchUpOptions options) {
  detail::require(!catch_up_thread_.joinable(),
                  "ClusterCoordinator: catch-up already enabled");
  catch_up_options_ = std::move(options);
  catch_up_thread_ = std::thread([this] { catch_up_run(); });
}

void ClusterCoordinator::notify_catch_up() {
  if (!catch_up_thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(cu_mutex_);
    cu_pending_ = true;
  }
  cu_cv_.notify_all();
}

void ClusterCoordinator::wait_for_catch_up_idle() {
  std::unique_lock<std::mutex> lock(cu_mutex_);
  cu_cv_.wait(lock, [this] { return (!cu_pending_ && !cu_working_) || cu_stop_; });
}

void ClusterCoordinator::catch_up_run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(cu_mutex_);
      cu_cv_.wait(lock, [this] { return cu_pending_ || cu_stop_; });
      if (cu_stop_) return;
      cu_pending_ = false;
      cu_working_ = true;
    }
    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
      try {
        // A shard that cannot fully converge (replica still down, no
        // donor) is left for the next notification — every further
        // quorum miss renotifies, so the worker never polls a corpse.
        catch_up_shard(shard);
      } catch (const Error&) {
        // Donor or laggard vanished mid-repair: same policy.
      }
    }
    {
      const std::lock_guard<std::mutex> lock(cu_mutex_);
      cu_working_ = false;
    }
    cu_cv_.notify_all();
  }
}

bool ClusterCoordinator::catch_up_shard(std::size_t shard) {
  ReplicaSet& set = *shards_[shard];
  if (set.stale_replicas() == 0) return true;
  const auto statuses = set.probe_detailed(options_.retry);
  // Donor: the freshest live replica. (It may itself be stale relative
  // to a dead-but-ahead peer; replaying to its level is still progress,
  // and refresh keeps everyone stale until the true maximum is reached.)
  std::size_t donor = statuses.size();
  std::uint64_t donor_seq = 0;
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].alive) continue;
    if (donor == statuses.size() || statuses[i].next_seq > donor_seq) {
      donor = i;
      donor_seq = statuses[i].next_seq;
    }
  }
  if (donor == statuses.size()) return false;  // nobody to copy from
  bool converged = true;
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (i == donor || !statuses[i].stale) continue;
    if (!statuses[i].alive) {
      converged = false;  // still down: wait for the next notification
      continue;
    }
    if (!catch_up_replica(set, shard, donor, i, statuses[i].next_seq))
      converged = false;
  }
  return converged;
}

bool ClusterCoordinator::catch_up_replica(ReplicaSet& set, std::size_t shard,
                                          std::size_t donor, std::size_t laggard,
                                          std::uint64_t cursor) {
  // Bulk replay runs OFF the update path: a stale replica receives no
  // live fan-out, so nothing races the copy. Only the final drain — the
  // step that flips the replica fresh — serializes with do_update.
  std::uint64_t drained = replay_backfill(set, donor, laggard, cursor);
  if (drained == 0) {
    // The donor's retained WAL no longer reaches back: full rebuild,
    // then replay whatever landed on the donor while the snapshot moved.
    if (!snapshot_repair(set, shard, donor, laggard)) return false;
    cloud::DeltaBackfillRequest ping;
    ping.from_seq = ~std::uint64_t{0};  // status probe: sequence only
    const auto pong = cloud::DeltaBackfillResponse::deserialize(
        set.call_replica(laggard, cloud::MessageType::kDeltaBackfill,
                         ping.serialize(), options_.retry));
    drained = replay_backfill(set, donor, laggard, pong.next_seq);
    if (drained == 0) return false;  // checkpoint raced the rebuild: retry later
  }
  {
    // Final drain: with do_update excluded, the donor cannot advance, so
    // one more round empties the gap and the laggard's fresh transition
    // linearizes with the update stream.
    const std::lock_guard<std::mutex> update_lock(update_mutex_);
    drained = replay_backfill(set, donor, laggard, drained);
    if (drained == 0) return false;
    set.note_applied(laggard, drained);
  }
  return !set.is_stale(laggard);
}

std::uint64_t ClusterCoordinator::replay_backfill(ReplicaSet& set, std::size_t donor,
                                                  std::size_t laggard,
                                                  std::uint64_t cursor) {
  for (;;) {
    cloud::DeltaBackfillRequest breq;
    breq.from_seq = cursor;
    breq.max_records = catch_up_options_.batch_records;
    const auto bresp = cloud::DeltaBackfillResponse::deserialize(
        set.call_replica(donor, cloud::MessageType::kDeltaBackfill, breq.serialize(),
                         options_.retry));
    if (bresp.truncated) return 0;
    if (bresp.records.empty()) return cursor;  // caught up to the donor
    for (const Bytes& raw : bresp.records) {
      const seg::WalRecord record = seg::WalRecord::deserialize(raw);
      if (record.first_seq != cursor)
        throw ProtocolError("catch-up: donor backfill out of order (record seq " +
                            std::to_string(record.first_seq) + ", cursor " +
                            std::to_string(cursor) + ")");
      cloud::UpdateRequest replay;
      replay.delta_id = record.delta_id;
      replay.delta = seg::UpdateDelta::deserialize(record.delta);
      const auto ack = cloud::UpdateResponse::deserialize(
          set.call_replica(laggard, cloud::MessageType::kUpdate, replay.serialize(),
                           options_.retry));
      backfill_records_counter_->inc();
      backfill_bytes_counter_->inc(record.delta.size());
      backfills_completed_.fetch_add(1);
      cursor = ack.next_seq;
    }
  }
}

bool ClusterCoordinator::snapshot_repair(ReplicaSet& set, std::size_t shard,
                                         std::size_t donor, std::size_t laggard) {
  if (!catch_up_options_.install_snapshot) return false;
  const auto snapshot = cloud::SnapshotResponse::deserialize(
      set.call_replica(donor, cloud::MessageType::kSnapshot,
                       cloud::SnapshotRequest{}.serialize(), options_.retry));
  if (!catch_up_options_.install_snapshot(shard, laggard, snapshot)) return false;
  snapshot_repairs_counter_->inc();
  snapshot_repairs_.fetch_add(1);
  return true;
}

Bytes ClusterCoordinator::dispatch(cloud::MessageType type, BytesView request,
                                   const Deadline& deadline,
                                   obs::TraceRecorder* trace,
                                   std::uint64_t parent_span_id,
                                   const std::string& tenant) {
  switch (type) {
    case cloud::MessageType::kRankedSearch: {
      auto resp = do_ranked_search(request, deadline, trace, parent_span_id, tenant);
      if (resp.partial) metrics_.record_partial();
      return resp.serialize();
    }
    case cloud::MessageType::kMultiSearch: {
      auto resp = do_multi_search(request, deadline, trace, parent_span_id, tenant);
      if (resp.partial) metrics_.record_partial();
      return resp.serialize();
    }
    case cloud::MessageType::kBasicEntries: {
      // Row-routed, no blobs to fill: pass the shard's answer through.
      const auto req = cloud::BasicEntriesRequest::deserialize(request);
      return shard_call(shard_map_.shard_of_label(req.trapdoor.label), type, request,
                        deadline, trace, parent_span_id, tenant);
    }
    case cloud::MessageType::kBasicFiles: {
      const auto req = cloud::BasicEntriesRequest::deserialize(request);
      const std::size_t shard = shard_map_.shard_of_label(req.trapdoor.label);
      auto resp = cloud::BasicFilesResponse::deserialize(
          shard_call(shard, type, request, deadline, trace, parent_span_id, tenant));
      std::vector<std::pair<std::uint64_t, Bytes*>> missing;
      for (cloud::BasicFile& f : resp.files)
        if (f.blob.empty()) missing.push_back({ir::value(f.id), &f.blob});
      bool degraded = false;
      fetch_and_fill(missing, shard, &degraded, deadline, trace, parent_span_id,
                     tenant);
      if (degraded) metrics_.record_partial();
      return resp.serialize();
    }
    case cloud::MessageType::kFetchFiles: {
      bool degraded = false;
      Bytes out = do_fetch_files(cloud::FetchFilesRequest::deserialize(request),
                                 &degraded, deadline, trace, parent_span_id, tenant)
                      .serialize();
      if (degraded) metrics_.record_partial();
      return out;
    }
    case cloud::MessageType::kStats: {
      // The coordinator answers from its own registry: per-shard routing
      // counters, replica failovers, latency histograms. The shards'
      // rsse_server_* families are scraped from the shards themselves.
      // This is an operator view — the cluster registry carries every
      // tenant's routing counters, so it is never served inside a tenant
      // envelope (a tenant reads its own stats from its tenant host).
      if (!tenant.empty())
        throw ProtocolError(
            "ClusterCoordinator: cluster stats are operator-only, not "
            "tenant-scoped");
      const auto req = cloud::StatsRequest::deserialize(request);
      cloud::StatsResponse resp;
      resp.text = req.format == cloud::StatsFormat::kPrometheus
                      ? metrics_.registry().render_prometheus()
                      : metrics_.registry().render_json();
      return resp.serialize();
    }
    case cloud::MessageType::kUpdate:
      return do_update(request, deadline, trace, parent_span_id, tenant).serialize();
    case cloud::MessageType::kTrace:
      // The coordinator keeps no slow-query log of its own; clients trace
      // cluster queries end to end with their own TraceRecorder, and each
      // shard's log is served shard-direct.
      throw ProtocolError("ClusterCoordinator: trace log is shard-direct");
    case cloud::MessageType::kSnapshot:
      // Snapshots are a replica-to-replica repair primitive; a cluster-wide
      // snapshot has no single owner to answer it.
      throw ProtocolError("ClusterCoordinator: snapshot is replica-direct");
    case cloud::MessageType::kDeltaBackfill:
      // Backfill addresses one replica's WAL tail; the coordinator runs it
      // itself (anti-entropy) but cannot answer it for the cluster.
      throw ProtocolError("ClusterCoordinator: delta backfill is replica-direct");
    case cloud::MessageType::kTenantScoped: {
      // Unwrap for routing only. The parse validates the tenant id and
      // rejects nested envelopes; the per-tenant attribution counter is
      // capped by the registry's label-cardinality limit, so a client
      // inventing tenant ids cannot grow the registry. Quota enforcement
      // stays with the tenant-host shards, which see the re-wrapped
      // envelope on every sub-request.
      if (!tenant.empty())
        throw ProtocolError("ClusterCoordinator: nested tenant envelope");
      const auto env = cloud::TenantScopedRequest::deserialize(request);
      metrics_.registry()
          .counter("rsse_cluster_tenant_requests_total",
                   "Requests routed per tenant", {{"tenant", env.tenant}})
          .inc();
      return dispatch(env.inner_type, env.inner_payload, deadline, trace,
                      parent_span_id, env.tenant);
    }
  }
  throw ProtocolError("ClusterCoordinator: unknown message type");
}

Bytes ClusterCoordinator::call(cloud::MessageType type, BytesView request,
                               const Deadline& deadline) {
  return call(type, request, deadline, nullptr, 0);
}

Bytes ClusterCoordinator::call(cloud::MessageType type, BytesView request,
                               const Deadline& deadline, obs::TraceRecorder* trace,
                               std::uint64_t parent_span_id) {
  const Deadline effective = deadline.tightened(options_.query_timeout);
  obs::SpanScope span(trace, std::string("coordinator.") + message_name(type),
                      "coordinator", parent_span_id);
  try {
    Bytes response = dispatch(type, request, effective, trace, span.span_id());
    account(request.size() + 1, response.size());
    bytes_up_total_->inc(request.size() + 1);
    bytes_down_total_->inc(response.size());
    return response;
  } catch (const DeadlineExceeded&) {
    deadline_expiries_->inc();
    span.event("deadline_exceeded", "whole-query budget spent");
    span.set_status("deadline_exceeded");
    throw;
  } catch (const Error&) {
    span.set_status("error");
    throw;
  }
}

LocalCluster make_local_cluster(const sse::SecureIndex& index,
                                const std::map<std::uint64_t, Bytes>& files,
                                std::uint32_t num_shards, std::uint32_t replicas,
                                CoordinatorOptions options) {
  detail::require(replicas > 0, "make_local_cluster: zero replicas");
  const ShardMap map(num_shards);

  LocalCluster cluster;
  cluster.manifest.num_shards = num_shards;
  cluster.manifest.replicas = replicas;
  cluster.manifest.total_rows = index.num_rows();
  cluster.manifest.total_files = files.size();

  auto indexes = map.split_index(index);
  auto file_sets = map.split_files(files);
  std::vector<std::unique_ptr<ReplicaSet>> shards;
  shards.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    auto server = std::make_unique<cloud::CloudServer>();
    server->store(std::move(indexes[i]), std::move(file_sets[i]));
    auto replica_set = std::make_unique<ReplicaSet>();
    for (std::uint32_t r = 0; r < replicas; ++r)
      replica_set->add_replica(std::make_unique<cloud::Channel>(*server));
    cluster.servers.push_back(std::move(server));
    shards.push_back(std::move(replica_set));
  }
  cluster.coordinator = std::make_unique<ClusterCoordinator>(
      cluster.manifest, std::move(shards), options);
  return cluster;
}

}  // namespace rsse::cluster
