#include "cluster/replica.h"

#include <algorithm>
#include <thread>

#include "util/errors.h"

namespace rsse::cluster {

void ReplicaSet::add_replica(std::unique_ptr<cloud::Transport> transport) {
  detail::require(transport != nullptr, "ReplicaSet: null transport");
  auto replica = std::make_unique<Replica>();
  replica->transport = std::move(transport);
  replicas_.push_back(std::move(replica));
}

std::int64_t ReplicaSet::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ReplicaSet::is_down(const Replica& replica) const {
  return replica.down_until_ns.load() > now_ns();
}

void ReplicaSet::mark_down(Replica& replica, const RetryPolicy& policy) {
  replica.down_until_ns.store(
      now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.down_cooldown)
          .count());
}

std::size_t ReplicaSet::healthy_replicas() const {
  std::size_t healthy = 0;
  for (const auto& replica : replicas_)
    if (!is_down(*replica)) ++healthy;
  return healthy;
}

void ReplicaSet::bind_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels) {
  failovers_counter_ = &registry.counter(
      "rsse_cluster_failovers_total",
      "Calls that succeeded only after failing over off the preferred replica",
      labels);
  failed_attempts_counter_ = &registry.counter(
      "rsse_cluster_failed_attempts_total",
      "Individual replica attempts that failed (including later-recovered ones)",
      labels);
  deadline_failures_counter_ = &registry.counter(
      "rsse_cluster_deadline_failures_total",
      "Replica attempts that exhausted their time budget", labels);
}

void ReplicaSet::bump_failover() {
  ++failovers_;
  if (failovers_counter_) failovers_counter_->inc();
}

void ReplicaSet::bump_failed_attempt() {
  ++failed_attempts_;
  if (failed_attempts_counter_) failed_attempts_counter_->inc();
}

void ReplicaSet::bump_deadline_failure() {
  ++deadline_failures_;
  if (deadline_failures_counter_) deadline_failures_counter_->inc();
}

Bytes ReplicaSet::call(cloud::MessageType type, BytesView request,
                       const RetryPolicy& policy, const Deadline& deadline) {
  return call(type, request, policy, deadline, nullptr, 0);
}

Bytes ReplicaSet::call(cloud::MessageType type, BytesView request,
                       const RetryPolicy& policy, const Deadline& deadline,
                       obs::TraceRecorder* trace, std::uint64_t parent_span_id) {
  detail::require(!replicas_.empty(), "ReplicaSet::call: no replicas");
  detail::require(policy.max_attempts > 0, "ReplicaSet::call: zero attempts");

  obs::SpanScope span(trace, "replica.call", node_name_, parent_span_id);
  const std::size_t preferred = preferred_.load() % replicas_.size();
  std::exception_ptr last_error;
  std::chrono::milliseconds backoff = policy.base_backoff;

  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    try {
      deadline.check("ReplicaSet::call");
    } catch (const DeadlineExceeded&) {
      span.event("deadline_exceeded", "overall budget spent before attempt " +
                                          std::to_string(attempt));
      span.set_status("deadline_exceeded");
      throw;
    }
    // Candidate order: preferred first, then round-robin. A replica in
    // failure cooldown is skipped unless every replica is down (then we
    // try anyway — a request beats a guaranteed failure).
    std::size_t index = (preferred + attempt) % replicas_.size();
    if (is_down(*replicas_[index])) {
      const bool all_down = healthy_replicas() == 0;
      if (!all_down) {
        for (std::size_t step = 0; step < replicas_.size(); ++step) {
          const std::size_t candidate = (index + step) % replicas_.size();
          if (!is_down(*replicas_[candidate])) {
            index = candidate;
            break;
          }
        }
      }
    }
    // `routed` is the health-based choice (drives preferred/failover
    // bookkeeping); `index` may divert to an idle sibling below.
    const std::size_t routed = index;
    // The attempt budget caps how long one replica may hold the call
    // before the set fails over — a hung replica becomes a failed
    // attempt, not a hung query.
    const Deadline attempt_deadline = deadline.tightened(policy.attempt_timeout);
    try {
      Bytes response;
      {
        // Prefer an idle connection: sweep healthy replicas with try_lock
        // so a short request does not queue behind a long in-flight one on
        // the same connection; wait on the routed replica only when every
        // connection is busy.
        std::unique_lock<std::mutex> lock(replicas_[index]->mutex, std::defer_lock);
        if (!lock.try_lock()) {
          for (std::size_t step = 1; step < replicas_.size(); ++step) {
            const std::size_t candidate = (index + step) % replicas_.size();
            if (is_down(*replicas_[candidate])) continue;
            std::unique_lock<std::mutex> other(replicas_[candidate]->mutex,
                                               std::try_to_lock);
            if (other.owns_lock()) {
              lock = std::move(other);
              index = candidate;
              break;
            }
          }
          if (!lock.owns_lock()) lock.lock();
        }
        obs::SpanScope attempt_span(trace, "replica.attempt",
                                    node_name_ + "/replica" + std::to_string(index),
                                    span.span_id());
        try {
          response = replicas_[index]->transport->call(
              type, request, attempt_deadline, trace, attempt_span.span_id());
        } catch (const DeadlineExceeded&) {
          attempt_span.set_status("deadline_exceeded");
          throw;
        } catch (const Error&) {
          attempt_span.set_status("error");
          throw;
        }
      }
      replicas_[index]->down_until_ns.store(0);
      if (routed != preferred) {
        bump_failover();
        span.event("failover", "replica " + std::to_string(preferred) + " -> " +
                                   std::to_string(routed));
        preferred_.store(routed);
      }
      return response;
    } catch (const DeadlineExceeded&) {
      bump_failed_attempt();
      bump_deadline_failure();
      mark_down(*replicas_[index], policy);
      span.event("deadline_exceeded",
                 "attempt " + std::to_string(attempt) + " on replica " +
                     std::to_string(index) + " ran out of budget");
      // The overall budget is gone: surface it. Only the per-attempt cap
      // fired: fail over to the next replica like any other failure.
      if (deadline.expired()) {
        span.set_status("deadline_exceeded");
        throw;
      }
      last_error = std::current_exception();
    } catch (const Error&) {
      bump_failed_attempt();
      mark_down(*replicas_[index], policy);
      span.event("attempt_failed", "attempt " + std::to_string(attempt) +
                                       " on replica " + std::to_string(index));
      last_error = std::current_exception();
    }
    if (attempt + 1 < policy.max_attempts) {
      const auto remaining = deadline.remaining();
      span.event("retry", "backoff " + std::to_string(backoff.count()) +
                              "ms before attempt " + std::to_string(attempt + 1));
      std::this_thread::sleep_for(std::min(backoff, remaining));
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
  }
  span.set_status("error");
  std::rethrow_exception(last_error);
}

std::size_t ReplicaSet::probe(const RetryPolicy& policy) {
  // An empty fetch is the cheapest request a server answers; any reply at
  // all proves liveness.
  const Bytes ping = cloud::FetchFilesRequest{}.serialize();
  const Deadline deadline = Deadline().tightened(policy.attempt_timeout);
  std::size_t alive = 0;
  for (auto& replica : replicas_) {
    try {
      {
        const std::lock_guard<std::mutex> lock(replica->mutex);
        (void)replica->transport->call(cloud::MessageType::kFetchFiles, ping, deadline);
      }
      replica->down_until_ns.store(0);
      ++alive;
    } catch (const Error&) {
      ++failed_attempts_;
      mark_down(*replica, policy);
    }
  }
  return alive;
}

}  // namespace rsse::cluster
