#include "cluster/replica.h"

#include <algorithm>
#include <thread>

#include "util/errors.h"

namespace rsse::cluster {

void ReplicaSet::add_replica(std::unique_ptr<cloud::Transport> transport) {
  detail::require(transport != nullptr, "ReplicaSet: null transport");
  auto replica = std::make_unique<Replica>();
  replica->transport = std::move(transport);
  replicas_.push_back(std::move(replica));
}

std::int64_t ReplicaSet::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ReplicaSet::is_down(const Replica& replica) const {
  return replica.down_until_ns.load() > now_ns();
}

void ReplicaSet::mark_down(Replica& replica, const RetryPolicy& policy) {
  replica.down_until_ns.store(
      now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.down_cooldown)
          .count());
}

bool ReplicaSet::routable(const Replica& replica) const {
  return !is_down(replica) && !replica.stale.load(std::memory_order_relaxed);
}

std::size_t ReplicaSet::healthy_replicas() const {
  std::size_t healthy = 0;
  for (const auto& replica : replicas_)
    if (!is_down(*replica)) ++healthy;
  return healthy;
}

std::size_t ReplicaSet::stale_replicas() const {
  std::size_t stale = 0;
  for (const auto& replica : replicas_)
    if (replica->stale.load(std::memory_order_relaxed)) ++stale;
  return stale;
}

bool ReplicaSet::is_stale(std::size_t index) const {
  detail::require(index < replicas_.size(), "ReplicaSet::is_stale: bad index");
  return replicas_[index]->stale.load(std::memory_order_relaxed);
}

std::uint64_t ReplicaSet::target_seq() const {
  std::uint64_t max_seq = 0;
  for (const auto& replica : replicas_)
    max_seq = std::max(max_seq,
                       replica->applied_next_seq.load(std::memory_order_relaxed));
  return max_seq;
}

std::uint64_t ReplicaSet::applied_seq(std::size_t index) const {
  detail::require(index < replicas_.size(), "ReplicaSet::applied_seq: bad index");
  return replicas_[index]->applied_next_seq.load(std::memory_order_relaxed);
}

void ReplicaSet::note_applied(std::size_t index, std::uint64_t next_seq) {
  detail::require(index < replicas_.size(), "ReplicaSet::note_applied: bad index");
  // Monotonic max: a late probe result must not roll back a newer ack.
  auto& applied = replicas_[index]->applied_next_seq;
  std::uint64_t seen = applied.load(std::memory_order_relaxed);
  while (seen < next_seq &&
         !applied.compare_exchange_weak(seen, next_seq, std::memory_order_relaxed)) {
  }
  refresh_staleness();
}

void ReplicaSet::mark_stale(std::size_t index) {
  detail::require(index < replicas_.size(), "ReplicaSet::mark_stale: bad index");
  replicas_[index]->stale.store(true, std::memory_order_relaxed);
}

void ReplicaSet::refresh_staleness() {
  const std::uint64_t max_seq = target_seq();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::uint64_t applied =
        replicas_[i]->applied_next_seq.load(std::memory_order_relaxed);
    // A replica that never reported (0) keeps its current flag: an
    // unprobed read-only cluster must not route around itself.
    if (applied != 0)
      replicas_[i]->stale.store(applied < max_seq, std::memory_order_relaxed);
    if (i < lag_gauges_.size() && lag_gauges_[i] != nullptr)
      lag_gauges_[i]->set(
          applied == 0 ? 0 : static_cast<std::int64_t>(max_seq - applied));
  }
}

void ReplicaSet::bind_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels) {
  failovers_counter_ = &registry.counter(
      "rsse_cluster_failovers_total",
      "Calls that succeeded only after failing over off the preferred replica",
      labels);
  failed_attempts_counter_ = &registry.counter(
      "rsse_cluster_failed_attempts_total",
      "Individual replica attempts that failed (including later-recovered ones)",
      labels);
  deadline_failures_counter_ = &registry.counter(
      "rsse_cluster_deadline_failures_total",
      "Replica attempts that exhausted their time budget", labels);
  lag_gauges_.clear();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    obs::Labels replica_labels = labels;
    replica_labels.emplace_back("replica", std::to_string(i));
    lag_gauges_.push_back(&registry.gauge(
        "rsse_cluster_replica_lag",
        "Update sequences this replica lags behind the most current replica "
        "of its shard",
        replica_labels));
  }
}

void ReplicaSet::bump_failover() {
  ++failovers_;
  if (failovers_counter_) failovers_counter_->inc();
}

void ReplicaSet::bump_failed_attempt() {
  ++failed_attempts_;
  if (failed_attempts_counter_) failed_attempts_counter_->inc();
}

void ReplicaSet::bump_deadline_failure() {
  ++deadline_failures_;
  if (deadline_failures_counter_) deadline_failures_counter_->inc();
}

Bytes ReplicaSet::call(cloud::MessageType type, BytesView request,
                       const RetryPolicy& policy, const Deadline& deadline) {
  return call(type, request, policy, deadline, nullptr, 0);
}

Bytes ReplicaSet::call(cloud::MessageType type, BytesView request,
                       const RetryPolicy& policy, const Deadline& deadline,
                       obs::TraceRecorder* trace, std::uint64_t parent_span_id) {
  detail::require(!replicas_.empty(), "ReplicaSet::call: no replicas");
  detail::require(policy.max_attempts > 0, "ReplicaSet::call: zero attempts");

  obs::SpanScope span(trace, "replica.call", node_name_, parent_span_id);
  const std::size_t preferred = preferred_.load() % replicas_.size();
  std::exception_ptr last_error;
  std::chrono::milliseconds backoff = policy.base_backoff;

  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    try {
      deadline.check("ReplicaSet::call");
    } catch (const DeadlineExceeded&) {
      span.event("deadline_exceeded", "overall budget spent before attempt " +
                                          std::to_string(attempt));
      span.set_status("deadline_exceeded");
      throw;
    }
    // Candidate order: preferred first, then round-robin. A replica in
    // failure cooldown or marked stale (behind on acked updates — it
    // would serve wrong results) is skipped while an alternative exists;
    // when every replica is excluded we fall back to cooldown-only
    // skipping, and past that try the original candidate anyway — a
    // request beats a guaranteed failure.
    std::size_t index = (preferred + attempt) % replicas_.size();
    if (!routable(*replicas_[index])) {
      bool diverted = false;
      for (std::size_t step = 0; step < replicas_.size() && !diverted; ++step) {
        const std::size_t candidate = (index + step) % replicas_.size();
        if (routable(*replicas_[candidate])) {
          index = candidate;
          diverted = true;
        }
      }
      if (!diverted && healthy_replicas() > 0) {
        for (std::size_t step = 0; step < replicas_.size(); ++step) {
          const std::size_t candidate = (index + step) % replicas_.size();
          if (!is_down(*replicas_[candidate])) {
            index = candidate;
            break;
          }
        }
      }
    }
    // `routed` is the health-based choice (drives preferred/failover
    // bookkeeping); `index` may divert to an idle sibling below.
    const std::size_t routed = index;
    // The attempt budget caps how long one replica may hold the call
    // before the set fails over — a hung replica becomes a failed
    // attempt, not a hung query.
    const Deadline attempt_deadline = deadline.tightened(policy.attempt_timeout);
    try {
      Bytes response;
      {
        // Prefer an idle connection: sweep healthy replicas with try_lock
        // so a short request does not queue behind a long in-flight one on
        // the same connection; wait on the routed replica only when every
        // connection is busy.
        std::unique_lock<std::mutex> lock(replicas_[index]->mutex, std::defer_lock);
        if (!lock.try_lock()) {
          for (std::size_t step = 1; step < replicas_.size(); ++step) {
            const std::size_t candidate = (index + step) % replicas_.size();
            if (!routable(*replicas_[candidate])) continue;
            std::unique_lock<std::mutex> other(replicas_[candidate]->mutex,
                                               std::try_to_lock);
            if (other.owns_lock()) {
              lock = std::move(other);
              index = candidate;
              break;
            }
          }
          if (!lock.owns_lock()) lock.lock();
        }
        obs::SpanScope attempt_span(trace, "replica.attempt",
                                    node_name_ + "/replica" + std::to_string(index),
                                    span.span_id());
        try {
          response = replicas_[index]->transport->call(
              type, request, attempt_deadline, trace, attempt_span.span_id());
        } catch (const DeadlineExceeded&) {
          attempt_span.set_status("deadline_exceeded");
          throw;
        } catch (const QuotaExceeded&) {
          attempt_span.set_status("quota_exceeded");
          throw;
        } catch (const Error&) {
          attempt_span.set_status("error");
          throw;
        }
      }
      replicas_[index]->down_until_ns.store(0);
      if (routed != preferred) {
        bump_failover();
        span.event("failover", "replica " + std::to_string(preferred) + " -> " +
                                   std::to_string(routed));
        preferred_.store(routed);
      }
      return response;
    } catch (const DeadlineExceeded&) {
      bump_failed_attempt();
      bump_deadline_failure();
      mark_down(*replicas_[index], policy);
      span.event("deadline_exceeded",
                 "attempt " + std::to_string(attempt) + " on replica " +
                     std::to_string(index) + " ran out of budget");
      // The overall budget is gone: surface it. Only the per-attempt cap
      // fired: fail over to the next replica like any other failure.
      if (deadline.expired()) {
        span.set_status("deadline_exceeded");
        throw;
      }
      last_error = std::current_exception();
    } catch (const QuotaExceeded&) {
      // An admission shed means the TENANT is over its quota, not that
      // this replica is unhealthy. Every replica enforces the same
      // quota, so failover would retry a guaranteed rejection, and
      // mark_down would put a healthy replica into failure cooldown for
      // every other tenant. Surface the shed untouched.
      span.set_status("quota_exceeded");
      throw;
    } catch (const Error&) {
      bump_failed_attempt();
      mark_down(*replicas_[index], policy);
      span.event("attempt_failed", "attempt " + std::to_string(attempt) +
                                       " on replica " + std::to_string(index));
      last_error = std::current_exception();
    }
    if (attempt + 1 < policy.max_attempts) {
      const auto remaining = deadline.remaining();
      span.event("retry", "backoff " + std::to_string(backoff.count()) +
                              "ms before attempt " + std::to_string(attempt + 1));
      std::this_thread::sleep_for(std::min(backoff, remaining));
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
  }
  span.set_status("error");
  std::rethrow_exception(last_error);
}

std::vector<ReplicaSet::ReplicaOutcome> ReplicaSet::call_all(
    cloud::MessageType type, BytesView request, const RetryPolicy& policy,
    const Deadline& deadline, obs::TraceRecorder* trace,
    std::uint64_t parent_span_id) {
  detail::require(!replicas_.empty(), "ReplicaSet::call_all: no replicas");
  obs::SpanScope span(trace, "replica.call_all", node_name_, parent_span_id);
  deadline.check("ReplicaSet::call_all");

  std::vector<ReplicaOutcome> outcomes(replicas_.size());
  // Stale replicas are skipped outright: a live delta applied out of
  // order would be assigned the wrong sequence range; anti-entropy
  // replays it to them in order instead.
  std::vector<std::size_t> pending;
  pending.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->stale.load(std::memory_order_relaxed)) {
      outcomes[i].skipped = true;
      span.event("skipped_stale", "replica " + std::to_string(i));
    } else {
      pending.push_back(i);
    }
  }

  const auto run_one = [&](std::size_t i) {
    Replica& replica = *replicas_[i];
    outcomes[i] = ReplicaOutcome{};  // a retry clears the previous error
    const Deadline attempt_deadline = deadline.tightened(policy.attempt_timeout);
    obs::SpanScope attempt_span(trace, "replica.attempt",
                                node_name_ + "/replica" + std::to_string(i),
                                span.span_id());
    try {
      {
        const std::lock_guard<std::mutex> lock(replica.mutex);
        outcomes[i].response = replica.transport->call(
            type, request, attempt_deadline, trace, attempt_span.span_id());
      }
      replica.down_until_ns.store(0);
    } catch (const DeadlineExceeded&) {
      attempt_span.set_status("deadline_exceeded");
      outcomes[i].error = std::current_exception();
      bump_failed_attempt();
      bump_deadline_failure();
      mark_down(replica, policy);
    } catch (const QuotaExceeded&) {
      // Tenant over quota, replica healthy: the miss counts against the
      // quorum (the delta was not applied here) but the replica is not
      // marked down and the round loop below does not re-send — every
      // replica enforces the same quota, so a retry would only sleep
      // through backoff while holding the coordinator's update lock.
      attempt_span.set_status("quota_exceeded");
      outcomes[i].error = std::current_exception();
      outcomes[i].shed = true;
    } catch (const Error&) {
      attempt_span.set_status("error");
      outcomes[i].error = std::current_exception();
      bump_failed_attempt();
      mark_down(replica, policy);
    }
  };

  // Up to max_attempts parallel rounds: every round re-sends only to the
  // replicas still failing (the calling thread takes the first, a thread
  // each for the rest), with the same capped exponential backoff between
  // rounds as call(). Replicas that already acked are not re-sent — with
  // a non-zero delta_id a duplicate would replay anyway, but there is no
  // reason to spend the traffic.
  std::chrono::milliseconds backoff = policy.base_backoff;
  const std::uint32_t rounds = std::max<std::uint32_t>(policy.max_attempts, 1);
  for (std::uint32_t attempt = 0; attempt < rounds && !pending.empty(); ++attempt) {
    if (attempt > 0) {
      span.event("retry", "backoff " + std::to_string(backoff.count()) + "ms, " +
                              std::to_string(pending.size()) + " replicas pending");
      std::this_thread::sleep_for(std::min(backoff, deadline.remaining()));
      backoff = std::min(backoff * 2, policy.max_backoff);
      if (deadline.expired()) break;
    }
    if (policy.ordered_fanout) {
      for (const std::size_t i : pending) run_one(i);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(pending.size() - 1);
      for (std::size_t t = 1; t < pending.size(); ++t)
        workers.emplace_back(run_one, pending[t]);
      run_one(pending[0]);
      for (std::thread& worker : workers) worker.join();
    }

    std::vector<std::size_t> still_failing;
    for (const std::size_t i : pending)
      if (outcomes[i].error && !outcomes[i].shed) still_failing.push_back(i);
    pending = std::move(still_failing);
  }
  return outcomes;
}

Bytes ReplicaSet::call_replica(std::size_t index, cloud::MessageType type,
                               BytesView request, const RetryPolicy& policy,
                               const Deadline& deadline) {
  detail::require(index < replicas_.size(), "ReplicaSet::call_replica: bad index");
  const Deadline attempt_deadline = deadline.tightened(policy.attempt_timeout);
  Replica& replica = *replicas_[index];
  try {
    Bytes response;
    {
      const std::lock_guard<std::mutex> lock(replica.mutex);
      response = replica.transport->call(type, request, attempt_deadline);
    }
    replica.down_until_ns.store(0);
    return response;
  } catch (const QuotaExceeded&) {
    throw;  // tenant over quota: the replica itself is healthy
  } catch (const Error&) {
    bump_failed_attempt();
    mark_down(replica, policy);
    throw;
  }
}

std::size_t ReplicaSet::probe(const RetryPolicy& policy) {
  std::size_t alive = 0;
  for (const ProbeStatus& status : probe_detailed(policy))
    if (status.alive) ++alive;
  return alive;
}

std::vector<ReplicaSet::ProbeStatus> ReplicaSet::probe_detailed(
    const RetryPolicy& policy) {
  // An empty backfill request is the cheapest request a server answers —
  // any reply proves liveness, and the reply carries the replica's
  // applied sequence cursor, which is exactly the staleness signal.
  const Bytes ping =
      cloud::DeltaBackfillRequest{~std::uint64_t{0}, 0}.serialize();
  const Deadline deadline = Deadline().tightened(policy.attempt_timeout);
  std::vector<ProbeStatus> statuses(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& replica = *replicas_[i];
    try {
      Bytes raw;
      {
        const std::lock_guard<std::mutex> lock(replica.mutex);
        raw = replica.transport->call(cloud::MessageType::kDeltaBackfill, ping,
                                      deadline);
      }
      const auto resp = cloud::DeltaBackfillResponse::deserialize(raw);
      replica.down_until_ns.store(0);
      std::uint64_t seen = replica.applied_next_seq.load(std::memory_order_relaxed);
      while (seen < resp.next_seq &&
             !replica.applied_next_seq.compare_exchange_weak(
                 seen, resp.next_seq, std::memory_order_relaxed)) {
      }
      statuses[i].alive = true;
    } catch (const Error&) {
      bump_failed_attempt();
      mark_down(replica, policy);
    }
  }
  refresh_staleness();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    statuses[i].next_seq =
        replicas_[i]->applied_next_seq.load(std::memory_order_relaxed);
    statuses[i].stale = replicas_[i]->stale.load(std::memory_order_relaxed);
  }
  return statuses;
}

}  // namespace rsse::cluster
