// Coordinator-side observability, mirroring cloud/metrics.h shard by
// shard: request/error counters and a service-time histogram per shard,
// plus cluster-wide scatter-gather and degradation counters. Content-free
// like the server's own metrics — the coordinator sees only what the
// shards it queries already see.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/metrics.h"

namespace rsse::cluster {

/// Point-in-time counters of one shard, as seen from the coordinator.
struct ShardMetricsSnapshot {
  std::uint64_t requests = 0;  ///< sub-requests routed to this shard
  std::uint64_t errors = 0;    ///< sub-requests that failed all replicas
  cloud::LatencyStats latency;  ///< replica-set call time (incl. retries)
};

/// Point-in-time copy of the whole cluster's counters.
struct ClusterMetricsSnapshot {
  std::vector<ShardMetricsSnapshot> shards;
  std::uint64_t scatter_gathers = 0;    ///< multi-shard fan-out queries
  std::uint64_t partial_responses = 0;  ///< responses flagged partial

  /// Sub-requests across all shards.
  [[nodiscard]] std::uint64_t total_requests() const {
    std::uint64_t total = 0;
    for (const ShardMetricsSnapshot& s : shards) total += s.requests;
    return total;
  }
};

/// The live per-shard counters (one instance per ClusterCoordinator).
class ClusterMetrics {
 public:
  explicit ClusterMetrics(std::size_t num_shards) {
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<PerShard>());
  }

  void record_request(std::size_t shard, double seconds) {
    ++shards_[shard]->requests;
    shards_[shard]->latency.record(seconds);
  }
  void record_error(std::size_t shard) { ++shards_[shard]->errors; }
  void record_scatter_gather() { ++scatter_gathers_; }
  void record_partial() { ++partial_responses_; }

  [[nodiscard]] ClusterMetricsSnapshot snapshot() const {
    ClusterMetricsSnapshot s;
    s.shards.reserve(shards_.size());
    for (const auto& shard : shards_) {
      ShardMetricsSnapshot per;
      per.requests = shard->requests.load();
      per.errors = shard->errors.load();
      per.latency = shard->latency.snapshot();
      s.shards.push_back(per);
    }
    s.scatter_gathers = scatter_gathers_.load();
    s.partial_responses = partial_responses_.load();
    return s;
  }

 private:
  // Heap-allocated per-shard slots: atomics are not movable, and the
  // vector is sized once at construction anyway.
  struct PerShard {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    cloud::LatencyRecorder latency;
  };

  std::vector<std::unique_ptr<PerShard>> shards_;
  std::atomic<std::uint64_t> scatter_gathers_{0};
  std::atomic<std::uint64_t> partial_responses_{0};
};

}  // namespace rsse::cluster
