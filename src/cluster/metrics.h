// Coordinator-side observability, mirroring cloud/metrics.h shard by
// shard: request/error counters and a service-time histogram per shard,
// plus cluster-wide scatter-gather and degradation counters. Content-free
// like the server's own metrics — the coordinator sees only what the
// shards it queries already see.
//
// Backed by the unified obs::MetricsRegistry: every number lives in a
// registry instrument under the rsse_cluster_* family prefix, so the
// snapshot the tests assert on and a Prometheus scrape of the live
// coordinator read the same counters. Registry families:
//   rsse_cluster_requests_total{shard=...}                counter
//   rsse_cluster_errors_total{shard=...}                  counter
//   rsse_cluster_request_latency_seconds{shard=...}       histogram
//   rsse_cluster_scatter_gathers_total                    counter
//   rsse_cluster_partial_responses_total                  counter
// (cluster/replica.h adds rsse_cluster_failovers_total /
// failed_attempts_total / deadline_failures_total plus a
// rsse_cluster_replica_lag{shard,replica} gauge per replica to the same
// registry via ReplicaSet::bind_metrics, and cluster/coordinator.h adds
// rsse_cluster_update_quorum_failures_total and the anti-entropy
// rsse_cluster_backfill_records_total / backfill_bytes_total /
// snapshot_repairs_total.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/metrics.h"
#include "obs/metrics.h"

namespace rsse::cluster {

/// Point-in-time counters of one shard, as seen from the coordinator.
struct ShardMetricsSnapshot {
  std::uint64_t requests = 0;  ///< sub-requests routed to this shard
  std::uint64_t errors = 0;    ///< sub-requests that failed all replicas
  cloud::LatencyStats latency;  ///< replica-set call time (incl. retries)
};

/// Point-in-time copy of the whole cluster's counters.
struct ClusterMetricsSnapshot {
  std::vector<ShardMetricsSnapshot> shards;
  std::uint64_t scatter_gathers = 0;    ///< multi-shard fan-out queries
  std::uint64_t partial_responses = 0;  ///< responses flagged partial

  /// Sub-requests across all shards.
  [[nodiscard]] std::uint64_t total_requests() const {
    std::uint64_t total = 0;
    for (const ShardMetricsSnapshot& s : shards) total += s.requests;
    return total;
  }
};

/// The live per-shard counters (one instance per ClusterCoordinator).
class ClusterMetrics {
 public:
  explicit ClusterMetrics(std::size_t num_shards) {
    const std::vector<double> bounds = obs::log_bounds();
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      const obs::Labels labels = {{"shard", std::to_string(i)}};
      PerShard shard;
      shard.requests = &registry_.counter("rsse_cluster_requests_total",
                                          "Sub-requests routed to this shard",
                                          labels);
      shard.errors = &registry_.counter(
          "rsse_cluster_errors_total",
          "Sub-requests that failed every replica of this shard", labels);
      shard.latency = &registry_.histogram(
          "rsse_cluster_request_latency_seconds",
          "Replica-set call time in seconds, including retries", bounds, labels);
      shards_.push_back(shard);
    }
    scatter_gathers_ = &registry_.counter("rsse_cluster_scatter_gathers_total",
                                          "Multi-shard fan-out queries");
    partial_responses_ = &registry_.counter(
        "rsse_cluster_partial_responses_total",
        "Degraded responses returned with their partial flag set");
  }

  void record_request(std::size_t shard, double seconds) {
    shards_[shard].requests->inc();
    shards_[shard].latency->observe(seconds);
  }
  void record_error(std::size_t shard) { shards_[shard].errors->inc(); }
  void record_scatter_gather() { scatter_gathers_->inc(); }
  void record_partial() { partial_responses_->inc(); }

  [[nodiscard]] ClusterMetricsSnapshot snapshot() const {
    ClusterMetricsSnapshot s;
    s.shards.reserve(shards_.size());
    for (const PerShard& shard : shards_) {
      ShardMetricsSnapshot per;
      per.requests = shard.requests->value();
      per.errors = shard.errors->value();
      per.latency.count = shard.latency->count();
      if (per.latency.count > 0) {
        per.latency.p50_seconds = shard.latency->quantile(0.50);
        per.latency.p95_seconds = shard.latency->quantile(0.95);
        per.latency.p99_seconds = shard.latency->quantile(0.99);
      }
      s.shards.push_back(per);
    }
    s.scatter_gathers = scatter_gathers_->value();
    s.partial_responses = partial_responses_->value();
    return s;
  }

  /// The backing registry — what the coordinator's kStats handler and a
  /// scrape endpoint render, and where the per-shard ReplicaSets bind
  /// their failure counters. Mutable by design: recording into metrics
  /// does not logically mutate the coordinator.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return registry_; }

 private:
  // Cached instrument pointers (stable for the registry's lifetime).
  struct PerShard {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::HistogramMetric* latency = nullptr;
  };

  mutable obs::MetricsRegistry registry_;
  std::vector<PerShard> shards_;
  obs::Counter* scatter_gathers_ = nullptr;
  obs::Counter* partial_responses_ = nullptr;
};

}  // namespace rsse::cluster
