#include "ext/disjunctive.h"

#include <algorithm>
#include <map>

#include "util/errors.h"

namespace rsse::ext {

std::vector<DisjunctiveRsse::Hit> DisjunctiveRsse::search(
    const sse::SecureIndex& index, const ConjunctiveTrapdoor& trapdoor,
    std::size_t top_k, DisjunctiveRanking ranking) {
  detail::require(!trapdoor.trapdoors.empty(), "DisjunctiveRsse: empty trapdoor");
  std::map<std::uint64_t, Hit> merged;
  for (const sse::Trapdoor& t : trapdoor.trapdoors) {
    for (const sse::RankedSearchEntry& e : sse::RsseScheme::search(index, t)) {
      Hit& hit = merged[ir::value(e.file)];
      hit.file = e.file;
      ++hit.matched_keywords;
      switch (ranking) {
        case DisjunctiveRanking::kMaxOpm:
          hit.aggregate_opm = std::max(hit.aggregate_opm, e.opm_score);
          break;
        case DisjunctiveRanking::kSumOpm:
          hit.aggregate_opm += e.opm_score;
          break;
      }
    }
  }
  std::vector<Hit> hits;
  hits.reserve(merged.size());
  for (const auto& [id, hit] : merged) hits.push_back(hit);
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.aggregate_opm != b.aggregate_opm) return a.aggregate_opm > b.aggregate_opm;
    return ir::value(a.file) < ir::value(b.file);
  });
  if (top_k > 0 && hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace rsse::ext
