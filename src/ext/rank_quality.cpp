#include "ext/rank_quality.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/errors.h"

namespace rsse::ext {

namespace {

// id -> rank position map; throws when ids repeat.
std::unordered_map<std::uint64_t, std::size_t> rank_map(
    const std::vector<std::uint64_t>& ranking) {
  std::unordered_map<std::uint64_t, std::size_t> out;
  out.reserve(ranking.size());
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const auto [it, inserted] = out.emplace(ranking[i], i);
    detail::require(inserted, "rank metric: duplicate id in ranking");
  }
  return out;
}

void check_same_ids(const std::unordered_map<std::uint64_t, std::size_t>& a,
                    const std::vector<std::uint64_t>& b) {
  detail::require(a.size() == b.size(), "rank metric: rankings differ in length");
  for (std::uint64_t id : b)
    detail::require(a.contains(id), "rank metric: rankings are not the same id set");
}

}  // namespace

double kendall_tau(const std::vector<std::uint64_t>& ranking_a,
                   const std::vector<std::uint64_t>& ranking_b) {
  detail::require(ranking_a.size() >= 2, "kendall_tau: need at least two items");
  const auto pos_b = rank_map(ranking_b);
  check_same_ids(pos_b, ranking_a);
  // O(n^2) pair counting: rankings in the benches are top-k lists, small.
  const std::size_t n = ranking_a.size();
  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t bi = pos_b.at(ranking_a[i]);
      const std::size_t bj = pos_b.at(ranking_a[j]);
      if (bi < bj)
        ++concordant;
      else
        ++discordant;
    }
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) / pairs;
}

double precision_at_k(const std::vector<std::uint64_t>& reference,
                      const std::vector<std::uint64_t>& candidate, std::size_t k) {
  detail::require(k > 0, "precision_at_k: k must be positive");
  k = std::min({k, reference.size(), candidate.size()});
  if (k == 0) return 0.0;
  std::unordered_set<std::uint64_t> top_candidate(candidate.begin(),
                                                  candidate.begin() + static_cast<std::ptrdiff_t>(k));
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (top_candidate.contains(reference[i])) ++hits;
  return static_cast<double>(hits) / static_cast<double>(k);
}

double normalized_footrule(const std::vector<std::uint64_t>& ranking_a,
                           const std::vector<std::uint64_t>& ranking_b) {
  detail::require(!ranking_a.empty(), "normalized_footrule: empty ranking");
  const auto pos_b = rank_map(ranking_b);
  check_same_ids(pos_b, ranking_a);
  const std::size_t n = ranking_a.size();
  if (n == 1) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    total += std::abs(static_cast<double>(i) - static_cast<double>(pos_b.at(ranking_a[i])));
  // Maximum footrule distance is floor(n^2 / 2).
  const double max_total = std::floor(static_cast<double>(n) * static_cast<double>(n) / 2.0);
  return total / max_total;
}

}  // namespace rsse::ext
