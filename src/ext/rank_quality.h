// Rank-quality metrics for evaluating approximate ranked retrieval —
// used to quantify how far the sum-of-OPM conjunctive ranking
// (ext/conjunctive.h) falls from the exact eq.-1 ranking, and by tests
// asserting single-keyword RSSE reproduces the plaintext order.
#pragma once

#include <cstdint>
#include <vector>

namespace rsse::ext {

/// Kendall's tau-a rank correlation between two orderings of the SAME id
/// set: +1 identical order, -1 reversed. Throws InvalidArgument when the
/// sequences are not permutations of each other or have fewer than two
/// elements.
double kendall_tau(const std::vector<std::uint64_t>& ranking_a,
                   const std::vector<std::uint64_t>& ranking_b);

/// Precision@k of `candidate` against `reference`: the fraction of the
/// reference's first k ids that also appear in the candidate's first k.
/// k is clamped to both lengths; throws on k == 0.
double precision_at_k(const std::vector<std::uint64_t>& reference,
                      const std::vector<std::uint64_t>& candidate, std::size_t k);

/// Spearman footrule distance normalized to [0,1]: mean absolute rank
/// displacement divided by the maximum possible. 0 = identical order.
double normalized_footrule(const std::vector<std::uint64_t>& ranking_a,
                           const std::vector<std::uint64_t>& ranking_b);

}  // namespace rsse::ext
