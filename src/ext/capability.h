// Fine-grained search authorization — the paper's second future-work
// direction (Sec. VIII suggests attribute-based encryption for
// "fine-grained access control in our multi-user settings").
//
// We model the capability honestly without ABE machinery: instead of the
// trapdoor keys (x, y), a restricted user receives a sealed bundle of
// PRE-COMPUTED trapdoors, one per authorized keyword. The user can
// search exactly those keywords — it never holds key material that
// derives trapdoors for anything else — and revocation is simply not
// re-issuing the bundle. The construction composes entirely from
// primitives the scheme already has, which is why it makes a convincing
// first step before full ABE.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sse/trapdoor_gen.h"
#include "sse/types.h"
#include "util/bytes.h"

namespace rsse::ext {

/// A user's keyword-scoped search capability.
class CapabilityBundle {
 public:
  /// One authorized keyword with its ready-made trapdoor. The keyword is
  /// stored in normalized form so the user's lookup normalizes the same
  /// way.
  struct Grant {
    std::string normalized_keyword;
    sse::Trapdoor trapdoor;
  };

  explicit CapabilityBundle(std::vector<Grant> grants);

  /// The trapdoor for `keyword` if authorized, nullopt otherwise.
  /// Normalizes the query through `analyzer` first.
  [[nodiscard]] std::optional<sse::Trapdoor> trapdoor_for(
      std::string_view keyword, const ir::Analyzer& analyzer) const;

  /// Authorized (normalized) keywords.
  [[nodiscard]] std::vector<std::string> keywords() const;

  /// Number of grants.
  [[nodiscard]] std::size_t size() const { return grants_.size(); }

  [[nodiscard]] Bytes serialize() const;
  static CapabilityBundle deserialize(BytesView blob);

 private:
  std::vector<Grant> grants_;
};

/// Owner side: builds a bundle for a keyword allowlist. Keywords that
/// normalize to nothing are skipped; duplicates collapse. Throws
/// InvalidArgument when nothing survives.
CapabilityBundle make_capability_bundle(const sse::TrapdoorGenerator& generator,
                                        const std::vector<std::string>& keywords);

/// Owner side: seals a bundle to a user's personal key (AES-GCM with the
/// user name bound as associated data, like cloud::AuthorizationService).
Bytes seal_capability_bundle(BytesView user_key, std::string_view user_name,
                             const CapabilityBundle& bundle);

/// User side: opens a sealed bundle. Throws CryptoError on a wrong key,
/// wrong name binding, or tampering.
CapabilityBundle open_capability_bundle(BytesView user_key, std::string_view user_name,
                                        BytesView sealed);

}  // namespace rsse::ext
