#include "ext/conjunctive.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/errors.h"

namespace rsse::ext {

Bytes ConjunctiveTrapdoor::serialize() const {
  Bytes out;
  append_u64(out, trapdoors.size());
  for (const sse::Trapdoor& t : trapdoors) append_lp(out, t.serialize());
  return out;
}

ConjunctiveTrapdoor ConjunctiveTrapdoor::deserialize(BytesView blob) {
  ByteReader reader(blob);
  ConjunctiveTrapdoor ct;
  const std::uint64_t n = reader.read_count(4);  // LP header per trapdoor
  ct.trapdoors.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    ct.trapdoors.push_back(sse::Trapdoor::deserialize(reader.read_lp()));
  if (!reader.exhausted()) throw ParseError("ConjunctiveTrapdoor: trailing bytes");
  return ct;
}

ConjunctiveTrapdoor make_conjunctive_trapdoor(const sse::TrapdoorGenerator& generator,
                                              const std::vector<std::string>& keywords) {
  ConjunctiveTrapdoor ct;
  std::set<std::string> seen;
  for (const std::string& kw : keywords) {
    const std::string normalized = generator.analyzer().normalize_keyword(kw);
    if (normalized.empty() || !seen.insert(normalized).second) continue;
    ct.trapdoors.push_back(
        sse::Trapdoor{generator.label_for(normalized), generator.list_key_for(normalized)});
  }
  detail::require(!ct.trapdoors.empty(),
                  "make_conjunctive_trapdoor: no keyword survives normalization");
  return ct;
}

std::vector<ConjunctiveRsse::Hit> ConjunctiveRsse::search(
    const sse::SecureIndex& index, const ConjunctiveTrapdoor& trapdoor,
    std::size_t top_k) {
  detail::require(!trapdoor.trapdoors.empty(), "ConjunctiveRsse: empty trapdoor");
  // Per-file (hit count, aggregate OPM value).
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> acc;
  for (const sse::Trapdoor& t : trapdoor.trapdoors) {
    for (const sse::RankedSearchEntry& e : sse::RsseScheme::search(index, t)) {
      auto& [count, total] = acc[ir::value(e.file)];
      ++count;
      total += e.opm_score;
    }
  }
  std::vector<Hit> hits;
  for (const auto& [id, cs] : acc) {
    if (cs.first == trapdoor.trapdoors.size())  // conjunctive: all keywords
      hits.push_back(Hit{ir::file_id(id), cs.second});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.aggregate_opm != b.aggregate_opm) return a.aggregate_opm > b.aggregate_opm;
    return ir::value(a.file) < ir::value(b.file);
  });
  if (top_k > 0 && hits.size() > top_k) hits.resize(top_k);
  return hits;
}

ConjunctiveBasic::ServerResult ConjunctiveBasic::search(
    const sse::SecureIndex& index, const ConjunctiveTrapdoor& trapdoor) {
  detail::require(!trapdoor.trapdoors.empty(), "ConjunctiveBasic: empty trapdoor");
  const std::size_t num_terms = trapdoor.trapdoors.size();
  std::map<std::uint64_t, std::vector<Bytes>> per_file;
  ServerResult result;
  result.list_sizes.reserve(num_terms);
  for (std::size_t t = 0; t < num_terms; ++t) {
    const auto entries = sse::BasicScheme::search(index, trapdoor.trapdoors[t]);
    result.list_sizes.push_back(entries.size());
    for (const sse::BasicSearchEntry& e : entries) {
      auto& scores = per_file[ir::value(e.file)];
      scores.resize(num_terms);
      scores[t] = e.encrypted_score;
    }
  }
  for (auto& [id, scores] : per_file) {
    const bool complete = std::all_of(scores.begin(), scores.end(),
                                      [](const Bytes& b) { return !b.empty(); });
    if (complete)
      result.hits.push_back(ServerHit{ir::file_id(id), std::move(scores)});
  }
  return result;
}

std::vector<sse::RankedHit> ConjunctiveBasic::rank(const ServerResult& result,
                                                   BytesView score_key,
                                                   std::uint64_t collection_size,
                                                   std::size_t top_k) {
  detail::require(collection_size > 0, "ConjunctiveBasic::rank: empty collection");
  std::vector<sse::RankedHit> ranked;
  ranked.reserve(result.hits.size());
  for (const ServerHit& hit : result.hits) {
    detail::require(hit.encrypted_scores.size() == result.list_sizes.size(),
                    "ConjunctiveBasic::rank: score/list-size arity mismatch");
    double total = 0.0;
    for (std::size_t t = 0; t < hit.encrypted_scores.size(); ++t) {
      // Stored field is the eq. 2 value (1 + ln tf)/|F_d|; multiply in the
      // query-time IDF to complete eq. 1.
      const double tf_part = sse::decrypt_basic_score(score_key, hit.encrypted_scores[t]);
      const double idf = std::log(1.0 + static_cast<double>(collection_size) /
                                            static_cast<double>(result.list_sizes[t]));
      total += tf_part * idf;
    }
    ranked.push_back(sse::RankedHit{hit.file, total});
  }
  std::sort(ranked.begin(), ranked.end(), [](const sse::RankedHit& a, const sse::RankedHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return ir::value(a.file) < ir::value(b.file);
  });
  if (top_k > 0 && ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace rsse::ext
