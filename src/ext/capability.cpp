#include "ext/capability.h"

#include <algorithm>
#include <set>

#include "crypto/aes_gcm.h"
#include "util/errors.h"

namespace rsse::ext {

CapabilityBundle::CapabilityBundle(std::vector<Grant> grants)
    : grants_(std::move(grants)) {
  std::set<std::string> seen;
  for (const Grant& g : grants_) {
    detail::require(!g.normalized_keyword.empty(), "CapabilityBundle: empty keyword");
    detail::require(seen.insert(g.normalized_keyword).second,
                    "CapabilityBundle: duplicate keyword grant");
  }
}

std::optional<sse::Trapdoor> CapabilityBundle::trapdoor_for(
    std::string_view keyword, const ir::Analyzer& analyzer) const {
  const std::string normalized = analyzer.normalize_keyword(keyword);
  if (normalized.empty()) return std::nullopt;
  const auto it = std::find_if(grants_.begin(), grants_.end(), [&](const Grant& g) {
    return g.normalized_keyword == normalized;
  });
  if (it == grants_.end()) return std::nullopt;
  return it->trapdoor;
}

std::vector<std::string> CapabilityBundle::keywords() const {
  std::vector<std::string> out;
  out.reserve(grants_.size());
  for (const Grant& g : grants_) out.push_back(g.normalized_keyword);
  return out;
}

Bytes CapabilityBundle::serialize() const {
  Bytes out;
  append_u64(out, grants_.size());
  for (const Grant& g : grants_) {
    append_lp(out, to_bytes(g.normalized_keyword));
    append_lp(out, g.trapdoor.serialize());
  }
  return out;
}

CapabilityBundle CapabilityBundle::deserialize(BytesView blob) {
  ByteReader reader(blob);
  const std::uint64_t n = reader.read_count(8);  // two LP headers per grant
  std::vector<Grant> grants;
  grants.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Grant g;
    g.normalized_keyword = to_string(reader.read_lp());
    g.trapdoor = sse::Trapdoor::deserialize(reader.read_lp());
    grants.push_back(std::move(g));
  }
  if (!reader.exhausted()) throw ParseError("CapabilityBundle: trailing bytes");
  try {
    return CapabilityBundle(std::move(grants));
  } catch (const InvalidArgument& e) {
    throw ParseError(std::string("CapabilityBundle: bad payload: ") + e.what());
  }
}

CapabilityBundle make_capability_bundle(const sse::TrapdoorGenerator& generator,
                                        const std::vector<std::string>& keywords) {
  std::vector<CapabilityBundle::Grant> grants;
  std::set<std::string> seen;
  for (const std::string& kw : keywords) {
    const std::string normalized = generator.analyzer().normalize_keyword(kw);
    if (normalized.empty() || !seen.insert(normalized).second) continue;
    grants.push_back(CapabilityBundle::Grant{
        normalized, sse::Trapdoor{generator.label_for(normalized),
                                  generator.list_key_for(normalized)}});
  }
  detail::require(!grants.empty(),
                  "make_capability_bundle: no keyword survives normalization");
  return CapabilityBundle(std::move(grants));
}

Bytes seal_capability_bundle(BytesView user_key, std::string_view user_name,
                             const CapabilityBundle& bundle) {
  return crypto::aes_gcm_encrypt(user_key, bundle.serialize(), to_bytes(user_name));
}

CapabilityBundle open_capability_bundle(BytesView user_key, std::string_view user_name,
                                        BytesView sealed) {
  const Bytes plain = crypto::aes_gcm_decrypt(user_key, sealed, to_bytes(user_name));
  return CapabilityBundle::deserialize(plain);
}

}  // namespace rsse::ext
