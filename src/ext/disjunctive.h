// Disjunctive (OR) multi-keyword ranked search.
//
// The paper's footnote 1 notes that disjunctive Boolean search "still
// remains an open problem" for SSE in the sense of a *sub-linear single
// query* — but given single-keyword trapdoors, the server can trivially
// evaluate the union by running each trapdoor and merging, which is what
// any deployment would do. We implement that honest construction with
// two server-side rankings over the union:
//   * max-OPM: rank by the best per-keyword encrypted score (order-exact
//     per keyword, approximate across keywords);
//   * sum-OPM: rank by the sum over matched keywords (biases toward
//     files matching more keywords, like eq. 1's summation).
// The leakage is the union of the per-keyword access patterns — the same
// as issuing the queries separately.
#pragma once

#include "ext/conjunctive.h"

namespace rsse::ext {

/// How the union hits are ranked.
enum class DisjunctiveRanking {
  kMaxOpm,  ///< best single-keyword encrypted score
  kSumOpm,  ///< sum of matched keywords' encrypted scores
};

/// Server-side disjunctive ranked search over an RSSE index.
class DisjunctiveRsse {
 public:
  /// A hit in the union.
  struct Hit {
    sse::FileId file{};
    std::uint64_t aggregate_opm = 0;   ///< per the ranking mode
    std::uint32_t matched_keywords = 0;

    friend bool operator==(const Hit&, const Hit&) = default;
  };

  /// Runs every trapdoor, merges the unions, ranks, keeps top-k (0 =
  /// all). Throws InvalidArgument on an empty trapdoor set.
  static std::vector<Hit> search(const sse::SecureIndex& index,
                                 const ConjunctiveTrapdoor& trapdoor,
                                 std::size_t top_k = 0,
                                 DisjunctiveRanking ranking = DisjunctiveRanking::kMaxOpm);
};

}  // namespace rsse::ext
