// Multi-keyword conjunctive ranked search — the paper's principal
// future-work direction (Sec. VIII): "for the security requirement of
// searchable encryption, constructions for conjunctive keyword search ...
// might be good candidates ... However, as the IDF factor now has to be
// included for score calculation, new approaches still need to be
// designed to completely preserve the order when summing up scores."
//
// We implement both natural candidates so the open problem can be
// studied quantitatively:
//
//  * ConjunctiveRsse — server-side, one round: intersect the per-keyword
//    posting sets and rank by the SUM of the per-keyword one-to-many
//    OPM values. Each OPM is monotone but non-linear, so the summed
//    ranking is only approximate — exactly the difficulty the paper
//    names. ext/rank_quality.h measures how approximate (Kendall tau /
//    precision@k against the exact eq.-1 ranking) and
//    bench_ext_conjunctive reports it.
//
//  * ConjunctiveBasic — exact, Basic-Scheme security: the server
//    intersects and returns per-keyword E_z(score) entries plus each
//    list's matching count N_i (both already part of SSE's access-pattern
//    leakage); the user decrypts and computes eq. 1 with
//    IDF = ln(1 + N/f_t) locally. Exact ranking, Basic-Scheme costs.
#pragma once

#include <string_view>
#include <vector>

#include "sse/basic_scheme.h"
#include "sse/rsse_scheme.h"
#include "sse/trapdoor_gen.h"
#include "sse/types.h"

namespace rsse::ext {

/// A conjunctive query: one single-keyword trapdoor per term.
struct ConjunctiveTrapdoor {
  std::vector<sse::Trapdoor> trapdoors;

  [[nodiscard]] Bytes serialize() const;
  static ConjunctiveTrapdoor deserialize(BytesView blob);
};

/// Builds a conjunctive trapdoor; duplicate keywords are collapsed and
/// keywords that normalize to nothing are dropped. Throws InvalidArgument
/// when no keyword survives.
ConjunctiveTrapdoor make_conjunctive_trapdoor(const sse::TrapdoorGenerator& generator,
                                              const std::vector<std::string>& keywords);

/// Approximate, server-ranked conjunctive search over an RSSE index.
class ConjunctiveRsse {
 public:
  /// A hit in the intersection with its aggregate encrypted score.
  struct Hit {
    sse::FileId file{};
    std::uint64_t aggregate_opm = 0;  ///< sum of per-keyword OPM values

    friend bool operator==(const Hit&, const Hit&) = default;
  };

  /// Server side: intersect + rank by aggregate OPM (descending), keep
  /// top-k (0 = all). Files missing from any keyword's postings are
  /// excluded (conjunctive semantics).
  static std::vector<Hit> search(const sse::SecureIndex& index,
                                 const ConjunctiveTrapdoor& trapdoor,
                                 std::size_t top_k = 0);
};

/// Exact conjunctive ranked retrieval over a Basic-Scheme index.
class ConjunctiveBasic {
 public:
  /// Per-file encrypted evidence the server returns.
  struct ServerHit {
    sse::FileId file{};
    std::vector<Bytes> encrypted_scores;  ///< one per query keyword, in order
  };

  /// The server's response: intersection hits plus each keyword's
  /// matching count f_t (needed for IDF; part of the access pattern).
  struct ServerResult {
    std::vector<ServerHit> hits;
    std::vector<std::uint64_t> list_sizes;
  };

  /// Server side: intersect the posting sets.
  static ServerResult search(const sse::SecureIndex& index,
                             const ConjunctiveTrapdoor& trapdoor);

  /// User side: decrypt with `score_key` and rank by eq. 1, where
  /// `collection_size` is the public N. Keeps top-k (0 = all).
  static std::vector<sse::RankedHit> rank(const ServerResult& result,
                                          BytesView score_key,
                                          std::uint64_t collection_size,
                                          std::size_t top_k = 0);
};

}  // namespace rsse::ext
