// Hypergeometric sampling for the BCLO order-preserving encryption walk.
//
// The paper instantiates HGD(.) with MATLAB's HYGEINV; here we implement
// exact hypergeometric sampling in C++. Given an urn of `population` balls
// of which `successes` are marked, and a draw of `sample` balls without
// replacement, hgd_sample returns how many marked balls the draw contains,
// consuming coins from the caller's deterministic Tape. The result is an
// exact sample (up to double rounding in the CDF accumulation) and a
// deterministic function of the tape, which is the property the OPE
// construction needs: re-walking the same (key, window) always re-derives
// the same split.
//
// Method: "chop-down" inversion started at the distribution mode. The
// log-pmf at the mode is computed once with lgamma; neighbouring masses
// follow from the exact pmf ratio recurrence, and outcomes are visited in
// the fixed order mode, mode-1, mode+1, mode-2, ... so the accumulated
// mass reaches the coin u after O(stddev) expected steps even when the
// population is ~2^46 and the tail masses underflow double.
#pragma once

#include <cstdint>

#include "crypto/tapegen.h"

namespace rsse::opse {

/// Parameters of one hypergeometric draw.
struct HgdParams {
  std::uint64_t population = 0;  ///< N: total balls in the urn.
  std::uint64_t successes = 0;   ///< M: marked balls, M <= N.
  std::uint64_t sample = 0;      ///< n: balls drawn, n <= N.
};

/// Smallest possible outcome: max(0, n + M - N).
std::uint64_t hgd_support_min(const HgdParams& p);

/// Largest possible outcome: min(M, n).
std::uint64_t hgd_support_max(const HgdParams& p);

/// Natural log of the pmf at `k`. Requires k within the support.
double hgd_log_pmf(const HgdParams& p, std::uint64_t k);

/// Draws one hypergeometric sample using coins from `tape`.
/// Throws InvalidArgument when successes > population or sample > population.
std::uint64_t hgd_sample(const HgdParams& p, crypto::Tape& tape);

}  // namespace rsse::opse
