#include "opse/ope_common.h"

#include "crypto/tapegen.h"
#include "obs/cost.h"
#include "obs/profiler.h"
#include "opse/hgd.h"
#include "util/errors.h"

namespace rsse::opse {

void OpeParams::validate() const {
  rsse::detail::require(domain_size >= 1, "OpeParams: domain must be non-empty");
  rsse::detail::require(domain_size <= range_size,
                        "OpeParams: range must be at least as large as domain");
  rsse::detail::require(range_size < (1ull << 62), "OpeParams: range too large");
}

std::size_t SplitCache::WindowHash::operator()(
    const std::array<std::uint64_t, 4>& w) const {
  // splitmix-style mix of the four window coordinates.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v : w) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
  }
  return static_cast<std::size_t>(h);
}

const SplitCache::Split* SplitCache::find(std::uint64_t d, std::uint64_t big_m,
                                          std::uint64_t r, std::uint64_t big_n) const {
  const auto it = map_.find({d, big_m, r, big_n});
  return it == map_.end() ? nullptr : &it->second;
}

void SplitCache::insert(std::uint64_t d, std::uint64_t big_m, std::uint64_t r,
                        std::uint64_t big_n, Split split) {
  map_.emplace(std::array<std::uint64_t, 4>{d, big_m, r, big_n}, split);
}

namespace detail {

namespace {

// One level of the keyed binary search, shared by both walk directions.
// The current window is D = {d+1 .. d+M}, R = {r+1 .. r+N} exactly as in
// Algorithm 1. Returns the split point x (domain) and midpoint y (range).
using Split = SplitCache::Split;

Split split_window(BytesView key, std::uint64_t d, std::uint64_t big_m,
                   std::uint64_t r, std::uint64_t big_n) {
  static const auto kSplitStage = obs::Profiler::global().stage("opse/split");
  static const auto kTapeStage = obs::Profiler::global().stage("crypto/tape_gen");
  static const auto kHgdStage = obs::Profiler::global().stage("opse/hgd_sample");
  obs::ProfileScope split_scope(kSplitStage);
  const std::uint64_t half = big_n - big_n / 2;  // ceil(N/2)
  const std::uint64_t y = r + half;
  const Bytes ctx = crypto::encode_split_context(d + 1, d + big_m, r + 1, r + big_n, y);
  obs::ProfileScope tape_scope(kTapeStage);
  crypto::Tape tape(key, ctx);
  tape_scope.finish();
  const HgdParams hgd{.population = big_n, .successes = big_m, .sample = y - r};
  obs::ProfileScope hgd_scope(kHgdStage);
  const std::uint64_t x = d + hgd_sample(hgd, tape);
  hgd_scope.finish();
  return {x, y};
}

Split split_window_cached(BytesView key, std::uint64_t d, std::uint64_t big_m,
                          std::uint64_t r, std::uint64_t big_n, SplitCache& cache) {
  if (const Split* hit = cache.find(d, big_m, r, big_n)) {
    obs::cost::add(obs::cost::split_cache_hits);
    return *hit;
  }
  const Split split = split_window(key, d, big_m, r, big_n);
  cache.insert(d, big_m, r, big_n, split);
  return split;
}

}  // namespace

namespace {

template <typename SplitFn>
Bucket descend_impl(const OpeParams& params, std::uint64_t m, SplitFn&& split_fn) {
  params.validate();
  rsse::detail::require(m >= 1 && m <= params.domain_size,
                        "descend_to_bucket: plaintext outside domain");
  std::uint64_t d = 0;
  std::uint64_t big_m = params.domain_size;
  std::uint64_t r = 0;
  std::uint64_t big_n = params.range_size;
  while (big_m > 1) {
    const Split s = split_fn(d, big_m, r, big_n);
    if (m <= s.x) {
      big_m = s.x - d;
      big_n = s.y - r;
    } else {
      big_m = (d + big_m) - s.x;
      big_n = (r + big_n) - s.y;
      d = s.x;
      r = s.y;
    }
  }
  return Bucket{r + 1, r + big_n};
}

}  // namespace

Bucket descend_to_bucket(BytesView key, const OpeParams& params, std::uint64_t m) {
  return descend_impl(params, m,
                      [&](std::uint64_t d, std::uint64_t big_m, std::uint64_t r,
                          std::uint64_t big_n) {
                        return split_window(key, d, big_m, r, big_n);
                      });
}

Bucket descend_to_bucket(BytesView key, const OpeParams& params, std::uint64_t m,
                         SplitCache& cache) {
  return descend_impl(params, m,
                      [&](std::uint64_t d, std::uint64_t big_m, std::uint64_t r,
                          std::uint64_t big_n) {
                        return split_window_cached(key, d, big_m, r, big_n, cache);
                      });
}

std::uint64_t descend_to_plaintext(BytesView key, const OpeParams& params,
                                   std::uint64_t c) {
  params.validate();
  rsse::detail::require(c >= 1 && c <= params.range_size,
                        "descend_to_plaintext: ciphertext outside range");
  std::uint64_t d = 0;
  std::uint64_t big_m = params.domain_size;
  std::uint64_t r = 0;
  std::uint64_t big_n = params.range_size;
  while (big_m > 1) {
    const Split s = split_window(key, d, big_m, r, big_n);
    if (c <= s.y) {
      big_m = s.x - d;
      big_n = s.y - r;
      // The ciphertext fell into a sub-range holding zero domain points:
      // c sits in slack below every bucket boundary of this half. The
      // buckets still partition R, so this can only happen when the HGD
      // split assigned no plaintexts to the half — impossible for a
      // ciphertext produced by the mapping, but reachable for arbitrary
      // range probes; report it as unmapped.
      rsse::detail::require(big_m >= 1,
                            "descend_to_plaintext: range value not in any bucket");
    } else {
      big_m = (d + big_m) - s.x;
      big_n = (r + big_n) - s.y;
      d = s.x;
      r = s.y;
      rsse::detail::require(big_m >= 1,
                            "descend_to_plaintext: range value not in any bucket");
    }
  }
  return d + 1;
}

}  // namespace detail
}  // namespace rsse::opse
