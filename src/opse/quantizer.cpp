#include "opse/quantizer.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/errors.h"

namespace rsse::opse {

ScoreQuantizer::ScoreQuantizer(double min_score, double max_score, std::uint64_t levels)
    : min_score_(min_score), max_score_(max_score), levels_(levels) {
  detail::require(levels >= 1, "ScoreQuantizer: levels must be positive");
  detail::require(max_score > min_score, "ScoreQuantizer: empty score interval");
  detail::require(std::isfinite(min_score) && std::isfinite(max_score),
                  "ScoreQuantizer: non-finite bounds");
}

ScoreQuantizer ScoreQuantizer::from_scores(const std::vector<double>& scores,
                                           std::uint64_t levels) {
  detail::require(!scores.empty(), "ScoreQuantizer::from_scores: empty sample");
  const auto [lo, hi] = std::minmax_element(scores.begin(), scores.end());
  double min_s = *lo;
  double max_s = *hi;
  if (max_s <= min_s) max_s = min_s + 1.0;  // degenerate corpus: single score
  return ScoreQuantizer(min_s, max_s, levels);
}

std::uint64_t ScoreQuantizer::quantize(double score) const {
  if (score <= min_score_) return 1;
  if (score >= max_score_) return levels_;
  const double frac = (score - min_score_) / (max_score_ - min_score_);
  const auto level =
      static_cast<std::uint64_t>(frac * static_cast<double>(levels_)) + 1;
  return std::min(level, levels_);
}

double ScoreQuantizer::level_midpoint(std::uint64_t level) const {
  detail::require(level >= 1 && level <= levels_,
                  "ScoreQuantizer::level_midpoint: level out of range");
  const double width = (max_score_ - min_score_) / static_cast<double>(levels_);
  return min_score_ + (static_cast<double>(level - 1) + 0.5) * width;
}

Bytes ScoreQuantizer::serialize() const {
  Bytes out;
  append_u64(out, std::bit_cast<std::uint64_t>(min_score_));
  append_u64(out, std::bit_cast<std::uint64_t>(max_score_));
  append_u64(out, levels_);
  return out;
}

ScoreQuantizer ScoreQuantizer::deserialize(BytesView blob) {
  ByteReader reader(blob);
  const auto min_s = std::bit_cast<double>(reader.read_u64());
  const auto max_s = std::bit_cast<double>(reader.read_u64());
  const std::uint64_t levels = reader.read_u64();
  if (!reader.exhausted()) throw ParseError("ScoreQuantizer: trailing bytes");
  try {
    return ScoreQuantizer(min_s, max_s, levels);
  } catch (const InvalidArgument& e) {
    throw ParseError(std::string("ScoreQuantizer: bad payload: ") + e.what());
  }
}

}  // namespace rsse::opse
