#include "opse/range_select.h"

#include <cmath>

#include "util/errors.h"

namespace rsse::opse {

double recursion_bound_bits(std::uint64_t domain_size, RecursionBound bound) {
  detail::require(domain_size >= 2, "recursion_bound_bits: M must be >= 2");
  const double log_m = std::log2(static_cast<double>(domain_size));
  switch (bound) {
    case RecursionBound::kFiveLogMPlus12:
      return 5.0 * log_m + 12.0;
    case RecursionBound::kFiveLogM:
      return 5.0 * log_m;
    case RecursionBound::kFourLogM:
      return 4.0 * log_m;
  }
  throw InvalidArgument("recursion_bound_bits: unknown bound");
}

namespace {

void validate(const RangeSelectParams& p) {
  detail::require(p.max_duplicates > 0, "range_select: max_duplicates must be positive");
  detail::require(p.average_list_len > 0, "range_select: average_list_len must be positive");
  detail::require(p.domain_size >= 2, "range_select: domain_size must be >= 2");
  detail::require(p.min_entropy_c > 1.0, "range_select: c must exceed 1");
}

}  // namespace

double lhs_log2(const RangeSelectParams& p, std::uint64_t k) {
  validate(p);
  // log2( max * 2^B(M) / (2^k * lambda) )
  return std::log2(p.max_duplicates) + recursion_bound_bits(p.domain_size, p.bound) -
         static_cast<double>(k) - std::log2(p.average_list_len);
}

double rhs_log2(const RangeSelectParams& p, std::uint64_t k) {
  validate(p);
  detail::require(k >= 2, "rhs_log2: k must be >= 2");
  return -std::pow(std::log2(static_cast<double>(k)), p.min_entropy_c);
}

std::uint64_t choose_range_bits(const RangeSelectParams& p, std::uint64_t k_min,
                                std::uint64_t k_max) {
  validate(p);
  if (k_min == 0) {
    const auto dom_bits = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(p.domain_size))));
    k_min = dom_bits + 1;
  }
  k_min = std::max<std::uint64_t>(k_min, 2);
  for (std::uint64_t k = k_min; k <= k_max; ++k) {
    if (lhs_log2(p, k) <= rhs_log2(p, k)) return k;
  }
  return 0;
}

}  // namespace rsse::opse
