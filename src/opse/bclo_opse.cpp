#include "opse/bclo_opse.h"

#include "crypto/tapegen.h"
#include "util/errors.h"

namespace rsse::opse {

BcloOpse::BcloOpse(Bytes key, OpeParams params) : key_(std::move(key)), params_(params) {
  rsse::detail::require(!key_.empty(), "BcloOpse: empty key");
  params_.validate();
}

Bucket BcloOpse::bucket_of(std::uint64_t m) const {
  return detail::descend_to_bucket(key_, params_, m);
}

std::uint64_t BcloOpse::encrypt(std::uint64_t m) const {
  const Bucket b = bucket_of(m);
  const Bytes ctx = crypto::encode_draw_context(m, m, b.lo, b.hi, m,
                                                /*has_file_id=*/false, 0);
  crypto::Tape tape(key_, ctx);
  return b.lo + tape.uniform_below(b.size());
}

std::uint64_t BcloOpse::decrypt(std::uint64_t c) const {
  return detail::descend_to_plaintext(key_, params_, c);
}

}  // namespace rsse::opse
