#include "opse/opm.h"

#include "crypto/tapegen.h"
#include "obs/cost.h"
#include "util/errors.h"

namespace rsse::opse {

OneToManyOpm::OneToManyOpm(Bytes key, OpeParams params)
    : key_(std::move(key)), params_(params) {
  rsse::detail::require(!key_.empty(), "OneToManyOpm: empty key");
  params_.validate();
}

Bucket OneToManyOpm::bucket_of(std::uint64_t m) const {
  return detail::descend_to_bucket(key_, params_, m);
}

namespace {

std::uint64_t draw_from_bucket(BytesView key, const Bucket& b, std::uint64_t m,
                               std::uint64_t file_id) {
  obs::cost::add(obs::cost::opm_mappings);
  // Algorithm 1 line 5: coin <- TapeGen(K, (D, R, 1||m, id(F))).
  const Bytes ctx = crypto::encode_draw_context(m, m, b.lo, b.hi, m,
                                                /*has_file_id=*/true, file_id);
  crypto::Tape tape(key, ctx);
  return b.lo + tape.uniform_below(b.size());
}

}  // namespace

std::uint64_t OneToManyOpm::map(std::uint64_t m, std::uint64_t file_id) const {
  return draw_from_bucket(key_, bucket_of(m), m, file_id);
}

std::uint64_t OneToManyOpm::map(std::uint64_t m, std::uint64_t file_id,
                                SplitCache& cache) const {
  const Bucket b = detail::descend_to_bucket(key_, params_, m, cache);
  return draw_from_bucket(key_, b, m, file_id);
}

std::uint64_t OneToManyOpm::invert(std::uint64_t c) const {
  return detail::descend_to_plaintext(key_, params_, c);
}

}  // namespace rsse::opse
