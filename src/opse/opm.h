// One-to-many order-preserving mapping (OPM) — Algorithm 1 of the paper
// and the core technical contribution enabling efficient RSSE.
//
// The mapping reuses the keyed plaintext-to-bucket descent of OPSE but
// seeds the final ciphertext draw with the *file identifier* in addition
// to the plaintext. Duplicated relevance scores therefore scatter across
// their (shared) bucket instead of colliding on one ciphertext, flattening
// the keyword-specific score distribution the server could otherwise
// fingerprint (Fig. 4 vs Fig. 6).
//
// Properties (enforced by tests/test_opm.cpp):
//   * order preserving across files: m1 < m2 => map(m1, idA) < map(m2, idB)
//     for all idA, idB, because buckets are disjoint and ordered;
//   * same plaintext, same bucket: score dynamics never shift previously
//     mapped values (Sec. VII), since buckets depend only on (key, m);
//   * deterministic per (m, id): re-encrypting an unchanged posting entry
//     reproduces the same ciphertext.
#pragma once

#include <cstdint>

#include "opse/ope_common.h"
#include "util/bytes.h"

namespace rsse::opse {

/// One-to-many order-preserving mapper over a fixed key and (M, N).
class OneToManyOpm {
 public:
  /// Binds the mapper to `key` (schemes pass the per-keyword key f_z(w))
  /// and validates `params`.
  OneToManyOpm(Bytes key, OpeParams params);

  /// Maps plaintext m in {1..M} for file `file_id`: the OPM_K(D, R, m,
  /// id(F)) procedure of Algorithm 1.
  [[nodiscard]] std::uint64_t map(std::uint64_t m, std::uint64_t file_id) const;

  /// Cache-assisted map: bit-identical to map(), with the descent's HGD
  /// splits memoized in `cache`. The cache must be used with this mapper
  /// only (splits are key-specific); one cache per posting list is the
  /// intended pattern and cuts index-build cost by the list length.
  [[nodiscard]] std::uint64_t map(std::uint64_t m, std::uint64_t file_id,
                                  SplitCache& cache) const;

  /// The bucket shared by every ciphertext of plaintext m under this key.
  [[nodiscard]] Bucket bucket_of(std::uint64_t m) const;

  /// Recovers the plaintext whose bucket contains `c` (bucket inversion).
  /// Only the data owner, who holds the key, can do this; the scheme never
  /// requires it on the server. Throws InvalidArgument for range slack.
  [[nodiscard]] std::uint64_t invert(std::uint64_t c) const;

  /// Mapping geometry.
  [[nodiscard]] const OpeParams& params() const { return params_; }

 private:
  Bytes key_;
  OpeParams params_;
};

}  // namespace rsse::opse
