#include "opse/hgd.h"

#include <algorithm>
#include <cmath>

#include "obs/cost.h"
#include "util/errors.h"

namespace rsse::opse {

namespace {

void validate(const HgdParams& p) {
  detail::require(p.successes <= p.population, "hgd: successes > population");
  detail::require(p.sample <= p.population, "hgd: sample > population");
}

// Reentrant ln(gamma): std::lgamma writes the global `signgam`, which is
// a data race when the parallel index build evaluates buckets across
// worker threads. The sign is irrelevant here (arguments are >= 1).
double lgamma_threadsafe(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

// ln C(n, k) via lgamma; exact enough for n up to ~2^52.
double log_choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  const auto nd = static_cast<double>(n);
  const auto kd = static_cast<double>(k);
  return lgamma_threadsafe(nd + 1.0) - lgamma_threadsafe(kd + 1.0) -
         lgamma_threadsafe(nd - kd + 1.0);
}

}  // namespace

std::uint64_t hgd_support_min(const HgdParams& p) {
  const std::uint64_t deficit = p.population - p.successes;  // unmarked balls
  return p.sample > deficit ? p.sample - deficit : 0;
}

std::uint64_t hgd_support_max(const HgdParams& p) {
  return std::min(p.successes, p.sample);
}

double hgd_log_pmf(const HgdParams& p, std::uint64_t k) {
  validate(p);
  detail::require(k >= hgd_support_min(p) && k <= hgd_support_max(p),
                  "hgd_log_pmf: k outside support");
  // For moderate populations the direct lgamma formula is accurate.
  // Beyond ~2^32, lgamma's absolute error (~value * 2^-52, i.e. up to
  // ~1e3 at N=2^46) cancels catastrophically in the six-term difference,
  // so we switch to a product form whose every factor is an O(1)-sized
  // log: pmf = C(M,k) * prod_{j<k}(n-j) * prod_{j<M-k}(N-n-j)
  //                   / prod_{j<M}(N-j).
  // The products have at most M terms — cheap in the OPE regime M << N.
  if (p.population < (1ull << 32)) {
    return log_choose(p.successes, k) +
           log_choose(p.population - p.successes, p.sample - k) -
           log_choose(p.population, p.sample);
  }
  double s = log_choose(p.successes, k);
  for (std::uint64_t j = 0; j < k; ++j)
    s += std::log(static_cast<double>(p.sample - j));
  for (std::uint64_t j = 0; j < p.successes - k; ++j)
    s += std::log(static_cast<double>(p.population - p.sample - j));
  for (std::uint64_t j = 0; j < p.successes; ++j)
    s -= std::log(static_cast<double>(p.population - j));
  return s;
}

std::uint64_t hgd_sample(const HgdParams& p, crypto::Tape& tape) {
  rsse::obs::cost::add(rsse::obs::cost::hgd_samples);
  validate(p);
  const std::uint64_t lo = hgd_support_min(p);
  const std::uint64_t hi = hgd_support_max(p);
  if (lo == hi) return lo;  // degenerate draw (e.g. M == N or n == 0)

  // Mode of the hypergeometric: floor((n+1)(M+1)/(N+2)), clamped to the
  // support. Computed in long double to avoid u64 overflow for huge N.
  const long double num = (static_cast<long double>(p.sample) + 1.0L) *
                          (static_cast<long double>(p.successes) + 1.0L);
  auto mode = static_cast<std::uint64_t>(num / (static_cast<long double>(p.population) + 2.0L));
  mode = std::clamp(mode, lo, hi);

  const double u = tape.next_double();

  // pmf ratio stepping: r(k -> k+1) = ((M-k)(n-k)) / ((k+1)(N-M-n+k+1)).
  const auto ratio_up = [&](std::uint64_t k) {
    const double a = static_cast<double>(p.successes - k) * static_cast<double>(p.sample - k);
    const double b = static_cast<double>(k + 1) *
                     static_cast<double>(p.population - p.successes - p.sample + k + 1);
    return a / b;
  };

  // Visit outcomes in the order mode, mode-1, mode+1, mode-2, ...
  // accumulating mass until it exceeds u. Any fixed visitation order turns
  // a uniform coin into an exact sample; starting at the mode keeps the
  // masses representable and the walk short.
  const double pmf_mode = std::exp(hgd_log_pmf(p, mode));
  double acc = pmf_mode;
  if (u < acc) return mode;

  double pmf_left = pmf_mode;    // pmf at current left cursor
  double pmf_right = pmf_mode;   // pmf at current right cursor
  std::uint64_t left = mode;
  std::uint64_t right = mode;
  while (true) {
    bool advanced = false;
    if (left > lo) {
      // step left: pmf(k-1) = pmf(k) / r(k-1 -> k)
      pmf_left /= ratio_up(left - 1);
      --left;
      acc += pmf_left;
      advanced = true;
      if (u < acc) return left;
    }
    if (right < hi) {
      pmf_right *= ratio_up(right);
      ++right;
      acc += pmf_right;
      advanced = true;
      if (u < acc) return right;
    }
    if (!advanced) {
      // Exhausted the support; u landed in the rounding slack. Return the
      // mode, the maximum-likelihood outcome, keeping the draw total.
      return mode;
    }
  }
}

}  // namespace rsse::opse
