// Deterministic order-preserving symmetric encryption (OPSE) after
// Boldyreva, Chenette, Lee, O'Neill (Eurocrypt'09) — the primitive the
// paper starts from in Sec. IV-A. Plaintexts {1..M} map into ciphertexts
// {1..N} such that m1 < m2 implies Enc(m1) < Enc(m2); the mapping is a
// deterministic function of the key.
//
// The library also uses this class as the *deterministic baseline* in the
// leakage ablation: its ciphertext histogram preserves the plaintext
// score skew, which is exactly the weakness the one-to-many OPM fixes.
#pragma once

#include <cstdint>

#include "opse/ope_common.h"
#include "util/bytes.h"

namespace rsse::opse {

/// Deterministic OPSE cipher over a fixed key and (M, N) geometry.
class BcloOpse {
 public:
  /// Binds the cipher to `key` (any non-empty byte string; schemes pass a
  /// PRF-derived per-keyword key) and validates `params`.
  BcloOpse(Bytes key, OpeParams params);

  /// Encrypts plaintext m in {1..M}: walks to m's bucket and draws the
  /// ciphertext pseudorandomly from the bucket, seeded by (key, bucket, m)
  /// — deterministic, so equal plaintexts collide.
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t m) const;

  /// Decrypts ciphertext c in {1..N}. Throws InvalidArgument when `c` lies
  /// in range slack not assigned to any plaintext's bucket (cannot happen
  /// for outputs of encrypt()).
  [[nodiscard]] std::uint64_t decrypt(std::uint64_t c) const;

  /// The bucket (closed range interval) assigned to plaintext m.
  [[nodiscard]] Bucket bucket_of(std::uint64_t m) const;

  /// Mapping geometry.
  [[nodiscard]] const OpeParams& params() const { return params_; }

 private:
  Bytes key_;
  OpeParams params_;
};

}  // namespace rsse::opse
