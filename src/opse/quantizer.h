// Relevance-score quantization: the bridge between the IR substrate's
// real-valued TF scores (eq. 2) and the integer domain {1..M} the
// order-preserving mappings operate on. The paper "encodes the actual
// score into 128 levels in domain from 1 to 128" (Fig. 4); this class
// generalizes that to any M, preserving order: s1 <= s2 implies
// quantize(s1) <= quantize(s2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rsse::opse {

/// Maps real scores in [min_score, max_score] onto integer levels {1..M}.
class ScoreQuantizer {
 public:
  /// Fixed interval variant. Scores outside the interval clamp to the
  /// first/last level. Throws InvalidArgument when levels == 0 or the
  /// interval is empty.
  ScoreQuantizer(double min_score, double max_score, std::uint64_t levels);

  /// Builds the interval from observed scores (the data owner scans the
  /// whole index once before encrypting it, so the corpus-wide min and max
  /// are available at build time). Throws on an empty sample.
  static ScoreQuantizer from_scores(const std::vector<double>& scores,
                                    std::uint64_t levels);

  /// Quantizes one score into {1..M}.
  [[nodiscard]] std::uint64_t quantize(double score) const;

  /// Midpoint of a level's real interval — the owner-side approximate
  /// inverse used for diagnostics (quantization is lossy by design).
  [[nodiscard]] double level_midpoint(std::uint64_t level) const;

  /// Number of levels M.
  [[nodiscard]] std::uint64_t levels() const { return levels_; }

  /// Serializes min/max/levels so user and owner agree on the encoding.
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static ScoreQuantizer deserialize(BytesView blob);

 private:
  double min_score_;
  double max_score_;
  std::uint64_t levels_;
};

}  // namespace rsse::opse
