// Shared machinery of the order-preserving mappings: parameter validation
// and the keyed binary-search descent of Boldyreva et al. (the paper's
// BinarySearch procedure in Algorithm 1).
//
// The descent partitions the range {1..N} into M disjoint, order-
// preserving buckets — one per domain point — as a deterministic function
// of the key. Both the deterministic OPSE and the one-to-many OPM use the
// same descent; they differ only in how the final ciphertext is drawn from
// the bucket.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "util/bytes.h"

namespace rsse::opse {

/// Domain/range sizes of an order-preserving mapping: plaintexts live in
/// {1..domain_size}, ciphertexts in {1..range_size}.
struct OpeParams {
  std::uint64_t domain_size = 0;  ///< M — e.g. 128 quantized score levels.
  std::uint64_t range_size = 0;   ///< N — e.g. 2^46 per eq. 4.

  /// Throws InvalidArgument unless 1 <= M <= N and N < 2^62 (headroom for
  /// interval arithmetic in the descent).
  void validate() const;
};

/// A closed interval {lo..hi} of range values; the bucket assigned to one
/// domain point by the keyed descent.
struct Bucket {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  /// Number of range values in the bucket.
  [[nodiscard]] std::uint64_t size() const { return hi - lo + 1; }

  /// True when `c` lies inside the bucket.
  [[nodiscard]] bool contains(std::uint64_t c) const { return c >= lo && c <= hi; }

  friend bool operator==(const Bucket&, const Bucket&) = default;
};

/// Memo for the keyed binary-search splits. All plaintexts of one key
/// descend the SAME split tree (that is what makes the mapping
/// consistent), and a posting list maps many scores under one key, so
/// caching each window's (x, y) split turns the per-entry cost from
/// O(log M) HGD samples into O(log M) hash lookups after the first few
/// entries. Scoped to one key: the caller owns keeping cache and key
/// paired (OneToManyOpm's batch API does this internally).
class SplitCache {
 public:
  /// One cached split: the domain split point x and range midpoint y of
  /// a (d, M, r, N) window.
  struct Split {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
  };

  /// Looks up a window; nullptr when not yet computed.
  [[nodiscard]] const Split* find(std::uint64_t d, std::uint64_t big_m,
                                  std::uint64_t r, std::uint64_t big_n) const;

  /// Records a window's split.
  void insert(std::uint64_t d, std::uint64_t big_m, std::uint64_t r,
              std::uint64_t big_n, Split split);

  /// Number of cached windows.
  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  // Key: the window, packed. The descent tree of one OPE key contains at
  // most 2M-1 distinct windows, so this stays small.
  struct WindowHash {
    std::size_t operator()(const std::array<std::uint64_t, 4>& w) const;
  };
  std::unordered_map<std::array<std::uint64_t, 4>, Split, WindowHash> map_;
};

namespace detail {

/// Walks the keyed binary search down to the bucket of plaintext `m`
/// (1-based, m <= domain_size). The walk is the `while |D| != 1` loop of
/// Algorithm 1: at each level it derives the HGD split from TapeGen coins
/// bound to (key, D, R, 0||y) and recurses into the half containing m.
Bucket descend_to_bucket(BytesView key, const OpeParams& params, std::uint64_t m);

/// Cache-assisted variant: identical output, split results memoized in
/// `cache` (which must be dedicated to `key`).
Bucket descend_to_bucket(BytesView key, const OpeParams& params, std::uint64_t m,
                         SplitCache& cache);

/// Walks the same tree guided by a ciphertext instead: returns the unique
/// plaintext whose bucket contains `c` (1-based, c <= range_size). This is
/// OPSE decryption, and for the one-to-many mapping it is the bucket
/// inversion used by tests and by the data owner during score updates.
std::uint64_t descend_to_plaintext(BytesView key, const OpeParams& params,
                                   std::uint64_t c);

}  // namespace detail
}  // namespace rsse::opse
