// Range-size selection for the one-to-many mapping (Sec. IV-C, eq. 3/4,
// Fig. 5).
//
// The range R must be large enough that, after the one-to-many mapping,
// the expected maximum number of ciphertext duplicates is negligible in
// the min-entropy sense: with k = log2|R|,
//
//     max * 2^(B(M)) / (2^k * lambda)  <=  2^( -(log2 k)^c )        (eq. 4)
//
// where `max` is the maximum plaintext-score duplicate count in the index,
// `lambda` the average posting-list length, M the score-domain size, c>1
// the min-entropy exponent, and B(M) the bound on the expected number of
// recursive range halvings per OPE operation. The paper uses
// B(M) = 5*log2(M) + 12 from the BCLO analysis and also plots the looser
// O(log M) stand-ins 5*log2(M) and 4*log2(M), which shrink the chosen |R|
// (Fig. 5). All arithmetic here is done in log2 space so k up to hundreds
// of bits cannot overflow.
#pragma once

#include <cstdint>

namespace rsse::opse {

/// Which bound B(M) on the recursion depth to use in eq. 4.
enum class RecursionBound {
  kFiveLogMPlus12,  ///< 5*log2(M) + 12 — the BCLO worst-case average.
  kFiveLogM,        ///< 5*log2(M) — looser stand-in from Fig. 5.
  kFourLogM,        ///< 4*log2(M) — loosest stand-in from Fig. 5.
};

/// Inputs of the range-size selection.
struct RangeSelectParams {
  double max_duplicates = 0;   ///< max: peak score-duplicate count in I.
  double average_list_len = 0; ///< lambda: mean posting-list length.
  std::uint64_t domain_size = 0;  ///< M.
  double min_entropy_c = 1.1;  ///< c > 1 of the high min-entropy notion.
  RecursionBound bound = RecursionBound::kFiveLogMPlus12;
};

/// B(M) in bits for the chosen bound.
double recursion_bound_bits(std::uint64_t domain_size, RecursionBound bound);

/// log2 of the left-hand side of eq. 4 at range size 2^k.
double lhs_log2(const RangeSelectParams& p, std::uint64_t k);

/// log2 of the right-hand side of eq. 4 at range size 2^k:
/// -(log2 k)^c. Requires k >= 2.
double rhs_log2(const RangeSelectParams& p, std::uint64_t k);

/// Smallest k in [k_min, k_max] with lhs_log2 <= rhs_log2, i.e. the least
/// range-size exponent meeting the min-entropy requirement. Returns 0 when
/// no k in the window satisfies the inequality. k_min defaults to
/// ceil(log2 M) + 1 (the range must exceed the domain).
std::uint64_t choose_range_bits(const RangeSelectParams& p, std::uint64_t k_min = 0,
                                std::uint64_t k_max = 128);

}  // namespace rsse::opse
