#include "net/server.h"

#include <sys/socket.h>

#include <chrono>

#include "net/frame.h"
#include "net/reactor.h"
#include "util/errors.h"

namespace rsse::net {

NetworkServer::NetworkServer(const cloud::RequestHandler& server, std::uint16_t port,
                             ServerOptions options)
    : server_(server),
      bytes_in_(server.metrics_registry().counter(
          "rsse_server_bytes_in_total", "Request payload bytes received")),
      bytes_out_(server.metrics_registry().counter(
          "rsse_server_bytes_out_total", "Response payload bytes sent")),
      connections_total_(server.metrics_registry().counter(
          "rsse_server_connections_total", "Client connections accepted")),
      connections_rejected_(server.metrics_registry().counter(
          "rsse_net_connections_rejected_total",
          "Connections refused at the max_connections cap")),
      active_connections_(server.metrics_registry().gauge(
          "rsse_server_active_connections", "Currently open client connections")),
      listener_(port),
      options_(options) {
  if (options_.reactor) {
    ReactorOptions ropts;
    ropts.loop_threads = options_.reactor_threads;
    ropts.workers = options_.workers;
    ropts.max_in_flight = options_.max_in_flight;
    ropts.max_pipeline = options_.max_pipeline;
    ropts.max_output_buffer = options_.max_output_buffer;
    reactor_ = std::make_unique<Reactor>(server, ropts, server.metrics_registry(),
                                         requests_, bytes_in_, bytes_out_,
                                         active_connections_);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

NetworkServer::~NetworkServer() { stop(); }

std::size_t NetworkServer::open_connections() const {
  if (reactor_) return reactor_->open_connections();
  const std::int64_t v = active_connections_.value();
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

void NetworkServer::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!stopping_.exchange(true)) listener_.close();  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  // Reactor engine: drain workers (accepted requests get answered), then
  // close every connection and join the loops.
  if (reactor_) reactor_->stop();
  // Legacy engine teardown (no-op vectors under the reactor).
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
    // Force-shutdown live connections so workers parked in recv wake up
    // (an idle client would otherwise block the join forever).
    for (const auto& conn : connections_) {
      if (conn->valid()) ::shutdown(conn->fd(), SHUT_RDWR);
    }
    connections_.clear();
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void NetworkServer::accept_loop() {
  while (!stopping_.load()) {
    Socket accepted = listener_.accept();
    if (!accepted.valid()) break;  // listener closed
    if (reactor_) {
      if (reactor_->open_connections() >= options_.max_connections) {
        connections_rejected_.inc();
        // Best-effort typed refusal — never let a stalled peer wedge the
        // acceptor, so the write gets a tiny deadline of its own.
        try {
          accepted.send_all(
              encode_response_error(
                  "Overloaded: server at its connection limit; retry later"),
              Deadline::after(std::chrono::milliseconds(100)));
        } catch (const Error&) {
        }
        continue;  // socket closes via RAII
      }
      connections_total_.inc();
      reactor_->add_connection(std::move(accepted));
      continue;
    }
    auto connection = std::make_shared<Socket>(std::move(accepted));
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) break;
    connections_.push_back(connection);
    workers_.emplace_back([this, connection] { serve_connection(connection); });
  }
}

void NetworkServer::serve_connection(const std::shared_ptr<Socket>& connection) {
  connections_total_.inc();
  active_connections_.add(1);
  try {
    while (!stopping_.load()) {
      const auto request = recv_request(*connection);
      if (!request) break;  // client hung up cleanly
      // Count before responding so the total is visible to any client
      // that has already seen its response.
      ++requests_;
      bytes_in_.inc(request->payload.size());
      try {
        if (request->trace && request->trace->active()) {
          // Traced request: dispatch through the traced handler and ship
          // the recorded spans back piggybacked on the response.
          std::vector<obs::Span> spans;
          const Bytes response =
              server_.handle(request->type, request->payload, *request->trace, &spans);
          bytes_out_.inc(response.size());
          send_response_ok_traced(*connection, response, spans);
        } else {
          const Bytes response = server_.handle(request->type, request->payload);
          bytes_out_.inc(response.size());
          send_response_ok(*connection, response);
        }
      } catch (const QuotaExceeded& e) {
        // Admission-control shed: the "QuotaExceeded: " prefix lets the
        // client frame layer rethrow the typed exception, so callers can
        // back off instead of treating the shed as a protocol failure.
        send_response_error(*connection, std::string("QuotaExceeded: ") + e.what());
      } catch (const Error& e) {
        // Library-level rejection (bad payload, unknown type): report to
        // the client, keep the connection usable.
        send_response_error(*connection, e.what());
      }
    }
  } catch (const Error&) {
    // Transport failure (peer vanished mid-frame): drop the connection.
  }
  active_connections_.sub(1);
}

}  // namespace rsse::net
