#include "net/server.h"

#include <sys/socket.h>

#include "net/frame.h"
#include "util/errors.h"

namespace rsse::net {

NetworkServer::NetworkServer(const cloud::RequestHandler& server, std::uint16_t port)
    : server_(server),
      bytes_in_(server.metrics_registry().counter(
          "rsse_server_bytes_in_total", "Request payload bytes received")),
      bytes_out_(server.metrics_registry().counter(
          "rsse_server_bytes_out_total", "Response payload bytes sent")),
      connections_total_(server.metrics_registry().counter(
          "rsse_server_connections_total", "Client connections accepted")),
      active_connections_(server.metrics_registry().gauge(
          "rsse_server_active_connections", "Currently open client connections")),
      listener_(port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

NetworkServer::~NetworkServer() { stop(); }

void NetworkServer::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!stopping_.exchange(true)) listener_.close();  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
    // Force-shutdown live connections so workers parked in recv wake up
    // (an idle client would otherwise block the join forever).
    for (const auto& conn : connections_) {
      if (conn->valid()) ::shutdown(conn->fd(), SHUT_RDWR);
    }
    connections_.clear();
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void NetworkServer::accept_loop() {
  while (!stopping_.load()) {
    Socket accepted = listener_.accept();
    if (!accepted.valid()) break;  // listener closed
    auto connection = std::make_shared<Socket>(std::move(accepted));
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) break;
    connections_.push_back(connection);
    workers_.emplace_back([this, connection] { serve_connection(connection); });
  }
}

void NetworkServer::serve_connection(const std::shared_ptr<Socket>& connection) {
  connections_total_.inc();
  active_connections_.add(1);
  try {
    while (!stopping_.load()) {
      const auto request = recv_request(*connection);
      if (!request) break;  // client hung up cleanly
      // Count before responding so the total is visible to any client
      // that has already seen its response.
      ++requests_;
      bytes_in_.inc(request->payload.size());
      try {
        if (request->trace && request->trace->active()) {
          // Traced request: dispatch through the traced handler and ship
          // the recorded spans back piggybacked on the response.
          std::vector<obs::Span> spans;
          const Bytes response =
              server_.handle(request->type, request->payload, *request->trace, &spans);
          bytes_out_.inc(response.size());
          send_response_ok_traced(*connection, response, spans);
        } else {
          const Bytes response = server_.handle(request->type, request->payload);
          bytes_out_.inc(response.size());
          send_response_ok(*connection, response);
        }
      } catch (const QuotaExceeded& e) {
        // Admission-control shed: the "QuotaExceeded: " prefix lets the
        // client frame layer rethrow the typed exception, so callers can
        // back off instead of treating the shed as a protocol failure.
        send_response_error(*connection, std::string("QuotaExceeded: ") + e.what());
      } catch (const Error& e) {
        // Library-level rejection (bad payload, unknown type): report to
        // the client, keep the connection usable.
        send_response_error(*connection, e.what());
      }
    }
  } catch (const Error&) {
    // Transport failure (peer vanished mid-frame): drop the connection.
  }
  active_connections_.sub(1);
}

}  // namespace rsse::net
