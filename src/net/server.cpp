#include "net/server.h"

#include <sys/socket.h>

#include "net/frame.h"
#include "util/errors.h"

namespace rsse::net {

NetworkServer::NetworkServer(const cloud::CloudServer& server, std::uint16_t port)
    : server_(server), listener_(port) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

NetworkServer::~NetworkServer() { stop(); }

void NetworkServer::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!stopping_.exchange(true)) listener_.close();  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
    // Force-shutdown live connections so workers parked in recv wake up
    // (an idle client would otherwise block the join forever).
    for (const auto& conn : connections_) {
      if (conn->valid()) ::shutdown(conn->fd(), SHUT_RDWR);
    }
    connections_.clear();
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void NetworkServer::accept_loop() {
  while (!stopping_.load()) {
    Socket accepted = listener_.accept();
    if (!accepted.valid()) break;  // listener closed
    auto connection = std::make_shared<Socket>(std::move(accepted));
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    if (stopping_.load()) break;
    connections_.push_back(connection);
    workers_.emplace_back([this, connection] { serve_connection(connection); });
  }
}

void NetworkServer::serve_connection(const std::shared_ptr<Socket>& connection) {
  try {
    while (!stopping_.load()) {
      const auto request = recv_request(*connection);
      if (!request) break;  // client hung up cleanly
      // Count before responding so the total is visible to any client
      // that has already seen its response.
      ++requests_;
      try {
        const Bytes response = server_.handle(request->type, request->payload);
        send_response_ok(*connection, response);
      } catch (const Error& e) {
        // Library-level rejection (bad payload, unknown type): report to
        // the client, keep the connection usable.
        send_response_error(*connection, e.what());
      }
    }
  } catch (const Error&) {
    // Transport failure (peer vanished mid-frame): drop the connection.
  }
}

}  // namespace rsse::net
