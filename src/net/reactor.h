// The epoll reactor behind net::NetworkServer.
//
// Architecture (RediSearch-style event-loop / query-thread split):
//
//   * One or a few EVENT-LOOP threads, each owning a private epoll set
//     and a disjoint subset of the connections (accepted sockets are
//     dealt round-robin). A loop thread does only cheap work:
//     non-blocking reads, incremental frame assembly, admission,
//     non-blocking writes from per-connection output buffers. It never
//     touches crypto or ranking.
//   * A bounded WORKER pool runs cloud::RequestHandler::handle — the
//     parse/rank/serialize work — off the loop. Workers hand finished
//     response frames back to the owning loop through a mutex-guarded
//     completion queue plus an eventfd wake.
//   * PIPELINING: a connection may have many requests in flight; every
//     parsed request takes an ordered slot and responses are flushed in
//     request order, so the wire stays byte-compatible with the strictly
//     sequential frame protocol old RemoteChannel clients speak.
//   * BACKPRESSURE, explicit at three levels:
//       - global: at most `max_in_flight` admitted-but-unanswered
//         requests across the endpoint; past the cap a request is shed
//         immediately with a typed error frame ("Overloaded: ..." —
//         rsse::Overloaded on the client) instead of queueing until the
//         caller's deadline blows. rsse_net_shed_total counts sheds.
//       - per connection: at most `max_pipeline` unanswered requests and
//         `max_output_buffer` buffered response bytes; past either the
//         loop simply stops reading that connection (EPOLLIN off), which
//         turns into TCP pushback on the peer — a slow reader throttles
//         itself, not the server.
//       - connections: NetworkServer's acceptor refuses connections past
//         `max_connections` with the same typed error frame.
//
// Thread-safety model (TSan-clean by construction): all per-connection
// state is touched only by the connection's owning loop thread. The only
// cross-thread traffic is (a) the completion/intake queues under their
// mutex, (b) relaxed atomics for the in-flight/connection counts, and
// (c) the metrics instruments, which are lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/handler.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace rsse::net {

/// Tuning knobs of the event-driven engine (NetworkServer fills these
/// from its ServerOptions).
struct ReactorOptions {
  std::size_t loop_threads = 1;    ///< event-loop threads (>= 1)
  std::size_t workers = 4;         ///< handler worker threads (>= 1)
  std::size_t max_in_flight = 1024;  ///< global unanswered-request cap (0 = off)
  std::size_t max_pipeline = 128;    ///< per-connection unanswered requests
  std::size_t max_output_buffer = 8u << 20;  ///< per-connection buffered bytes
};

/// The engine: event loops + worker pool. NetworkServer owns one and
/// feeds it accepted sockets; everything else happens inside.
class Reactor {
 public:
  /// Instruments register in `registry`; `requests` is NetworkServer's
  /// served-request counter (incremented at admission, like the legacy
  /// engine counted frames as they were received).
  Reactor(const cloud::RequestHandler& handler, ReactorOptions options,
          obs::MetricsRegistry& registry, std::atomic<std::uint64_t>& requests,
          obs::Counter& bytes_in, obs::Counter& bytes_out,
          obs::Gauge& active_connections);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Takes ownership of an accepted socket (acceptor thread). The socket
  /// is switched to non-blocking and dealt to a loop round-robin.
  void add_connection(Socket socket);

  /// Currently open connections (acceptor-side admission check).
  [[nodiscard]] std::size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

  /// Closes every connection and joins the loops, then drains the worker
  /// pool (running handlers finish; their responses are discarded — like
  /// the legacy engine, in-flight work at stop is abandoned, not
  /// answered). Idempotent; also done by the destructor.
  void stop();

 private:
  friend class ReactorTestPeek;
  struct Connection;
  class EventLoop;

  /// Runs the handler and wraps the outcome — ok, traced ok, or error —
  /// into a complete response frame (worker threads).
  Bytes execute(std::uint8_t tag, const Bytes& payload);

  bool try_acquire_in_flight();
  void release_in_flight();

  const cloud::RequestHandler& handler_;
  const ReactorOptions options_;
  std::atomic<std::uint64_t>& requests_;
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Gauge& active_connections_;

  // Reactor-specific instruments (ISSUE: open connections, loop lag,
  // queue depths, sheds).
  obs::Counter& sheds_;
  obs::Counter& pipelined_;
  obs::Gauge& in_flight_gauge_;
  obs::Gauge& in_flight_peak_;
  obs::Gauge& worker_queue_depth_;
  obs::HistogramMetric& loop_lag_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<bool> stopped_{false};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace rsse::net
