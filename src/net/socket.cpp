#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errors.h"

namespace rsse::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(BytesView data) const {
  detail::require(valid(), "Socket::send_all: empty socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) const {
  detail::require(valid(), "Socket::recv_exact: empty socket");
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      throw ProtocolError("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_write() const {
  if (valid()) ::shutdown(fd_, SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  socket_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind");
  if (::listen(fd, 64) < 0) throw_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept() const {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket(-1);  // listener closed or error: shutdown path
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

void TcpListener::close() {
  // close() alone does not wake a thread blocked in accept() on Linux;
  // shutdown() does (accept returns with an error).
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  socket_.close();
}

Socket tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("connect");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

}  // namespace rsse::net
