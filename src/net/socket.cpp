#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errors.h"

namespace rsse::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0) throw_errno("fcntl(F_SETFL)");
}

/// Scopes O_NONBLOCK to one deadline-bounded operation so the descriptor
/// keeps its plain blocking behaviour for deadline-free callers (the
/// server side, legacy paths).
class NonBlockingScope {
 public:
  NonBlockingScope(int fd, bool engage) : fd_(fd), engaged_(engage) {
    if (engaged_) set_nonblocking(fd_, true);
  }
  ~NonBlockingScope() {
    if (engaged_) {
      // Best effort: restoring flags must not throw from a destructor.
      const int flags = ::fcntl(fd_, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    }
  }
  NonBlockingScope(const NonBlockingScope&) = delete;
  NonBlockingScope& operator=(const NonBlockingScope&) = delete;

 private:
  int fd_;
  bool engaged_;
};

/// Polls until `events` is ready or the deadline runs out.
void wait_ready(int fd, short events, const Deadline& deadline, const char* what) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, deadline.poll_timeout_ms());
    if (rc > 0) return;  // ready (or error/hup — the next I/O call reports it)
    if (rc == 0) throw DeadlineExceeded(std::string(what) + ": deadline exceeded");
    if (errno != EINTR) throw_errno(what);
    deadline.check(what);
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
  }
  return *this;
}

void Socket::close() {
  // exchange makes close() idempotent AND safe against a concurrent
  // closer: exactly one caller sees the live descriptor.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void Socket::send_all(BytesView data, const Deadline& deadline) const {
  detail::require(valid(), "Socket::send_all: empty socket");
  const int fd = this->fd();
  const bool bounded = !deadline.is_unlimited();
  const NonBlockingScope scope(fd, bounded);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_ready(fd, POLLOUT, deadline, "send");
        continue;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out, const Deadline& deadline) const {
  detail::require(valid(), "Socket::recv_exact: empty socket");
  const int fd = this->fd();
  const bool bounded = !deadline.is_unlimited();
  const NonBlockingScope scope(fd, bounded);
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_ready(fd, POLLIN, deadline, "recv");
        continue;
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      throw ProtocolError("recv: connection closed mid-message");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::set_nonblocking(bool enable) const {
  detail::require(valid(), "Socket::set_nonblocking: empty socket");
  net::set_nonblocking(fd(), enable);
}

void Socket::shutdown_write() const {
  const int fd = this->fd();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  socket_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind");
  // A deep backlog so connection-scaling workloads (thousands of clients
  // connecting in a burst) do not stall in SYN retransmits; the kernel
  // clamps to somaxconn.
  if (::listen(fd, 1024) < 0) throw_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept() const {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket(-1);  // listener closed or error: shutdown path
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

void TcpListener::close() {
  // close() alone does not wake a thread blocked in accept() on Linux;
  // shutdown() does (accept returns with an error).
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
  socket_.close();
}

Socket tcp_connect(std::uint16_t port, const Deadline& deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  const bool bounded = !deadline.is_unlimited();
  if (bounded) set_nonblocking(fd, true);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (!bounded || errno != EINPROGRESS) throw_errno("connect");
    wait_ready(fd, POLLOUT, deadline, "connect");
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
      throw_errno("getsockopt(SO_ERROR)");
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  if (bounded) set_nonblocking(fd, false);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

}  // namespace rsse::net
