// Wire framing for the RSSE protocol over a byte stream:
//
//   request:  [1 byte MessageType][4 bytes LE length][payload]
//   response: [1 byte status: 0 ok / 1 error][4 bytes LE length][payload]
//
// Error responses carry a human-readable message as payload; the client
// rethrows it as ProtocolError. Frames are capped at 256 MiB so a
// corrupted length cannot exhaust memory (same hardening as
// ByteReader::read_count).
//
// Trace extension (backward compatible). A traced request sets the high
// bit of the type byte (MessageType values stay below 0x80) and prefixes
// the payload with a 17-byte obs::TraceContext; the 4-byte length covers
// both. A frame without the bit is byte-identical to the pre-extension
// format, so old peers interoperate untouched — an old *server* that
// receives a flagged request rejects it as an unknown message type (an
// error response, not a hang), which the client uses to detect the old
// peer and retry untraced (net::RemoteChannel). A traced response uses
// status tag 2 ("ok + trace") whose payload is
// [4 bytes LE span length][serialized spans][response payload]; servers
// only ever send tag 2 in reply to a flagged request, so an old client
// never sees it.
#pragma once

#include <optional>

#include "cloud/protocol.h"
#include "net/socket.h"
#include "obs/trace.h"

namespace rsse::net {

/// Largest accepted frame payload.
inline constexpr std::uint32_t kMaxFrameSize = 256u * 1024 * 1024;

/// High bit of the request type byte: payload starts with a TraceContext.
inline constexpr std::uint8_t kTraceFlag = 0x80;

/// One parsed request frame. `trace` is set when the peer flagged the
/// frame; the context bytes are already stripped from `payload`.
struct RequestFrame {
  cloud::MessageType type{};
  Bytes payload;
  std::optional<obs::TraceContext> trace;
};

/// A response carrying piggybacked trace spans (empty when the server
/// sent a plain ok).
struct TracedResponse {
  Bytes payload;
  std::vector<obs::Span> spans;
};

/// Serializes a success response into a complete frame (tag + length +
/// payload) without touching a socket — the buffered-output path of the
/// reactor server builds frames off the event loop and hands the bytes
/// to the connection's output queue. Byte-identical to what
/// send_response_ok writes.
[[nodiscard]] Bytes encode_response_ok(BytesView payload);

/// Serializes a traced success response (tag 2) into a complete frame.
[[nodiscard]] Bytes encode_response_ok_traced(BytesView payload,
                                              const std::vector<obs::Span>& spans);

/// Serializes an error response into a complete frame.
[[nodiscard]] Bytes encode_response_error(std::string_view message);

/// Writes a request frame. Throws DeadlineExceeded when the budget runs
/// out mid-write (all helpers; default deadline = unlimited).
void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const Deadline& deadline = {});

/// Writes a trace-flagged request frame carrying `trace` ahead of the
/// payload. `trace` must be active.
void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const obs::TraceContext& trace, const Deadline& deadline = {});

/// Reads the next request frame; nullopt on clean EOF.
/// Throws ProtocolError on malformed frames or transport errors.
std::optional<RequestFrame> recv_request(const Socket& socket,
                                         const Deadline& deadline = {});

/// Writes a success response.
void send_response_ok(const Socket& socket, BytesView payload,
                      const Deadline& deadline = {});

/// Writes a success response with piggybacked spans (tag 2). Only valid
/// in reply to a trace-flagged request.
void send_response_ok_traced(const Socket& socket, BytesView payload,
                             const std::vector<obs::Span>& spans,
                             const Deadline& deadline = {});

/// Writes an error response carrying `message`.
void send_response_error(const Socket& socket, std::string_view message,
                         const Deadline& deadline = {});

/// Reads a response; returns the payload on success and throws
/// ProtocolError carrying the server's message on an error response.
/// Accepts traced (tag 2) responses and discards their spans.
Bytes recv_response(const Socket& socket, const Deadline& deadline = {});

/// Reads a response, keeping any piggybacked spans. Throws ProtocolError
/// on error responses, like recv_response.
TracedResponse recv_response_traced(const Socket& socket,
                                    const Deadline& deadline = {});

}  // namespace rsse::net
