// Wire framing for the RSSE protocol over a byte stream:
//
//   request:  [1 byte MessageType][4 bytes LE length][payload]
//   response: [1 byte status: 0 ok / 1 error][4 bytes LE length][payload]
//
// Error responses carry a human-readable message as payload; the client
// rethrows it as ProtocolError. Frames are capped at 256 MiB so a
// corrupted length cannot exhaust memory (same hardening as
// ByteReader::read_count).
#pragma once

#include <optional>

#include "cloud/protocol.h"
#include "net/socket.h"

namespace rsse::net {

/// Largest accepted frame payload.
inline constexpr std::uint32_t kMaxFrameSize = 256u * 1024 * 1024;

/// One parsed request frame.
struct RequestFrame {
  cloud::MessageType type{};
  Bytes payload;
};

/// Writes a request frame. Throws DeadlineExceeded when the budget runs
/// out mid-write (all four helpers; default deadline = unlimited).
void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const Deadline& deadline = {});

/// Reads the next request frame; nullopt on clean EOF.
/// Throws ProtocolError on malformed frames or transport errors.
std::optional<RequestFrame> recv_request(const Socket& socket,
                                         const Deadline& deadline = {});

/// Writes a success response.
void send_response_ok(const Socket& socket, BytesView payload,
                      const Deadline& deadline = {});

/// Writes an error response carrying `message`.
void send_response_error(const Socket& socket, std::string_view message,
                         const Deadline& deadline = {});

/// Reads a response; returns the payload on success and throws
/// ProtocolError carrying the server's message on an error response.
Bytes recv_response(const Socket& socket, const Deadline& deadline = {});

}  // namespace rsse::net
