// The client end of the TCP transport: a cloud::Transport implementation
// that frames each RPC over a persistent connection to a NetworkServer.
// DataUser code is oblivious to whether it holds a Channel (in-process)
// or a RemoteChannel (cross-process) — that is the point of the Transport
// interface.
#pragma once

#include <cstdint>

#include "cloud/channel.h"
#include "net/socket.h"

namespace rsse::net {

/// A persistent client connection speaking the frame protocol.
class RemoteChannel final : public cloud::Transport {
 public:
  /// Connects to 127.0.0.1:`port`. Throws ProtocolError on failure.
  explicit RemoteChannel(std::uint16_t port);

  /// One RPC over the connection. Throws ProtocolError on transport
  /// failure or when the server reports an error frame.
  Bytes call(cloud::MessageType type, BytesView request) override;

  /// Closes the connection (subsequent calls throw).
  void disconnect();

 private:
  Socket socket_;
};

}  // namespace rsse::net
