// The client end of the TCP transport: a cloud::Transport implementation
// that frames each RPC over a persistent connection to a NetworkServer.
// DataUser code is oblivious to whether it holds a Channel (in-process)
// or a RemoteChannel (cross-process) — that is the point of the Transport
// interface.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "cloud/channel.h"
#include "net/socket.h"
#include "obs/trace.h"

namespace rsse::net {

/// How a RemoteChannel establishes its connection.
struct ConnectOptions {
  /// Overall connect budget. Zero (default) = exactly one attempt that
  /// blocks the OS default — the historical behaviour. A positive budget
  /// turns on the retry loop below, bounded by this deadline, so a client
  /// started concurrently with its server no longer needs a raw sleep.
  std::chrono::milliseconds timeout{0};
  std::chrono::milliseconds base_backoff{5};   ///< sleep after first refusal
  std::chrono::milliseconds max_backoff{200};  ///< exponential cap
};

/// A persistent client connection speaking the frame protocol.
class RemoteChannel final : public cloud::Transport {
 public:
  /// Connects to 127.0.0.1:`port`. With the default options a failed
  /// connect throws ProtocolError immediately; with a positive
  /// `options.timeout` the connect is retried with capped exponential
  /// backoff until it succeeds or the budget is spent (then the last
  /// ProtocolError is rethrown).
  explicit RemoteChannel(std::uint16_t port, ConnectOptions options = {});

  /// One RPC over the connection. Throws ProtocolError on transport
  /// failure or when the server reports an error frame, DeadlineExceeded
  /// when the deadline runs out first (the connection is then unusable —
  /// the response would desynchronize the frame stream — and is closed).
  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override;

  /// Traced RPC: sends the trace context on a flagged frame and merges
  /// the spans the server piggybacks on its reply. Version negotiation is
  /// lazy: the first flagged request an old server rejects ("unknown
  /// message type" — it sees the flag bit as part of the type byte) marks
  /// the peer trace-incapable and is retried untraced on the same
  /// connection; later calls skip the flag outright. New servers never
  /// reject the flag, so the downgrade only ever fires against old peers.
  Bytes call(cloud::MessageType type, BytesView request, const Deadline& deadline,
             obs::TraceRecorder* trace, std::uint64_t parent_span_id) override;

  /// False once the peer has rejected a trace-flagged frame.
  [[nodiscard]] bool peer_supports_trace() const {
    return peer_supports_trace_.load(std::memory_order_relaxed);
  }

  /// Closes the connection (subsequent calls throw).
  void disconnect();

 private:
  Socket socket_;
  std::atomic<bool> peer_supports_trace_{true};
};

}  // namespace rsse::net
