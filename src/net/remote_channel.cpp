#include "net/remote_channel.h"

#include "net/frame.h"

namespace rsse::net {

RemoteChannel::RemoteChannel(std::uint16_t port) : socket_(tcp_connect(port)) {}

Bytes RemoteChannel::call(cloud::MessageType type, BytesView request) {
  send_request(socket_, type, request);
  Bytes response = recv_response(socket_);
  // +5: type byte + length header, matching what really crossed the wire.
  account(request.size() + 5, response.size() + 5);
  return response;
}

void RemoteChannel::disconnect() {
  socket_.shutdown_write();
  socket_.close();
}

}  // namespace rsse::net
