#include "net/remote_channel.h"

#include <algorithm>
#include <thread>

#include "net/frame.h"
#include "util/errors.h"

namespace rsse::net {

namespace {

Socket connect_with_retry(std::uint16_t port, const ConnectOptions& options) {
  if (options.timeout.count() <= 0) return tcp_connect(port);

  const Deadline deadline = Deadline::after(options.timeout);
  std::chrono::milliseconds backoff = options.base_backoff;
  for (;;) {
    try {
      return tcp_connect(port, deadline);
    } catch (const DeadlineExceeded&) {
      throw;
    } catch (const ProtocolError&) {
      // Refused or reset — typically the server's listener is not up yet.
      // Sleep the capped backoff (never past the deadline) and retry.
      const auto remaining = deadline.remaining();
      if (remaining.count() <= 0) throw;
      std::this_thread::sleep_for(std::min(backoff, remaining));
      backoff = std::min(backoff * 2, options.max_backoff);
      if (deadline.expired()) throw;
    }
  }
}

}  // namespace

RemoteChannel::RemoteChannel(std::uint16_t port, ConnectOptions options)
    : socket_(connect_with_retry(port, options)) {}

Bytes RemoteChannel::call(cloud::MessageType type, BytesView request,
                          const Deadline& deadline) {
  try {
    send_request(socket_, type, request, deadline);
    Bytes response = recv_response(socket_, deadline);
    // +5: type byte + length header, matching what really crossed the wire.
    account(request.size() + 5, response.size() + 5);
    return response;
  } catch (const DeadlineExceeded&) {
    // A half-sent request or unread response would desynchronize the
    // frame stream; the connection cannot be reused.
    disconnect();
    throw;
  }
}

Bytes RemoteChannel::call(cloud::MessageType type, BytesView request,
                          const Deadline& deadline, obs::TraceRecorder* trace,
                          std::uint64_t parent_span_id) {
  if (trace == nullptr || !peer_supports_trace()) {
    return call(type, request, deadline);
  }
  obs::TraceContext ctx;
  ctx.trace_id = trace->trace_id();
  ctx.parent_span_id = parent_span_id;
  ctx.sampled = true;
  try {
    send_request(socket_, type, request, ctx, deadline);
    TracedResponse response = recv_response_traced(socket_, deadline);
    trace->add_all(std::move(response.spans));
    account(request.size() + 5 + obs::TraceContext::kWireSize,
            response.payload.size() + 5);
    return std::move(response.payload);
  } catch (const DeadlineExceeded&) {
    disconnect();
    throw;
  } catch (const ProtocolError& e) {
    // An old server parses the flagged type byte as an unknown message
    // type and answers with an error frame (the connection stays in
    // sync). Mark the peer and retry this call untraced.
    if (std::string(e.what()).find("unknown message type") != std::string::npos) {
      peer_supports_trace_.store(false, std::memory_order_relaxed);
      return call(type, request, deadline);
    }
    throw;
  }
}

void RemoteChannel::disconnect() {
  socket_.shutdown_write();
  socket_.close();
}

}  // namespace rsse::net
