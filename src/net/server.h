// The network front end of a serving endpoint: a TCP server speaking
// the frame protocol. Two engines share one wire format and one
// acceptor:
//
//   * REACTOR (default): an epoll event loop core — non-blocking I/O on
//     a few loop threads, incremental frame assembly, request
//     pipelining with strictly ordered responses, a bounded worker pool
//     running the handler, and explicit backpressure (global in-flight
//     cap shedding with a typed "Overloaded" error, per-connection
//     pipeline/output-buffer limits that turn into TCP pushback, and a
//     connection cap enforced at accept). See net/reactor.h for the
//     full architecture.
//   * LEGACY (ServerOptions{.reactor = false}): the original
//     thread-per-connection engine — one blocking worker per client.
//     Kept as the wire-compat reference: both engines must produce
//     byte-identical responses for the same request bytes, which the
//     ReactorWireCompat tests pin.
//
// Request handling delegates to cloud::RequestHandler::handle (a bare
// CloudServer or a multi-tenant tenant::TenantHost), so the network
// layer adds no protocol logic of its own; library errors travel back
// to the client as error frames.
//
// Observability: trace-flagged requests dispatch to the traced
// handle overload and the recorded spans ride back on a tag-2
// response. The server also contributes transport-level families
// (rsse_server_bytes_in_total / bytes_out_total / connections_total /
// active_connections, plus the reactor's rsse_net_* instruments) to
// the handler's metrics registry, so one scrape shows protocol and
// transport counters side by side.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cloud/handler.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace rsse::net {

class Reactor;

/// Engine selection and tuning for NetworkServer.
struct ServerOptions {
  /// Event-driven epoll engine (default) vs the legacy
  /// thread-per-connection engine kept for wire-compat testing.
  bool reactor = true;
  std::size_t reactor_threads = 1;  ///< epoll event-loop threads
  std::size_t workers = 4;          ///< handler worker threads
  /// Accept-time connection cap: connections past it are refused with a
  /// typed "Overloaded" error frame (reactor engine only).
  std::size_t max_connections = 10000;
  /// Global admitted-but-unanswered request cap; past it requests shed
  /// immediately with a typed "Overloaded" error (0 disables).
  std::size_t max_in_flight = 1024;
  /// Per-connection unanswered-request cap; past it the loop stops
  /// reading that connection (TCP pushback, no error).
  std::size_t max_pipeline = 128;
  /// Per-connection buffered response bytes before reads pause.
  std::size_t max_output_buffer = 8u << 20;
};

/// A running TCP endpoint for one serving endpoint.
class NetworkServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  /// The handler must outlive this object.
  NetworkServer(const cloud::RequestHandler& server, std::uint16_t port = 0,
                ServerOptions options = {});

  /// Stops the server (see stop()).
  ~NetworkServer();

  NetworkServer(const NetworkServer&) = delete;
  NetworkServer& operator=(const NetworkServer&) = delete;

  /// The bound port (for clients of an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Requests served since start (all message types; includes shed
  /// requests — they are answered, with an error frame).
  [[nodiscard]] std::uint64_t requests_served() const { return requests_.load(); }

  /// Currently open client connections.
  [[nodiscard]] std::size_t open_connections() const;

  /// Stops accepting, closes the listener and every live connection, and
  /// joins every worker. In-flight requests are abandoned (their
  /// handlers run to completion but responses are discarded), the same
  /// semantics under either engine. Idempotent and safe to call from
  /// multiple threads concurrently (also done by the destructor).
  void stop();

 private:
  void accept_loop();
  void serve_connection(const std::shared_ptr<Socket>& connection);

  const cloud::RequestHandler& server_;
  // Transport-level instruments, registered in the handler's registry
  // (registration is idempotent, so several NetworkServers fronting one
  // endpoint share the same counters).
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& connections_total_;
  obs::Counter& connections_rejected_;
  obs::Gauge& active_connections_;
  TcpListener listener_;
  const ServerOptions options_;
  std::atomic<bool> stopping_{false};
  // Serializes concurrent stop() calls: a second caller must wait for the
  // first to finish joining, not race it on the same std::thread objects
  // (concurrent join on one thread is undefined and can hang).
  std::mutex stop_mutex_;
  std::atomic<std::uint64_t> requests_{0};
  std::unique_ptr<Reactor> reactor_;  // null in legacy mode
  std::thread accept_thread_;
  // Legacy-engine state (unused by the reactor).
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  // Live connections, so stop() can shut them down and unblock workers
  // parked in recv on idle clients.
  std::vector<std::shared_ptr<Socket>> connections_;
};

}  // namespace rsse::net
