// The network front end of a serving endpoint: a threaded TCP server
// speaking the frame protocol. One thread accepts connections; each
// connection is served by its own worker (connections are long-lived — a
// user keeps one open across searches). Request handling delegates to
// cloud::RequestHandler::handle (a bare CloudServer or a multi-tenant
// tenant::TenantHost), so the network layer adds no protocol logic of
// its own; library errors travel back to the client as error frames.
//
// Observability: trace-flagged requests dispatch to the traced
// handle overload and the recorded spans ride back on a tag-2
// response. The server also contributes transport-level families
// (rsse_server_bytes_in_total / bytes_out_total / connections_total /
// active_connections) to the handler's metrics registry, so one
// scrape shows protocol and transport counters side by side.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cloud/handler.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace rsse::net {

/// A running TCP endpoint for one serving endpoint.
class NetworkServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  /// The handler must outlive this object.
  NetworkServer(const cloud::RequestHandler& server, std::uint16_t port = 0);

  /// Stops the server (see stop()).
  ~NetworkServer();

  NetworkServer(const NetworkServer&) = delete;
  NetworkServer& operator=(const NetworkServer&) = delete;

  /// The bound port (for clients of an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Requests served since start (all message types).
  [[nodiscard]] std::uint64_t requests_served() const { return requests_.load(); }

  /// Stops accepting, closes the listener and every live connection, and
  /// joins every worker. Idempotent and safe to call from multiple
  /// threads concurrently (also done by the destructor).
  void stop();

 private:
  void accept_loop();
  void serve_connection(const std::shared_ptr<Socket>& connection);

  const cloud::RequestHandler& server_;
  // Transport-level instruments, registered in the handler's registry
  // (registration is idempotent, so several NetworkServers fronting one
  // endpoint share the same counters).
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& connections_total_;
  obs::Gauge& active_connections_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  // Serializes concurrent stop() calls: a second caller must wait for the
  // first to finish joining, not race it on the same std::thread objects
  // (concurrent join on one thread is undefined and can hang).
  std::mutex stop_mutex_;
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  // Live connections, so stop() can shut them down and unblock workers
  // parked in recv on idle clients.
  std::vector<std::shared_ptr<Socket>> connections_;
};

}  // namespace rsse::net
