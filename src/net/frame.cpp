#include "net/frame.h"

#include "util/errors.h"

namespace rsse::net {

namespace {

Bytes encode_framed(std::uint8_t tag, BytesView payload) {
  if (payload.size() > kMaxFrameSize) throw ProtocolError("frame: payload too large");
  Bytes frame;
  frame.reserve(5 + payload.size());
  frame.push_back(tag);
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append(frame, payload);
  return frame;
}

void send_framed(const Socket& socket, std::uint8_t tag, BytesView payload,
                 const Deadline& deadline) {
  socket.send_all(encode_framed(tag, payload), deadline);
}

// Reads tag + length + payload; false on clean EOF before the tag.
bool recv_framed(const Socket& socket, std::uint8_t& tag, Bytes& payload,
                 const Deadline& deadline) {
  std::uint8_t header[5];
  if (!socket.recv_exact(std::span<std::uint8_t>(header, 1), deadline)) return false;
  tag = header[0];
  if (!socket.recv_exact(std::span<std::uint8_t>(header + 1, 4), deadline))
    throw ProtocolError("frame: truncated header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[1 + i]) << (8 * i);
  if (len > kMaxFrameSize) throw ProtocolError("frame: length exceeds cap");
  payload.resize(len);
  if (len > 0 && !socket.recv_exact(std::span<std::uint8_t>(payload), deadline))
    throw ProtocolError("frame: truncated payload");
  return true;
}

}  // namespace

void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const Deadline& deadline) {
  send_framed(socket, static_cast<std::uint8_t>(type), payload, deadline);
}

void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const obs::TraceContext& trace, const Deadline& deadline) {
  detail::require(trace.active(), "send_request: trace context must be active");
  Bytes body;
  body.reserve(obs::TraceContext::kWireSize + payload.size());
  trace.encode(body);
  append(body, payload);
  send_framed(socket, static_cast<std::uint8_t>(type) | kTraceFlag, body, deadline);
}

std::optional<RequestFrame> recv_request(const Socket& socket, const Deadline& deadline) {
  std::uint8_t tag = 0;
  Bytes payload;
  if (!recv_framed(socket, tag, payload, deadline)) return std::nullopt;
  RequestFrame frame;
  if (tag & kTraceFlag) {
    if (payload.size() < obs::TraceContext::kWireSize)
      throw ProtocolError("request: truncated trace context");
    ByteReader reader(payload);
    frame.trace = obs::TraceContext::decode(reader);
    payload.erase(payload.begin(),
                  payload.begin() + static_cast<std::ptrdiff_t>(obs::TraceContext::kWireSize));
  }
  frame.type = static_cast<cloud::MessageType>(tag & ~kTraceFlag);
  frame.payload = std::move(payload);
  return frame;
}

Bytes encode_response_ok(BytesView payload) { return encode_framed(0x00, payload); }

Bytes encode_response_ok_traced(BytesView payload,
                                const std::vector<obs::Span>& spans) {
  const Bytes span_bytes = obs::serialize_spans(spans);
  Bytes body;
  body.reserve(4 + span_bytes.size() + payload.size());
  append_u32(body, static_cast<std::uint32_t>(span_bytes.size()));
  append(body, span_bytes);
  append(body, payload);
  return encode_framed(0x02, body);
}

Bytes encode_response_error(std::string_view message) {
  return encode_framed(0x01, to_bytes(message));
}

void send_response_ok(const Socket& socket, BytesView payload, const Deadline& deadline) {
  send_framed(socket, 0x00, payload, deadline);
}

void send_response_ok_traced(const Socket& socket, BytesView payload,
                             const std::vector<obs::Span>& spans,
                             const Deadline& deadline) {
  socket.send_all(encode_response_ok_traced(payload, spans), deadline);
}

void send_response_error(const Socket& socket, std::string_view message,
                         const Deadline& deadline) {
  send_framed(socket, 0x01, to_bytes(message), deadline);
}

namespace {

// Splits a tag-2 body into (spans, payload).
TracedResponse parse_traced_body(Bytes body) {
  if (body.size() < 4) throw ProtocolError("response: truncated trace block");
  std::uint32_t span_len = 0;
  for (int i = 0; i < 4; ++i) span_len |= static_cast<std::uint32_t>(body[i]) << (8 * i);
  if (body.size() < 4 + static_cast<std::size_t>(span_len))
    throw ProtocolError("response: trace block exceeds frame");
  TracedResponse out;
  out.spans = obs::deserialize_spans(
      BytesView(body.data() + 4, span_len));
  out.payload.assign(body.begin() + 4 + static_cast<std::ptrdiff_t>(span_len), body.end());
  return out;
}

}  // namespace

Bytes recv_response(const Socket& socket, const Deadline& deadline) {
  return recv_response_traced(socket, deadline).payload;
}

TracedResponse recv_response_traced(const Socket& socket, const Deadline& deadline) {
  std::uint8_t tag = 0;
  Bytes payload;
  if (!recv_framed(socket, tag, payload, deadline))
    throw ProtocolError("response: connection closed");
  if (tag == 0x00) return TracedResponse{std::move(payload), {}};
  if (tag == 0x01) {
    // Admission-control sheds arrive as error frames with a reserved
    // prefix (net/server.cpp stamps it); surface them as the typed
    // exception so clients can back off instead of failing the call.
    std::string message = to_string(payload);
    constexpr std::string_view kQuotaPrefix = "QuotaExceeded: ";
    if (message.rfind(kQuotaPrefix, 0) == 0) {
      throw QuotaExceeded(message.substr(kQuotaPrefix.size()));
    }
    // Reactor backpressure sheds use the same reserved-prefix scheme so
    // the client sees a typed, retryable Overloaded instead of a generic
    // protocol failure.
    constexpr std::string_view kOverloadedPrefix = "Overloaded: ";
    if (message.rfind(kOverloadedPrefix, 0) == 0) {
      throw Overloaded(message.substr(kOverloadedPrefix.size()));
    }
    throw ProtocolError("server error: " + message);
  }
  if (tag == 0x02) return parse_traced_body(std::move(payload));
  throw ProtocolError("response: unknown status tag");
}

}  // namespace rsse::net
