#include "net/frame.h"

#include "util/errors.h"

namespace rsse::net {

namespace {

void send_framed(const Socket& socket, std::uint8_t tag, BytesView payload,
                 const Deadline& deadline) {
  if (payload.size() > kMaxFrameSize) throw ProtocolError("frame: payload too large");
  Bytes frame;
  frame.reserve(5 + payload.size());
  frame.push_back(tag);
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  append(frame, payload);
  socket.send_all(frame, deadline);
}

// Reads tag + length + payload; false on clean EOF before the tag.
bool recv_framed(const Socket& socket, std::uint8_t& tag, Bytes& payload,
                 const Deadline& deadline) {
  std::uint8_t header[5];
  if (!socket.recv_exact(std::span<std::uint8_t>(header, 1), deadline)) return false;
  tag = header[0];
  if (!socket.recv_exact(std::span<std::uint8_t>(header + 1, 4), deadline))
    throw ProtocolError("frame: truncated header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[1 + i]) << (8 * i);
  if (len > kMaxFrameSize) throw ProtocolError("frame: length exceeds cap");
  payload.resize(len);
  if (len > 0 && !socket.recv_exact(std::span<std::uint8_t>(payload), deadline))
    throw ProtocolError("frame: truncated payload");
  return true;
}

}  // namespace

void send_request(const Socket& socket, cloud::MessageType type, BytesView payload,
                  const Deadline& deadline) {
  send_framed(socket, static_cast<std::uint8_t>(type), payload, deadline);
}

std::optional<RequestFrame> recv_request(const Socket& socket, const Deadline& deadline) {
  std::uint8_t tag = 0;
  Bytes payload;
  if (!recv_framed(socket, tag, payload, deadline)) return std::nullopt;
  RequestFrame frame;
  frame.type = static_cast<cloud::MessageType>(tag);
  frame.payload = std::move(payload);
  return frame;
}

void send_response_ok(const Socket& socket, BytesView payload, const Deadline& deadline) {
  send_framed(socket, 0x00, payload, deadline);
}

void send_response_error(const Socket& socket, std::string_view message,
                         const Deadline& deadline) {
  send_framed(socket, 0x01, to_bytes(message), deadline);
}

Bytes recv_response(const Socket& socket, const Deadline& deadline) {
  std::uint8_t tag = 0;
  Bytes payload;
  if (!recv_framed(socket, tag, payload, deadline))
    throw ProtocolError("response: connection closed");
  if (tag == 0x00) return payload;
  if (tag == 0x01) throw ProtocolError("server error: " + to_string(payload));
  throw ProtocolError("response: unknown status tag");
}

}  // namespace rsse::net
