#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/frame.h"
#include "util/errors.h"

namespace rsse::net {

namespace {

/// One receive chunk. Bigger frames assemble across chunks.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Compact the input/output buffers once this many consumed bytes sit in
/// front of the unconsumed tail (amortizes the memmove).
constexpr std::size_t kCompactThreshold = 256 * 1024;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---------------------------------------------------------------- Connection

/// Per-connection state. Only the owning loop thread touches it; workers
/// hold a shared_ptr purely to keep it alive until their completion is
/// applied or discarded.
struct Reactor::Connection {
  explicit Connection(Socket s) : sock(std::move(s)) {}

  Socket sock;

  // Incremental frame assembly: bytes [in_pos, in.size()) are unparsed.
  Bytes in;
  std::size_t in_pos = 0;

  // Ordered response slots — one per admitted request, flushed strictly
  // in request order so pipelined responses cannot reorder on the wire.
  struct Slot {
    std::uint64_t seq = 0;
    bool done = false;
    Bytes frame;
  };
  std::deque<Slot> slots;
  std::uint64_t next_seq = 0;

  // Buffered output: bytes [out_pos, out.size()) are unsent.
  Bytes out;
  std::size_t out_pos = 0;

  bool peer_closed = false;       ///< EOF seen; flush, then close
  bool close_after_flush = false; ///< fatal frame error queued; then close
  bool closed = false;            ///< removed from the loop
  std::uint32_t interest = 0;     ///< currently registered epoll events

  [[nodiscard]] std::size_t pending_out() const { return out.size() - out_pos; }
};

// ----------------------------------------------------------------- EventLoop

class Reactor::EventLoop {
 public:
  explicit EventLoop(Reactor& reactor) : reactor_(reactor) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw ProtocolError("epoll_create1 failed");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) {
      ::close(epoll_fd_);
      throw ProtocolError("eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = event_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
    thread_ = std::thread([this] { run(); });
  }

  ~EventLoop() {
    join();
    ::close(event_fd_);
    ::close(epoll_fd_);
  }

  /// Hands an accepted socket to this loop (acceptor thread).
  void enqueue_connection(Socket socket) {
    {
      const std::lock_guard<std::mutex> lock(inbox_mutex_);
      pending_sockets_.push_back(std::move(socket));
    }
    wake();
  }

  /// Hands a finished response frame to this loop (worker threads).
  void post_completion(std::shared_ptr<Connection> conn, std::uint64_t seq,
                       Bytes frame) {
    {
      const std::lock_guard<std::mutex> lock(inbox_mutex_);
      completions_.push_back({std::move(conn), seq, std::move(frame)});
    }
    wake();
  }

  void request_stop() {
    {
      const std::lock_guard<std::mutex> lock(inbox_mutex_);
      stop_requested_ = true;
    }
    wake();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Completion {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    Bytes frame;
  };

  void wake() const {
    const std::uint64_t one = 1;
    // The fd lives as long as the loop object; a failed write (only
    // plausible at teardown) just means the loop is already waking up.
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof one);
  }

  void run() {
    std::vector<epoll_event> events(512);
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd gone: teardown
      }
      // Loop lag = how long one processing pass keeps the loop away from
      // epoll_wait — the time a freshly ready event may sit unserviced.
      const auto pass_start = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        const int fd = events[static_cast<std::size_t>(i)].data.fd;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if (fd == event_fd_) {
          drain_eventfd();
          continue;
        }
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier this pass
        const std::shared_ptr<Connection> conn = it->second;
        if (mask & (EPOLLERR | EPOLLHUP)) {
          close_connection(*conn);
          continue;
        }
        if ((mask & EPOLLIN) && !conn->closed) handle_readable(*conn);
        if ((mask & EPOLLOUT) && !conn->closed) {
          try_write(*conn);
          if (!conn->closed) after_progress(*conn);
        }
      }
      if (drain_inbox()) {
        for (auto& [fd, conn] : conns_) {
          conn->closed = true;
          conn->sock.close();
          reactor_.open_connections_.fetch_sub(1, std::memory_order_relaxed);
          reactor_.active_connections_.sub(1);
        }
        conns_.clear();
        return;
      }
      reactor_.loop_lag_.observe(seconds_since(pass_start));
    }
  }

  void drain_eventfd() const {
    std::uint64_t buf = 0;
    while (::read(event_fd_, &buf, sizeof buf) > 0) {
    }
  }

  /// Applies queued intake/completions; true when the loop should exit.
  bool drain_inbox() {
    std::vector<Socket> sockets;
    std::vector<Completion> completions;
    bool stop = false;
    {
      const std::lock_guard<std::mutex> lock(inbox_mutex_);
      sockets.swap(pending_sockets_);
      completions.swap(completions_);
      stop = stop_requested_;
    }
    for (Socket& s : sockets) register_connection(std::move(s));
    for (Completion& c : completions) apply_completion(c);
    return stop;
  }

  void register_connection(Socket socket) {
    socket.set_nonblocking(true);
    auto conn = std::make_shared<Connection>(std::move(socket));
    const int fd = conn->sock.fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      reactor_.open_connections_.fetch_sub(1, std::memory_order_relaxed);
      reactor_.active_connections_.sub(1);
      return;  // socket closes via RAII
    }
    conn->interest = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
  }

  void apply_completion(Completion& c) {
    Connection& conn = *c.conn;
    if (conn.closed) return;  // arrived after the connection died
    for (auto& slot : conn.slots) {
      if (slot.seq == c.seq) {
        slot.done = true;
        slot.frame = std::move(c.frame);
        break;
      }
    }
    flush_ready(conn);
    try_write(conn);
    if (!conn.closed) after_progress(conn);
  }

  // ---- read side ----

  void handle_readable(Connection& conn) {
    std::uint8_t chunk[kReadChunk];
    while (!reading_paused(conn)) {
      const ssize_t n = ::recv(conn.sock.fd(), chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(conn);
        return;
      }
      if (n == 0) {
        conn.peer_closed = true;
        break;
      }
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      parse_frames(conn);
      if (conn.closed) return;
    }
    after_progress(conn);
  }

  [[nodiscard]] bool reading_paused(const Connection& conn) const {
    return conn.peer_closed || conn.close_after_flush ||
           conn.slots.size() >= reactor_.options_.max_pipeline ||
           conn.pending_out() > reactor_.options_.max_output_buffer;
  }

  /// True when the input buffer holds at least one complete frame.
  [[nodiscard]] static bool has_complete_frame(const Connection& conn) {
    const std::size_t avail = conn.in.size() - conn.in_pos;
    if (avail < 5) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(conn.in[conn.in_pos + 1 +
                                                static_cast<std::size_t>(i)])
             << (8 * i);
    if (len > kMaxFrameSize) return true;  // "complete" enough to reject
    return avail >= 5 + static_cast<std::size_t>(len);
  }

  void parse_frames(Connection& conn) {
    while (!conn.close_after_flush && has_complete_frame(conn) &&
           conn.slots.size() < reactor_.options_.max_pipeline &&
           conn.pending_out() <= reactor_.options_.max_output_buffer) {
      const std::uint8_t tag = conn.in[conn.in_pos];
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(conn.in[conn.in_pos + 1 +
                                                  static_cast<std::size_t>(i)])
               << (8 * i);
      if (len > kMaxFrameSize) {
        // A corrupted or hostile length: report once, then drop the
        // connection — the stream cannot be resynchronized.
        queue_immediate(conn, encode_response_error("frame: length exceeds cap"));
        conn.close_after_flush = true;
        break;
      }
      const std::size_t start = conn.in_pos + 5;
      Bytes payload(conn.in.begin() + static_cast<std::ptrdiff_t>(start),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(start + len));
      conn.in_pos = start + len;
      admit(conn, tag, std::move(payload));
      if (conn.closed) return;
    }
    if (conn.in_pos == conn.in.size()) {
      conn.in.clear();
      conn.in_pos = 0;
    } else if (conn.in_pos >= kCompactThreshold) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_pos));
      conn.in_pos = 0;
    }
  }

  /// Takes one parsed frame through admission: shed, reject, or hand to
  /// the worker pool under an ordered response slot.
  void admit(Connection& conn, std::uint8_t tag, Bytes payload) {
    // Malformed trace extension: the stream itself is intact (length was
    // honoured), so answer with an error frame and keep the connection.
    if ((tag & kTraceFlag) && payload.size() < obs::TraceContext::kWireSize) {
      queue_immediate(conn, encode_response_error("request: truncated trace context"));
      return;
    }
    ++reactor_.requests_;
    const std::size_t trace_bytes =
        (tag & kTraceFlag) ? obs::TraceContext::kWireSize : 0;
    reactor_.bytes_in_.inc(payload.size() - trace_bytes);
    if (!conn.slots.empty()) reactor_.pipelined_.inc();

    if (!reactor_.try_acquire_in_flight()) {
      reactor_.sheds_.inc();
      queue_immediate(
          conn, encode_response_error(
                    "Overloaded: server over its in-flight request cap; retry"));
      return;
    }

    Connection::Slot slot;
    slot.seq = conn.next_seq++;
    conn.slots.push_back(std::move(slot));
    const std::uint64_t seq = conn.slots.back().seq;

    // Workers keep the connection alive via shared_ptr; state stays
    // loop-owned — the worker only produces bytes.
    std::shared_ptr<Connection> conn_sp = conns_.at(conn.sock.fd());
    reactor_.worker_queue_depth_.add(1);
    (void)reactor_.pool_->submit(
        [this, conn_sp = std::move(conn_sp), seq, tag,
         payload = std::move(payload)]() mutable {
          reactor_.worker_queue_depth_.sub(1);
          Bytes frame = reactor_.execute(tag, payload);
          reactor_.release_in_flight();
          post_completion(std::move(conn_sp), seq, std::move(frame));
        });
  }

  /// Queues a loop-generated response (shed / protocol error) under an
  /// ordered slot that is already complete, preserving response order
  /// relative to requests still in the workers.
  void queue_immediate(Connection& conn, Bytes frame) {
    Connection::Slot slot;
    slot.seq = conn.next_seq++;
    slot.done = true;
    slot.frame = std::move(frame);
    conn.slots.push_back(std::move(slot));
    flush_ready(conn);
    try_write(conn);
  }

  // ---- write side ----

  /// Moves completed slots, in request order, into the output buffer.
  void flush_ready(Connection& conn) {
    while (!conn.slots.empty() && conn.slots.front().done) {
      Bytes& frame = conn.slots.front().frame;
      conn.out.insert(conn.out.end(), frame.begin(), frame.end());
      conn.slots.pop_front();
    }
  }

  void try_write(Connection& conn) {
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n =
          ::send(conn.sock.fd(), conn.out.data() + conn.out_pos,
                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(conn);
        return;
      }
      conn.out_pos += static_cast<std::size_t>(n);
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
    } else if (conn.out_pos >= kCompactThreshold) {
      conn.out.erase(conn.out.begin(),
                     conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
      conn.out_pos = 0;
    }
  }

  /// After any read/write/completion progress: resume parsing if
  /// backpressure lifted, retire the connection when fully drained, and
  /// refresh epoll interest.
  void after_progress(Connection& conn) {
    // Buffered frames stay parseable after EOF (a client may pipeline N
    // requests and half-close); peer_closed only stops SOCKET reads.
    const bool can_parse =
        !conn.close_after_flush &&
        conn.slots.size() < reactor_.options_.max_pipeline &&
        conn.pending_out() <= reactor_.options_.max_output_buffer;
    if (can_parse && has_complete_frame(conn)) {
      parse_frames(conn);
      if (conn.closed) return;
      try_write(conn);
      if (conn.closed) return;
    }
    const bool drained = conn.slots.empty() && conn.pending_out() == 0;
    if (drained && conn.close_after_flush) {
      close_connection(conn);
      return;
    }
    if (drained && conn.peer_closed && !has_complete_frame(conn)) {
      close_connection(conn);
      return;
    }
    update_interest(conn);
  }

  void update_interest(Connection& conn) {
    std::uint32_t wanted = 0;
    if (!reading_paused(conn)) wanted |= EPOLLIN;
    if (conn.pending_out() > 0) wanted |= EPOLLOUT;
    if (wanted == conn.interest) return;
    epoll_event ev{};
    ev.events = wanted;
    ev.data.fd = conn.sock.fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0)
      conn.interest = wanted;
  }

  void close_connection(Connection& conn) {
    if (conn.closed) return;
    conn.closed = true;
    const int fd = conn.sock.fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    conn.sock.close();
    conns_.erase(fd);  // may destroy conn unless a worker still holds it
    reactor_.open_connections_.fetch_sub(1, std::memory_order_relaxed);
    reactor_.active_connections_.sub(1);
  }

  Reactor& reactor_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;

  std::mutex inbox_mutex_;
  std::vector<Socket> pending_sockets_;
  std::vector<Completion> completions_;
  bool stop_requested_ = false;

  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

// ------------------------------------------------------------------- Reactor

Reactor::Reactor(const cloud::RequestHandler& handler, ReactorOptions options,
                 obs::MetricsRegistry& registry,
                 std::atomic<std::uint64_t>& requests, obs::Counter& bytes_in,
                 obs::Counter& bytes_out, obs::Gauge& active_connections)
    : handler_(handler),
      options_([&options] {
        options.loop_threads = std::max<std::size_t>(options.loop_threads, 1);
        options.workers = std::max<std::size_t>(options.workers, 1);
        options.max_pipeline = std::max<std::size_t>(options.max_pipeline, 1);
        options.max_output_buffer =
            std::max<std::size_t>(options.max_output_buffer, 64 * 1024);
        return options;
      }()),
      requests_(requests),
      bytes_in_(bytes_in),
      bytes_out_(bytes_out),
      active_connections_(active_connections),
      sheds_(registry.counter("rsse_net_shed_total",
                              "Requests shed by reactor backpressure")),
      pipelined_(registry.counter(
          "rsse_net_pipelined_requests_total",
          "Requests admitted while earlier ones were still unanswered on "
          "the same connection")),
      in_flight_gauge_(registry.gauge("rsse_net_in_flight",
                                      "Admitted requests not yet answered")),
      in_flight_peak_(registry.gauge(
          "rsse_net_in_flight_peak",
          "High-water mark of admitted unanswered requests")),
      worker_queue_depth_(registry.gauge(
          "rsse_net_worker_queue_depth",
          "Requests handed to the worker pool but not yet executing")),
      loop_lag_(registry.histogram("rsse_net_loop_lag_seconds",
                                   "Event-loop processing-pass duration",
                                   obs::log_bounds())) {
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  loops_.reserve(options_.loop_threads);
  for (std::size_t i = 0; i < options_.loop_threads; ++i)
    loops_.push_back(std::make_unique<EventLoop>(*this));
}

Reactor::~Reactor() { stop(); }

void Reactor::add_connection(Socket socket) {
  if (stopped_.load(std::memory_order_acquire)) return;  // socket closes
  open_connections_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.add(1);
  const std::size_t i =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  loops_[i]->enqueue_connection(std::move(socket));
}

void Reactor::stop() {
  if (stopped_.exchange(true)) {
    // A concurrent or repeated stop still waits for the loops to finish.
    for (auto& loop : loops_) loop->join();
    return;
  }
  // Stop the loops FIRST: once they are joined no connection can admit
  // another request, so draining the worker pool afterwards touches a
  // pool no loop thread can still reach (admit() runs only on loop
  // threads). Responses finished by that drain go nowhere — their
  // connections are already closed — which matches the legacy engine's
  // stop semantics: in-flight work at stop is abandoned, not answered.
  for (auto& loop : loops_) loop->request_stop();
  for (auto& loop : loops_) loop->join();
  // Workers may still post completions while draining; the inbox just
  // accumulates them and the EventLoop destructor discards them.
  pool_.reset();
}

Bytes Reactor::execute(std::uint8_t tag, const Bytes& payload) {
  const auto type = static_cast<cloud::MessageType>(tag & ~kTraceFlag);
  try {
    if (tag & kTraceFlag) {
      ByteReader reader(payload);
      const obs::TraceContext ctx = obs::TraceContext::decode(reader);
      const BytesView body(payload.data() + obs::TraceContext::kWireSize,
                           payload.size() - obs::TraceContext::kWireSize);
      if (ctx.active()) {
        std::vector<obs::Span> spans;
        const Bytes response = handler_.handle(type, body, ctx, &spans);
        bytes_out_.inc(response.size());
        return encode_response_ok_traced(response, spans);
      }
      const Bytes response = handler_.handle(type, body);
      bytes_out_.inc(response.size());
      return encode_response_ok(response);
    }
    const Bytes response = handler_.handle(type, payload);
    bytes_out_.inc(response.size());
    return encode_response_ok(response);
  } catch (const QuotaExceeded& e) {
    // Same reserved prefix the legacy engine stamps, so clients see the
    // identical typed shed regardless of server engine.
    return encode_response_error(std::string("QuotaExceeded: ") + e.what());
  } catch (const Error& e) {
    return encode_response_error(e.what());
  }
}

bool Reactor::try_acquire_in_flight() {
  const std::size_t cap = options_.max_in_flight;
  const std::size_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cap != 0 && now > cap) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  in_flight_gauge_.set(static_cast<std::int64_t>(now));
  in_flight_peak_.max_with(static_cast<std::int64_t>(now));
  return true;
}

void Reactor::release_in_flight() {
  const std::size_t now = in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  in_flight_gauge_.set(static_cast<std::int64_t>(now));
}

}  // namespace rsse::net
