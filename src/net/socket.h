// RAII POSIX TCP sockets: the substrate under the network server and the
// remote channel. Minimal by design — IPv4 loopback-class usage — but
// complete enough for real cross-process deployments: exact-length
// send/receive, ephemeral-port binding with port discovery, clean
// shutdown semantics, and deadline-bounded I/O (poll-based) so a hung
// peer can never block a caller past its budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/deadline.h"

namespace rsse::net {

/// An owned socket file descriptor.
///
/// The descriptor is atomic so the one sanctioned cross-thread operation
/// — close()/shutdown from another thread to unblock a blocked accept()
/// or poll() — is race-free. Concurrent send/recv on one socket is still
/// the caller's job to serialize (RemoteChannel holds a call mutex).
class Socket {
 public:
  /// Wraps an existing descriptor (-1 = empty).
  explicit Socket(int fd = -1) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// The raw descriptor (-1 when empty).
  [[nodiscard]] int fd() const { return fd_.load(std::memory_order_acquire); }

  /// True when a descriptor is held.
  [[nodiscard]] bool valid() const { return fd() >= 0; }

  /// Closes the descriptor now (idempotent).
  void close();

  /// Sends exactly `data.size()` bytes. Throws ProtocolError on failure
  /// and DeadlineExceeded when the budget runs out before everything is
  /// queued (a limited deadline switches the descriptor to non-blocking
  /// I/O paced by poll()).
  void send_all(BytesView data, const Deadline& deadline = {}) const;

  /// Receives exactly `n` bytes. Returns false on clean EOF at a message
  /// boundary (0 bytes read so far); throws ProtocolError on mid-message
  /// EOF or errors, DeadlineExceeded when the budget runs out first.
  bool recv_exact(std::span<std::uint8_t> out, const Deadline& deadline = {}) const;

  /// Half-closes the write side (signals EOF to the peer).
  void shutdown_write() const;

  /// Switches the descriptor to (or from) O_NONBLOCK persistently — the
  /// reactor server runs every connection non-blocking for its whole
  /// lifetime, unlike the scoped per-call toggling deadline-bounded
  /// blocking I/O uses. Throws ProtocolError on fcntl failure.
  void set_nonblocking(bool enable) const;

 private:
  std::atomic<int> fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens on `port` (0 = ephemeral). Throws ProtocolError on
  /// failure.
  explicit TcpListener(std::uint16_t port);

  /// The bound port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; returns the connection. An invalid
  /// socket return means the listener was closed (shutdown path).
  [[nodiscard]] Socket accept() const;

  /// Unblocks accept() by closing the listening descriptor.
  void close();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`. Throws ProtocolError on failure and
/// DeadlineExceeded when a limited deadline expires before the handshake
/// completes (non-blocking connect + poll).
Socket tcp_connect(std::uint16_t port, const Deadline& deadline = {});

}  // namespace rsse::net
