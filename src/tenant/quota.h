// Admission control: the cheap gate a request passes BEFORE any crypto,
// decryption, or ranking work is spent on its behalf.
//
// Two mechanisms compose per tenant:
//   - a token bucket (rate_per_sec / burst) bounds sustained request rate
//     while letting a quiet tenant spend a burst at once, and
//   - an in-flight cap (max_in_flight) bounds the concurrency one tenant
//     can occupy regardless of rate.
// A request that fails either check is shed with a typed QuotaExceeded
// before it touches the index — the whole point of admission control is
// that rejection costs almost nothing, so a flooding tenant cannot
// convert its excess arrivals into server CPU.
//
// The clock is injectable (nanoseconds, monotonic) so tests drive time
// deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tenant/registry.h"

namespace rsse::tenant {

/// Classic token bucket over an injected nanosecond clock. Not thread
/// safe: AdmissionController serializes access per tenant.
class TokenBucket {
 public:
  /// rate = tokens/second refill, capacity = burst size. A zero rate
  /// disables the bucket (try_take always succeeds).
  TokenBucket(std::uint64_t rate_per_sec, std::uint64_t capacity,
              std::uint64_t now_ns);

  /// Refills for elapsed time, then takes one token if available.
  bool try_take(std::uint64_t now_ns);

  /// Current token count after refilling to `now_ns` (test hook).
  [[nodiscard]] double peek(std::uint64_t now_ns);

 private:
  void refill(std::uint64_t now_ns);

  double rate_;      // tokens per nanosecond
  double capacity_;  // max tokens
  double tokens_;
  std::uint64_t last_ns_;
};

/// Why a request was shed (or kNone when admitted). The label value on
/// rsse_tenant_shed_total{tenant=...,reason=...}.
enum class ShedReason : std::uint8_t { kNone, kRate, kInFlight, kQueue };

/// Human-readable reason, for metrics labels and error text.
[[nodiscard]] const char* to_string(ShedReason reason);

/// Per-tenant admission state shared by every request thread. Thread
/// safe; one mutex per tenant so tenants never contend with each other.
class AdmissionController {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// Default clock = std::chrono::steady_clock in nanoseconds.
  explicit AdmissionController(Clock clock = {});

  /// Installs (or replaces) a tenant's quota. Resets its bucket.
  void configure(const std::string& tenant, const TenantQuota& quota);

  /// Drops a tenant's admission state.
  void remove(const std::string& tenant);

  /// Attempts to admit one request. On success the tenant's in-flight
  /// count is incremented and the caller MUST call release() when the
  /// request finishes (use ScopedAdmission). An unconfigured tenant is
  /// admitted unconditionally (the host rejects unknown tenants before
  /// admission, so this only happens for unlimited quotas).
  [[nodiscard]] ShedReason try_admit(const std::string& tenant);

  /// Releases one in-flight slot taken by a successful try_admit.
  void release(const std::string& tenant);

  /// Current in-flight count (test hook; 0 for unknown tenants).
  [[nodiscard]] std::uint64_t in_flight(const std::string& tenant) const;

 private:
  struct State {
    std::mutex mutex;
    TenantQuota quota;
    std::unique_ptr<TokenBucket> bucket;  // null when rate unlimited
    std::uint64_t in_flight = 0;
  };

  Clock clock_;
  mutable std::mutex mutex_;  // guards the map shape only
  // shared_ptr: try_admit/release take the per-tenant lock OUTSIDE the
  // map lock (so tenants never contend with each other), and the host
  // may remove() a tenant while one of its requests is still in flight
  // — the borrowed State must outlive the erase.
  std::map<std::string, std::shared_ptr<State>> tenants_;
};

/// RAII in-flight slot: releases on destruction unless admission failed.
class ScopedAdmission {
 public:
  ScopedAdmission(AdmissionController& controller, std::string tenant,
                  ShedReason reason)
      : controller_(controller), tenant_(std::move(tenant)), reason_(reason) {}
  ~ScopedAdmission() {
    if (reason_ == ShedReason::kNone) controller_.release(tenant_);
  }
  ScopedAdmission(const ScopedAdmission&) = delete;
  ScopedAdmission& operator=(const ScopedAdmission&) = delete;

  [[nodiscard]] ShedReason reason() const { return reason_; }
  [[nodiscard]] bool admitted() const { return reason_ == ShedReason::kNone; }

 private:
  AdmissionController& controller_;
  std::string tenant_;
  ShedReason reason_;
};

}  // namespace rsse::tenant
