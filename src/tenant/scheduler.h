// Deficit-weighted-round-robin (DWRR) query scheduler.
//
// Admission control bounds how much work each tenant may SUBMIT; the
// scheduler decides the ORDER the bounded worker pool executes it in.
// Under a plain FIFO queue a burst from one tenant sits in front of
// everyone else's requests and inflates their latency even when the
// burst is within quota. DWRR instead keeps one queue per tenant and a
// deficit counter: each round-robin visit credits the tenant
// quantum * weight service units and serves queued tasks while the
// deficit covers them, so over any contention window tenants receive
// service proportional to their weights — a weight-2 tenant gets twice
// the throughput of a weight-1 tenant, and a flooding tenant only ever
// delays its own queue.
//
// fair=false degrades to a single global FIFO; the isolation bench runs
// both modes to measure exactly what DWRR buys.
//
// run() is blocking: the caller thread parks on a stack-allocated
// waiter until a worker finishes its task (or the scheduler stops), so
// existing synchronous transports need no changes. Under the epoll
// reactor the callers are the reactor's own worker threads, so the two
// pools compose: the reactor bounds transport-level concurrency
// (admission, in-flight cap), and DWRR decides execution order across
// tenants within it — size the reactor's workers at least as large as
// the scheduler's or the outer pool becomes the fairness bottleneck.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/bytes.h"

namespace rsse::tenant {

struct SchedulerOptions {
  /// Worker threads executing queries. The cap on server concurrency.
  std::size_t workers = 4;
  /// true = DWRR across tenants; false = single global FIFO (baseline).
  bool fair = true;
  /// Service units credited per round-robin visit (scaled by weight).
  /// One task costs one unit, so quantum=1 with equal weights is plain
  /// round-robin at task granularity.
  std::uint64_t quantum = 1;
};

/// Bounded worker pool with per-tenant queues and DWRR dispatch.
class FairScheduler {
 public:
  explicit FairScheduler(SchedulerOptions options = {});
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Enqueues `fn` under `tenant` with scheduling `weight`, blocks until
  /// a worker runs it, and returns its result (rethrowing its
  /// exception). Throws QuotaExceeded immediately when the tenant
  /// already has `max_queued` tasks waiting (0 = unlimited), without
  /// executing `fn`.
  Bytes run(const std::string& tenant, std::uint64_t weight,
            std::uint64_t max_queued, std::function<Bytes()> fn);

  /// Tasks currently queued for `tenant` (test hook).
  [[nodiscard]] std::size_t queued(const std::string& tenant) const;

  /// Fails all pending tasks with QuotaExceeded and joins the workers.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  struct Waiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Bytes result;
    std::exception_ptr error;
  };

  struct Task {
    std::function<Bytes()> fn;
    Waiter* waiter;
  };

  struct TenantQueue {
    std::deque<Task> tasks;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    bool active = false;  // present in active_ rotation
  };

  void worker_loop();
  /// Picks the next task under mutex_, or returns false when stopping.
  bool next_task(std::unique_lock<std::mutex>& lock, Task& out);

  SchedulerOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  bool stopping_ = false;

  std::map<std::string, TenantQueue> queues_;  // DWRR state
  std::vector<std::string> active_;            // rotation of non-empty tenants
  std::size_t rr_pos_ = 0;
  std::deque<Task> fifo_;  // fair=false path

  std::vector<std::thread> workers_;
};

}  // namespace rsse::tenant
