#include "tenant/host.h"

#include <optional>
#include <utility>

#include "seg/update_leakage.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::tenant {

TenantHost::ScopedPin::ScopedPin(const TenantState& state) : state_(state) {
  const std::lock_guard<std::mutex> lock(state_.pin_mutex);
  ++state_.pins;
}

TenantHost::ScopedPin::~ScopedPin() {
  // Notify under the lock: remove_tenant destroys the state as soon as
  // its drain wait observes pins == 0, so an unlocked notify could run
  // on a dead condition_variable.
  const std::lock_guard<std::mutex> lock(state_.pin_mutex);
  --state_.pins;
  if (state_.pins == 0) state_.pin_cv.notify_all();
}

TenantHost::TenantHost(TenantHostOptions options)
    : options_(std::move(options)),
      admission_(options_.clock),
      scheduler_(options_.scheduler) {}

TenantHost::~TenantHost() { scheduler_.stop(); }

cloud::CloudServer& TenantHost::add_tenant(TenantConfig config) {
  detail::require(cloud::valid_tenant_id(config.id),
                  "TenantHost: malformed tenant id: " + config.id);
  if (config.quota.weight == 0) config.quota.weight = 1;

  auto state = std::make_unique<TenantState>();
  state->config = config;
  state->server = std::make_unique<cloud::CloudServer>();
  state->server->set_node_name("tenant/" + config.id);
  state->server->set_tenant_tag(config.id);
  if (options_.slow_query_threshold_ms > 0)
    state->server->set_slow_query_threshold_ms(options_.slow_query_threshold_ms);
  const obs::Labels labels{{"tenant", config.id}};
  state->requests =
      &registry_.counter("rsse_tenant_requests_total",
                         "Requests served per tenant", labels);
  state->latency = &registry_.histogram("rsse_tenant_request_seconds",
                                        "Per-tenant request latency",
                                        obs::log_bounds(), labels);

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  detail::require(!tenants_.contains(config.id),
                  "TenantHost: duplicate tenant: " + config.id);
  admission_.configure(config.id, config.quota);
  cloud::CloudServer& server = *state->server;
  tenants_.emplace(config.id, std::move(state));
  return server;
}

void TenantHost::remove_tenant(const std::string& id) {
  std::unique_ptr<TenantState> victim;
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    const auto it = tenants_.find(id);
    detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
    victim = std::move(it->second);
    tenants_.erase(it);
    admission_.remove(id);
  }
  // Out of the map, no new request can pin the state; drain the pins
  // already taken so the server dies quiescent. The wait runs OUTSIDE
  // the map lock — in-flight requests for other tenants keep flowing
  // while this tenant's queued work finishes.
  std::unique_lock<std::mutex> pins(victim->pin_mutex);
  victim->pin_cv.wait(pins, [&] { return victim->pins == 0; });
  pins.unlock();
}

void TenantHost::set_quota(const std::string& id, TenantQuota quota) {
  if (quota.weight == 0) quota.weight = 1;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  it->second->config.quota = quota;
  admission_.configure(id, quota);
}

void TenantHost::set_enabled(const std::string& id, bool enabled) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  it->second->config.enabled = enabled;
}

cloud::CloudServer* TenantHost::find_server(const std::string& id) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second->server.get();
}

const cloud::CloudServer* TenantHost::find_server(const std::string& id) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second->server.get();
}

TenantRegistry TenantHost::registry() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  TenantRegistry out;
  for (const auto& [id, state] : tenants_) out.add(state->config);
  return out;
}

std::vector<std::string> TenantHost::tenant_ids() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

void TenantHost::refresh_leakage_gauges() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [id, state] : tenants_) {
    seg::export_update_leakage_gauges(state->server->segments().leakage(),
                                      registry_, {{"tenant", id}});
  }
}

std::vector<obs::SlowQueryEntry> TenantHost::slow_queries(
    const std::string& id) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  return it->second->server->slow_queries();
}

const TenantHost::TenantState& TenantHost::resolve(
    const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    throw ProtocolError("TenantHost: unknown tenant: " + tenant);
  if (!it->second->config.enabled)
    throw ProtocolError("TenantHost: tenant disabled: " + tenant);
  return *it->second;
}

Bytes TenantHost::handle(cloud::MessageType type, BytesView payload) const {
  return handle(type, payload, obs::TraceContext{}, nullptr);
}

Bytes TenantHost::handle(cloud::MessageType type, BytesView payload,
                         const obs::TraceContext& ctx,
                         std::vector<obs::Span>* spans) const {
  if (type == cloud::MessageType::kStats) {
    // The aggregate host registry — every tenant's {tenant=...} series.
    // Operator-only: to any other caller this view leaks each tenant's
    // existence, traffic volume and leakage profile, so it is gated on
    // expose_host_stats (tenants read their own registry through a
    // tenant-scoped kStats; in-process scrapers use metrics_registry()).
    if (!options_.expose_host_stats)
      throw ProtocolError(
          "TenantHost: host-wide stats are operator-only (enable "
          "expose_host_stats on a trusted endpoint, or send kStats "
          "tenant-scoped for one tenant's own view)");
    refresh_leakage_gauges();
    const auto req = cloud::StatsRequest::deserialize(payload);
    cloud::StatsResponse resp;
    resp.text = req.format == cloud::StatsFormat::kPrometheus
                    ? registry_.render_prometheus()
                    : registry_.render_json();
    return resp.serialize();
  }
  if (type != cloud::MessageType::kTenantScoped)
    throw ProtocolError(
        "TenantHost: tenant id required (wrap the request in a "
        "TenantScopedRequest)");

  // Parse ONLY the envelope — tenant id + inner type + opaque payload.
  // The inner payload is not touched until the request is admitted and
  // scheduled, so a shed costs no crypto or parsing work.
  const auto env = cloud::TenantScopedRequest::deserialize(payload);

  // Resolve + pin under the map lock, then RELEASE it for the blocking
  // work: were the shared lock held across scheduler_.run, one tenant's
  // queued work plus any pending control-plane writer (shared_mutex
  // implementations may prefer writers) would stall every tenant's new
  // requests. The pin keeps the state alive against remove_tenant; the
  // quota snapshot keeps set_quota race-free.
  std::optional<ScopedPin> pin;
  const TenantState* state = nullptr;
  std::uint64_t weight = 1;
  std::uint64_t max_queued = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const TenantState& resolved = resolve(env.tenant);
    pin.emplace(resolved);
    state = &resolved;
    weight = resolved.config.quota.weight;
    max_queued = resolved.config.quota.max_queued;
  }

  const ShedReason reason = admission_.try_admit(env.tenant);
  if (reason != ShedReason::kNone) {
    registry_
        .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                 {{"tenant", env.tenant}, {"reason", to_string(reason)}})
        .inc();
    throw QuotaExceeded("tenant " + env.tenant + " over quota (" +
                        to_string(reason) + ")");
  }
  const ScopedAdmission slot(admission_, env.tenant, reason);

  const Stopwatch watch;
  Bytes out;
  try {
    out = scheduler_.run(
        env.tenant, weight, max_queued,
        [&] { return state->server->handle(env.inner_type, env.inner_payload,
                                           ctx, spans); });
  } catch (const QuotaExceeded&) {
    // The scheduler's bounded-queue shed (the per-tenant server itself
    // never throws QuotaExceeded).
    registry_
        .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                 {{"tenant", env.tenant}, {"reason", to_string(ShedReason::kQueue)}})
        .inc();
    throw;
  }
  state->requests->inc();
  state->latency->observe(watch.elapsed_seconds());
  return out;
}

}  // namespace rsse::tenant
