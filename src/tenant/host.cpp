#include "tenant/host.h"

#include <utility>

#include "seg/update_leakage.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::tenant {

TenantHost::TenantHost(TenantHostOptions options)
    : options_(std::move(options)),
      admission_(options_.clock),
      scheduler_(options_.scheduler) {}

TenantHost::~TenantHost() { scheduler_.stop(); }

cloud::CloudServer& TenantHost::add_tenant(TenantConfig config) {
  detail::require(cloud::valid_tenant_id(config.id),
                  "TenantHost: malformed tenant id: " + config.id);
  if (config.quota.weight == 0) config.quota.weight = 1;

  auto state = std::make_unique<TenantState>();
  state->config = config;
  state->server = std::make_unique<cloud::CloudServer>();
  state->server->set_node_name("tenant/" + config.id);
  state->server->set_tenant_tag(config.id);
  if (options_.slow_query_threshold_ms > 0)
    state->server->set_slow_query_threshold_ms(options_.slow_query_threshold_ms);
  const obs::Labels labels{{"tenant", config.id}};
  state->requests =
      &registry_.counter("rsse_tenant_requests_total",
                         "Requests served per tenant", labels);
  state->latency = &registry_.histogram("rsse_tenant_request_seconds",
                                        "Per-tenant request latency",
                                        obs::log_bounds(), labels);

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  detail::require(!tenants_.contains(config.id),
                  "TenantHost: duplicate tenant: " + config.id);
  admission_.configure(config.id, config.quota);
  cloud::CloudServer& server = *state->server;
  tenants_.emplace(config.id, std::move(state));
  return server;
}

void TenantHost::remove_tenant(const std::string& id) {
  // The unique lock waits for every in-flight request (each holds the
  // shared lock for its full duration), so the server dies quiescent.
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  tenants_.erase(it);
  admission_.remove(id);
}

void TenantHost::set_quota(const std::string& id, TenantQuota quota) {
  if (quota.weight == 0) quota.weight = 1;
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  it->second->config.quota = quota;
  admission_.configure(id, quota);
}

void TenantHost::set_enabled(const std::string& id, bool enabled) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  it->second->config.enabled = enabled;
}

cloud::CloudServer* TenantHost::find_server(const std::string& id) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second->server.get();
}

const cloud::CloudServer* TenantHost::find_server(const std::string& id) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second->server.get();
}

TenantRegistry TenantHost::registry() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  TenantRegistry out;
  for (const auto& [id, state] : tenants_) out.add(state->config);
  return out;
}

std::vector<std::string> TenantHost::tenant_ids() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(id);
  return out;
}

void TenantHost::refresh_leakage_gauges() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [id, state] : tenants_) {
    seg::export_update_leakage_gauges(state->server->segments().leakage(),
                                      registry_, {{"tenant", id}});
  }
}

std::vector<obs::SlowQueryEntry> TenantHost::slow_queries(
    const std::string& id) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantHost: unknown tenant: " + id);
  return it->second->server->slow_queries();
}

const TenantHost::TenantState& TenantHost::resolve(
    const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    throw ProtocolError("TenantHost: unknown tenant: " + tenant);
  if (!it->second->config.enabled)
    throw ProtocolError("TenantHost: tenant disabled: " + tenant);
  return *it->second;
}

Bytes TenantHost::handle(cloud::MessageType type, BytesView payload) const {
  return handle(type, payload, obs::TraceContext{}, nullptr);
}

Bytes TenantHost::handle(cloud::MessageType type, BytesView payload,
                         const obs::TraceContext& ctx,
                         std::vector<obs::Span>* spans) const {
  if (type == cloud::MessageType::kStats) {
    // Operator view: the aggregate host registry, every series labelled
    // by tenant. Allowed bare — it names no namespace.
    refresh_leakage_gauges();
    const auto req = cloud::StatsRequest::deserialize(payload);
    cloud::StatsResponse resp;
    resp.text = req.format == cloud::StatsFormat::kPrometheus
                    ? registry_.render_prometheus()
                    : registry_.render_json();
    return resp.serialize();
  }
  if (type != cloud::MessageType::kTenantScoped)
    throw ProtocolError(
        "TenantHost: tenant id required (wrap the request in a "
        "TenantScopedRequest)");

  // Parse ONLY the envelope — tenant id + inner type + opaque payload.
  // The inner payload is not touched until the request is admitted and
  // scheduled, so a shed costs no crypto or parsing work.
  const auto env = cloud::TenantScopedRequest::deserialize(payload);

  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const TenantState& state = resolve(env.tenant);

  const ShedReason reason = admission_.try_admit(env.tenant);
  if (reason != ShedReason::kNone) {
    registry_
        .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                 {{"tenant", env.tenant}, {"reason", to_string(reason)}})
        .inc();
    throw QuotaExceeded("tenant " + env.tenant + " over quota (" +
                        to_string(reason) + ")");
  }
  const ScopedAdmission slot(admission_, env.tenant, reason);

  const Stopwatch watch;
  Bytes out;
  try {
    out = scheduler_.run(
        env.tenant, state.config.quota.weight, state.config.quota.max_queued,
        [&] { return state.server->handle(env.inner_type, env.inner_payload,
                                          ctx, spans); });
  } catch (const QuotaExceeded&) {
    // The scheduler's bounded-queue shed (the per-tenant server itself
    // never throws QuotaExceeded).
    registry_
        .counter("rsse_tenant_shed_total", "Requests shed per tenant",
                 {{"tenant", env.tenant}, {"reason", to_string(ShedReason::kQueue)}})
        .inc();
    throw;
  }
  state.requests->inc();
  state.latency->observe(watch.elapsed_seconds());
  return out;
}

}  // namespace rsse::tenant
