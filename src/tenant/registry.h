// Tenant namespace registry: the control-plane record of which owners a
// multi-tenant deployment serves and under what resource contract.
//
// One RSSE deployment can host many mutually distrusting data owners.
// Each owner gets a NAMESPACE — its own keyspace, index artifacts,
// segment overlay and WAL, held by a dedicated per-tenant CloudServer
// inside tenant::TenantHost — and a QUOTA: the admission-control and
// scheduling parameters the host enforces before any crypto or ranking
// work happens on the tenant's behalf. The registry is a plain value
// type (the host synchronizes access); store/deployment persists it
// alongside the index artifacts through the same checksummed
// atomic-swap path, so a restart recovers tenants and quotas together
// with their data.
//
// Serialization is canonical: tenants are written sorted by id, so two
// registries with equal contents produce byte-identical blobs (the
// property every artifact checksum in src/store relies on).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace rsse::tenant {

/// Per-tenant resource contract. All fields are u64 so the wire format
/// stays fully canonical (no float rounding).
struct TenantQuota {
  /// Token-bucket refill rate, requests per second. 0 = unlimited.
  std::uint64_t rate_per_sec = 0;
  /// Token-bucket capacity: the burst a quiet tenant may spend at once.
  /// Clamped up to at least 1 when rate limiting is on.
  std::uint64_t burst = 0;
  /// Concurrent admitted requests. 0 = unlimited.
  std::uint64_t max_in_flight = 0;
  /// Deficit-weighted-round-robin scheduling weight (>= 1): a weight-2
  /// tenant receives twice the service of a weight-1 tenant under
  /// contention.
  std::uint64_t weight = 1;
  /// Requests a tenant may have queued in the scheduler before further
  /// arrivals shed. 0 = unlimited.
  std::uint64_t max_queued = 0;

  [[nodiscard]] Bytes serialize() const;
  static TenantQuota deserialize(BytesView blob);

  friend bool operator==(const TenantQuota&, const TenantQuota&) = default;
};

/// One registered tenant.
struct TenantConfig {
  std::string id;  ///< cloud::valid_tenant_id() constrained
  TenantQuota quota;
  /// A disabled tenant keeps its namespace (data survives) but every
  /// request is rejected — the suspend switch.
  bool enabled = true;

  friend bool operator==(const TenantConfig&, const TenantConfig&) = default;
};

/// The registry: id -> config, canonically serializable.
class TenantRegistry {
 public:
  /// Registers a tenant. Throws InvalidArgument on a malformed id or a
  /// duplicate registration, and normalizes quota.weight up to 1.
  void add(TenantConfig config);

  /// Unregisters. Throws InvalidArgument when absent.
  void remove(const std::string& id);

  [[nodiscard]] bool contains(const std::string& id) const;

  /// The tenant's config, or nullptr when unregistered.
  [[nodiscard]] const TenantConfig* find(const std::string& id) const;

  /// Replaces the tenant's quota. Throws InvalidArgument when absent.
  void set_quota(const std::string& id, TenantQuota quota);

  /// Flips the tenant's enable switch. Throws InvalidArgument when absent.
  void set_enabled(const std::string& id, bool enabled);

  /// All configs, sorted by id.
  [[nodiscard]] std::vector<TenantConfig> list() const;

  [[nodiscard]] std::size_t size() const { return tenants_.size(); }

  /// Canonical bytes: count, then (id, quota, enabled) sorted by id.
  [[nodiscard]] Bytes serialize() const;
  static TenantRegistry deserialize(BytesView blob);

  friend bool operator==(const TenantRegistry&, const TenantRegistry&) = default;

 private:
  std::map<std::string, TenantConfig> tenants_;  // keyed by id (sorted)
};

}  // namespace rsse::tenant
