// TenantHost: many data owners behind one serving endpoint.
//
// The paper's CloudServer serves a single owner. TenantHost composes a
// map of them — one fully isolated CloudServer per registered tenant,
// each with its own secure index, encrypted files, segment overlay and
// WAL — behind the same cloud::RequestHandler seam every transport
// (Channel, NetworkServer, SimNet) already speaks. Every data-path
// request must arrive wrapped in a TenantScopedRequest; the host
//
//   1. validates the tenant id against its registry (unknown/disabled
//      tenants are rejected before the inner payload is even parsed),
//   2. runs admission control (token bucket + in-flight cap — a shed
//      costs a map lookup and a counter bump, never a row decryption),
//   3. dispatches through the deficit-weighted-round-robin scheduler so
//      a flooding tenant only ever delays its own queue, and
//   4. attributes the work: per-tenant request counters, latency
//      histograms, shed counters by reason, slow-query entries and
//      trace spans tagged with the tenant id, and per-tenant leakage
//      gauges — all as {tenant="..."} labelled series in one host
//      registry (bounded by MetricsRegistry's label-cardinality cap).
//
// A bare (unwrapped) kStats request renders that host registry — the
// operator's aggregate /metrics view. Every other bare type is rejected:
// on a multi-tenant endpoint there is no "default" namespace to serve.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/cloud_server.h"
#include "cloud/handler.h"
#include "obs/metrics.h"
#include "tenant/quota.h"
#include "tenant/registry.h"
#include "tenant/scheduler.h"

namespace rsse::tenant {

struct TenantHostOptions {
  SchedulerOptions scheduler;
  /// Nanosecond clock for token buckets (tests inject a fake; empty =
  /// steady_clock).
  AdmissionController::Clock clock;
  /// Slow-query threshold applied to every per-tenant server (ms; 0 off).
  double slow_query_threshold_ms = 0;
};

/// The multi-tenant serving endpoint.
class TenantHost final : public cloud::RequestHandler {
 public:
  explicit TenantHost(TenantHostOptions options = {});
  ~TenantHost() override;

  TenantHost(const TenantHost&) = delete;
  TenantHost& operator=(const TenantHost&) = delete;

  // ----- tenant lifecycle (control plane) -----

  /// Registers a tenant and creates its empty namespace (a dedicated
  /// CloudServer). Returns the server so the caller can load the
  /// tenant's deployment into it. Throws InvalidArgument on a malformed
  /// or duplicate id.
  cloud::CloudServer& add_tenant(TenantConfig config);

  /// Unregisters a tenant and destroys its namespace. Blocks until the
  /// tenant's in-flight requests drain. Throws InvalidArgument when
  /// absent.
  void remove_tenant(const std::string& id);

  /// Replaces a tenant's quota (admission + scheduling take effect on
  /// the next request). Throws InvalidArgument when absent.
  void set_quota(const std::string& id, TenantQuota quota);

  /// Suspends/resumes a tenant without touching its data.
  void set_enabled(const std::string& id, bool enabled);

  /// The tenant's namespace server, or nullptr when unregistered. The
  /// pointer stays valid until remove_tenant(id).
  [[nodiscard]] cloud::CloudServer* find_server(const std::string& id);
  [[nodiscard]] const cloud::CloudServer* find_server(const std::string& id) const;

  /// Snapshot of the control-plane state, for persistence.
  [[nodiscard]] TenantRegistry registry() const;

  /// Registered tenant ids, sorted.
  [[nodiscard]] std::vector<std::string> tenant_ids() const;

  // ----- attribution -----

  /// Re-exports every tenant's accumulated update-leakage counters as
  /// {tenant="..."} gauges on the host registry. Called automatically
  /// before a bare kStats render; callable directly by scrape loops.
  void refresh_leakage_gauges() const;

  /// Per-tenant slow queries (each entry's tenant field is set).
  [[nodiscard]] std::vector<obs::SlowQueryEntry> slow_queries(
      const std::string& id) const;

  // ----- cloud::RequestHandler -----

  [[nodiscard]] Bytes handle(cloud::MessageType type,
                             BytesView payload) const override;
  [[nodiscard]] Bytes handle(cloud::MessageType type, BytesView payload,
                             const obs::TraceContext& ctx,
                             std::vector<obs::Span>* spans) const override;
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() const override {
    return registry_;
  }

 private:
  struct TenantState {
    TenantConfig config;
    std::unique_ptr<cloud::CloudServer> server;  // immovable: heap slot
    obs::Counter* requests = nullptr;            // rsse_tenant_requests_total
    obs::HistogramMetric* latency = nullptr;     // rsse_tenant_request_seconds
  };

  /// Looks up + enforces enabled under an already-held shared lock.
  const TenantState& resolve(const std::string& tenant) const;

  TenantHostOptions options_;
  mutable obs::MetricsRegistry registry_;  // host-wide, {tenant=} labelled
  mutable AdmissionController admission_;
  mutable FairScheduler scheduler_;

  mutable std::shared_mutex mutex_;  // guards tenants_ map shape
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace rsse::tenant
