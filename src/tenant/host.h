// TenantHost: many data owners behind one serving endpoint.
//
// The paper's CloudServer serves a single owner. TenantHost composes a
// map of them — one fully isolated CloudServer per registered tenant,
// each with its own secure index, encrypted files, segment overlay and
// WAL — behind the same cloud::RequestHandler seam every transport
// (Channel, NetworkServer, SimNet) already speaks. Every data-path
// request must arrive wrapped in a TenantScopedRequest; the host
//
//   1. validates the tenant id against its registry (unknown/disabled
//      tenants are rejected before the inner payload is even parsed),
//   2. runs admission control (token bucket + in-flight cap — a shed
//      costs a map lookup and a counter bump, never a row decryption),
//   3. dispatches through the deficit-weighted-round-robin scheduler so
//      a flooding tenant only ever delays its own queue, and
//   4. attributes the work: per-tenant request counters, latency
//      histograms, shed counters by reason, slow-query entries and
//      trace spans tagged with the tenant id, and per-tenant leakage
//      gauges — all as {tenant="..."} labelled series in one host
//      registry (bounded by MetricsRegistry's label-cardinality cap).
//
// Stats follow the trust boundary: a tenant-scoped kStats renders only
// that tenant's own server registry, while a bare (unwrapped) kStats —
// the operator's aggregate view with every {tenant=...} series — is
// rejected unless expose_host_stats is set (the endpoint then must be
// operator-only; tenant clients would read each other's traffic and
// leakage profiles). In-process scrape loops read metrics_registry()
// directly and need no protocol call. Every other bare type is rejected:
// on a multi-tenant endpoint there is no "default" namespace to serve.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/cloud_server.h"
#include "cloud/handler.h"
#include "obs/metrics.h"
#include "tenant/quota.h"
#include "tenant/registry.h"
#include "tenant/scheduler.h"

namespace rsse::tenant {

struct TenantHostOptions {
  SchedulerOptions scheduler;
  /// Nanosecond clock for token buckets (tests inject a fake; empty =
  /// steady_clock).
  AdmissionController::Clock clock;
  /// Slow-query threshold applied to every per-tenant server (ms; 0 off).
  double slow_query_threshold_ms = 0;
  /// Serve the aggregate host registry (every tenant's {tenant=...}
  /// series) on a bare kStats request. Off by default: enable ONLY when
  /// the endpoint is operator-only — to mutually distrusting tenants the
  /// aggregate view leaks each tenant's existence, traffic volume and
  /// leakage profile. Tenants always get their own registry via a
  /// tenant-scoped kStats regardless of this flag.
  bool expose_host_stats = false;
};

/// The multi-tenant serving endpoint.
class TenantHost final : public cloud::RequestHandler {
 public:
  explicit TenantHost(TenantHostOptions options = {});
  ~TenantHost() override;

  TenantHost(const TenantHost&) = delete;
  TenantHost& operator=(const TenantHost&) = delete;

  // ----- tenant lifecycle (control plane) -----

  /// Registers a tenant and creates its empty namespace (a dedicated
  /// CloudServer). Returns the server so the caller can load the
  /// tenant's deployment into it. Throws InvalidArgument on a malformed
  /// or duplicate id.
  cloud::CloudServer& add_tenant(TenantConfig config);

  /// Unregisters a tenant and destroys its namespace. Blocks until the
  /// tenant's in-flight requests drain. Throws InvalidArgument when
  /// absent.
  void remove_tenant(const std::string& id);

  /// Replaces a tenant's quota (admission + scheduling take effect on
  /// the next request). Throws InvalidArgument when absent.
  void set_quota(const std::string& id, TenantQuota quota);

  /// Suspends/resumes a tenant without touching its data.
  void set_enabled(const std::string& id, bool enabled);

  /// The tenant's namespace server, or nullptr when unregistered. The
  /// pointer stays valid until remove_tenant(id).
  [[nodiscard]] cloud::CloudServer* find_server(const std::string& id);
  [[nodiscard]] const cloud::CloudServer* find_server(const std::string& id) const;

  /// Snapshot of the control-plane state, for persistence.
  [[nodiscard]] TenantRegistry registry() const;

  /// Registered tenant ids, sorted.
  [[nodiscard]] std::vector<std::string> tenant_ids() const;

  // ----- attribution -----

  /// Re-exports every tenant's accumulated update-leakage counters as
  /// {tenant="..."} gauges on the host registry. Called automatically
  /// before a bare kStats render; callable directly by scrape loops.
  void refresh_leakage_gauges() const;

  /// Per-tenant slow queries (each entry's tenant field is set).
  [[nodiscard]] std::vector<obs::SlowQueryEntry> slow_queries(
      const std::string& id) const;

  // ----- cloud::RequestHandler -----

  [[nodiscard]] Bytes handle(cloud::MessageType type,
                             BytesView payload) const override;
  [[nodiscard]] Bytes handle(cloud::MessageType type, BytesView payload,
                             const obs::TraceContext& ctx,
                             std::vector<obs::Span>* spans) const override;
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() const override {
    return registry_;
  }

 private:
  struct TenantState {
    TenantConfig config;
    std::unique_ptr<cloud::CloudServer> server;  // immovable: heap slot
    obs::Counter* requests = nullptr;            // rsse_tenant_requests_total
    obs::HistogramMetric* latency = nullptr;     // rsse_tenant_request_seconds

    // In-flight pin count. handle() pins the state under the map lock,
    // then DROPS the map lock for the blocking admission + scheduler
    // work, so a control-plane writer waiting on mutex_ can never stall
    // other tenants' new requests behind one tenant's queued work.
    // remove_tenant() drains pins before destroying the state.
    mutable std::mutex pin_mutex;
    mutable std::condition_variable pin_cv;
    mutable std::size_t pins = 0;
  };

  /// RAII in-flight pin: keeps one TenantState alive (against
  /// remove_tenant) without holding the tenants_ map lock. Acquire while
  /// holding mutex_; release order is pin count down + notify under the
  /// state's own pin_mutex.
  class ScopedPin {
   public:
    explicit ScopedPin(const TenantState& state);
    ~ScopedPin();
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

   private:
    const TenantState& state_;
  };

  /// Looks up + enforces enabled under an already-held shared lock.
  const TenantState& resolve(const std::string& tenant) const;

  TenantHostOptions options_;
  mutable obs::MetricsRegistry registry_;  // host-wide, {tenant=} labelled
  mutable AdmissionController admission_;
  mutable FairScheduler scheduler_;

  mutable std::shared_mutex mutex_;  // guards tenants_ map shape
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace rsse::tenant
