#include "tenant/scheduler.h"

#include <algorithm>

#include "util/errors.h"

namespace rsse::tenant {

FairScheduler::FairScheduler(SchedulerOptions options) : options_(options) {
  detail::require(options_.workers > 0, "FairScheduler: zero workers");
  detail::require(options_.quantum > 0, "FairScheduler: zero quantum");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

FairScheduler::~FairScheduler() { stop(); }

Bytes FairScheduler::run(const std::string& tenant, std::uint64_t weight,
                         std::uint64_t max_queued, std::function<Bytes()> fn) {
  Waiter waiter;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw QuotaExceeded("scheduler stopped");
    if (options_.fair) {
      TenantQueue& queue = queues_[tenant];
      if (max_queued != 0 && queue.tasks.size() >= max_queued)
        throw QuotaExceeded("tenant queue full: " + tenant);
      queue.weight = std::max<std::uint64_t>(weight, 1);
      queue.tasks.push_back(Task{std::move(fn), &waiter});
      if (!queue.active) {
        queue.active = true;
        active_.push_back(tenant);
      }
    } else {
      fifo_.push_back(Task{std::move(fn), &waiter});
    }
  }
  work_cv_.notify_one();

  std::unique_lock<std::mutex> wait_lock(waiter.mutex);
  waiter.cv.wait(wait_lock, [&] { return waiter.done; });
  if (waiter.error) std::rethrow_exception(waiter.error);
  return std::move(waiter.result);
}

std::size_t FairScheduler::queued(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!options_.fair) return fifo_.size();
  const auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.tasks.size();
}

bool FairScheduler::next_task(std::unique_lock<std::mutex>& lock, Task& out) {
  while (true) {
    if (stopping_) return false;
    if (!options_.fair) {
      if (!fifo_.empty()) {
        out = std::move(fifo_.front());
        fifo_.pop_front();
        return true;
      }
    } else if (!active_.empty()) {
      // DWRR: visit the current tenant, crediting quantum * weight when
      // its deficit cannot cover a task; serve one task per pick so
      // workers interleave even within one tenant's budget.
      for (std::size_t scanned = 0; scanned < active_.size(); ++scanned) {
        if (rr_pos_ >= active_.size()) rr_pos_ = 0;
        TenantQueue& queue = queues_[active_[rr_pos_]];
        if (queue.tasks.empty()) {
          // Drained while we serviced it: retire from the rotation and
          // reset the deficit so idle tenants never bank credit.
          queue.active = false;
          queue.deficit = 0;
          active_.erase(active_.begin() +
                        static_cast<std::ptrdiff_t>(rr_pos_));
          continue;  // rr_pos_ now points at the next tenant
        }
        if (queue.deficit == 0) queue.deficit = options_.quantum * queue.weight;
        out = std::move(queue.tasks.front());
        queue.tasks.pop_front();
        --queue.deficit;
        if (queue.deficit == 0 || queue.tasks.empty()) {
          // Budget spent (or nothing left): move on next pick.
          if (queue.tasks.empty()) {
            queue.active = false;
            queue.deficit = 0;
            active_.erase(active_.begin() +
                          static_cast<std::ptrdiff_t>(rr_pos_));
          } else {
            ++rr_pos_;
          }
        }
        return true;
      }
    }
    work_cv_.wait(lock);
  }
}

void FairScheduler::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!next_task(lock, task)) return;
    }
    Bytes result;
    std::exception_ptr error;
    try {
      result = task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      // Notify while still holding the waiter mutex: the Waiter lives on
      // run()'s stack, and a spurious wakeup between unlock and notify
      // would let run() observe done, return, and destroy the Waiter
      // under our notify_one. Matches the stop() orphan path.
      const std::lock_guard<std::mutex> lock(task.waiter->mutex);
      task.waiter->result = std::move(result);
      task.waiter->error = error;
      task.waiter->done = true;
      task.waiter->cv.notify_one();
    }
  }
}

void FairScheduler::stop() {
  std::vector<Task> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [id, queue] : queues_) {
      for (Task& task : queue.tasks) orphans.push_back(std::move(task));
      queue.tasks.clear();
      queue.active = false;
      queue.deficit = 0;
    }
    active_.clear();
    for (Task& task : fifo_) orphans.push_back(std::move(task));
    fifo_.clear();
  }
  work_cv_.notify_all();
  for (Task& task : orphans) {
    const std::lock_guard<std::mutex> lock(task.waiter->mutex);
    task.waiter->error =
        std::make_exception_ptr(QuotaExceeded("scheduler stopped"));
    task.waiter->done = true;
    task.waiter->cv.notify_one();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace rsse::tenant
