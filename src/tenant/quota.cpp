#include "tenant/quota.h"

#include <algorithm>
#include <chrono>

#include "util/errors.h"

namespace rsse::tenant {

TokenBucket::TokenBucket(std::uint64_t rate_per_sec, std::uint64_t capacity,
                         std::uint64_t now_ns)
    : rate_(static_cast<double>(rate_per_sec) / 1e9),
      capacity_(static_cast<double>(std::max<std::uint64_t>(
          capacity, rate_per_sec == 0 ? 0 : 1))),
      tokens_(capacity_),
      last_ns_(now_ns) {}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;  // clock went backwards: hold steady
  tokens_ = std::min(capacity_,
                     tokens_ + rate_ * static_cast<double>(now_ns - last_ns_));
  last_ns_ = now_ns;
}

bool TokenBucket::try_take(std::uint64_t now_ns) {
  if (rate_ == 0.0) return true;  // unlimited
  refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::peek(std::uint64_t now_ns) {
  refill(now_ns);
  return tokens_;
}

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kRate:
      return "rate";
    case ShedReason::kInFlight:
      return "in_flight";
    case ShedReason::kQueue:
      return "queue";
  }
  return "unknown";
}

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

AdmissionController::AdmissionController(Clock clock)
    : clock_(clock ? std::move(clock) : Clock(steady_now_ns)) {}

void AdmissionController::configure(const std::string& tenant,
                                    const TenantQuota& quota) {
  const std::lock_guard<std::mutex> map_lock(mutex_);
  auto& state = tenants_[tenant];
  if (!state) state = std::make_shared<State>();
  const std::lock_guard<std::mutex> lock(state->mutex);
  state->quota = quota;
  state->bucket =
      quota.rate_per_sec == 0
          ? nullptr
          : std::make_unique<TokenBucket>(quota.rate_per_sec, quota.burst,
                                          clock_());
}

void AdmissionController::remove(const std::string& tenant) {
  const std::lock_guard<std::mutex> map_lock(mutex_);
  tenants_.erase(tenant);
}

ShedReason AdmissionController::try_admit(const std::string& tenant) {
  std::shared_ptr<State> state;
  {
    const std::lock_guard<std::mutex> map_lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return ShedReason::kNone;  // unconfigured
    state = it->second;
  }
  // The shared_ptr keeps the State alive past the map lock even when a
  // concurrent remove() erases the entry mid-request.
  const std::lock_guard<std::mutex> lock(state->mutex);
  if (state->quota.max_in_flight != 0 &&
      state->in_flight >= state->quota.max_in_flight)
    return ShedReason::kInFlight;
  if (state->bucket && !state->bucket->try_take(clock_()))
    return ShedReason::kRate;
  ++state->in_flight;
  return ShedReason::kNone;
}

void AdmissionController::release(const std::string& tenant) {
  std::shared_ptr<State> state;
  {
    const std::lock_guard<std::mutex> map_lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;  // removed with this request in flight
    state = it->second;
  }
  const std::lock_guard<std::mutex> lock(state->mutex);
  detail::require(state->in_flight > 0,
                  "AdmissionController: release without admit");
  --state->in_flight;
}

std::uint64_t AdmissionController::in_flight(const std::string& tenant) const {
  const std::lock_guard<std::mutex> map_lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  const std::lock_guard<std::mutex> lock(it->second->mutex);
  return it->second->in_flight;
}

}  // namespace rsse::tenant
