#include "tenant/registry.h"

#include "cloud/protocol.h"
#include "util/errors.h"

namespace rsse::tenant {

namespace {

void expect_exhausted(const ByteReader& reader, const char* what) {
  if (!reader.exhausted())
    throw ParseError(std::string(what) + ": trailing bytes");
}

}  // namespace

Bytes TenantQuota::serialize() const {
  Bytes out;
  append_u64(out, rate_per_sec);
  append_u64(out, burst);
  append_u64(out, max_in_flight);
  append_u64(out, weight);
  append_u64(out, max_queued);
  return out;
}

TenantQuota TenantQuota::deserialize(BytesView blob) {
  ByteReader reader(blob);
  TenantQuota quota;
  quota.rate_per_sec = reader.read_u64();
  quota.burst = reader.read_u64();
  quota.max_in_flight = reader.read_u64();
  quota.weight = reader.read_u64();
  quota.max_queued = reader.read_u64();
  if (quota.weight == 0) throw ParseError("TenantQuota: zero weight");
  expect_exhausted(reader, "TenantQuota");
  return quota;
}

void TenantRegistry::add(TenantConfig config) {
  detail::require(cloud::valid_tenant_id(config.id),
                  "TenantRegistry: malformed tenant id: " + config.id);
  detail::require(!tenants_.contains(config.id),
                  "TenantRegistry: duplicate tenant: " + config.id);
  if (config.quota.weight == 0) config.quota.weight = 1;
  tenants_.emplace(config.id, std::move(config));
}

void TenantRegistry::remove(const std::string& id) {
  detail::require(tenants_.erase(id) > 0, "TenantRegistry: unknown tenant: " + id);
}

bool TenantRegistry::contains(const std::string& id) const {
  return tenants_.contains(id);
}

const TenantConfig* TenantRegistry::find(const std::string& id) const {
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : &it->second;
}

void TenantRegistry::set_quota(const std::string& id, TenantQuota quota) {
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantRegistry: unknown tenant: " + id);
  if (quota.weight == 0) quota.weight = 1;
  it->second.quota = quota;
}

void TenantRegistry::set_enabled(const std::string& id, bool enabled) {
  const auto it = tenants_.find(id);
  detail::require(it != tenants_.end(), "TenantRegistry: unknown tenant: " + id);
  it->second.enabled = enabled;
}

std::vector<TenantConfig> TenantRegistry::list() const {
  std::vector<TenantConfig> out;
  out.reserve(tenants_.size());
  for (const auto& [id, config] : tenants_) out.push_back(config);
  return out;  // map order = sorted by id
}

Bytes TenantRegistry::serialize() const {
  Bytes out;
  append_u64(out, tenants_.size());
  for (const auto& [id, config] : tenants_) {  // sorted: canonical bytes
    append_lp(out, to_bytes(id));
    append_lp(out, config.quota.serialize());
    out.push_back(config.enabled ? 1 : 0);
  }
  return out;
}

TenantRegistry TenantRegistry::deserialize(BytesView blob) {
  ByteReader reader(blob);
  TenantRegistry registry;
  const std::uint64_t n = reader.read_count(3);  // 2 LP headers + flag byte
  for (std::uint64_t i = 0; i < n; ++i) {
    TenantConfig config;
    config.id = to_string(reader.read_lp());
    if (!cloud::valid_tenant_id(config.id))
      throw ParseError("TenantRegistry: malformed tenant id");
    config.quota = TenantQuota::deserialize(reader.read_lp());
    const Bytes flag = reader.read(1);
    if (flag[0] > 1) throw ParseError("TenantRegistry: bad enable flag");
    config.enabled = flag[0] == 1;
    if (registry.tenants_.contains(config.id))
      throw ParseError("TenantRegistry: duplicate tenant");
    registry.tenants_.emplace(config.id, std::move(config));
  }
  expect_exhausted(reader, "TenantRegistry");
  return registry;
}

}  // namespace rsse::tenant
