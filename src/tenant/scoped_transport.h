// ScopedTransport: a client-side decorator that pins every call to one
// tenant's namespace.
//
// Existing clients (sse::DataUser, benches, the CLI) speak bare protocol
// types. Wrapping their transport in a ScopedTransport makes them
// tenant-aware without touching a line of client code: every outgoing
// request is enveloped as TenantScopedRequest{tenant, type, payload} and
// sent as kTenantScoped, which a TenantHost (or a cluster coordinator
// fronting tenant-aware shards) unwraps, admits and schedules. kStats is
// wrapped like everything else: the tenant reads ITS OWN server's
// registry, never the host-wide aggregate (that view — every tenant's
// traffic and leakage series — is operator-only at the host).
#pragma once

#include <string>
#include <utility>

#include "cloud/channel.h"
#include "cloud/protocol.h"
#include "util/errors.h"

namespace rsse::tenant {

/// Transport decorator adding one layer of tenancy to every call.
class ScopedTransport final : public cloud::Transport {
 public:
  /// `inner` must outlive this decorator. Throws InvalidArgument on a
  /// malformed tenant id.
  ScopedTransport(cloud::Transport& inner, std::string tenant)
      : inner_(inner), tenant_(std::move(tenant)) {
    detail::require(cloud::valid_tenant_id(tenant_),
                    "ScopedTransport: malformed tenant id: " + tenant_);
  }

  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  using cloud::Transport::call;

  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override {
    const Bytes wrapped = wrap(type, request);
    Bytes response =
        inner_.call(cloud::MessageType::kTenantScoped, wrapped, deadline);
    account(wrapped.size() + 1, response.size());
    return response;
  }

  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline, obs::TraceRecorder* trace,
             std::uint64_t parent_span_id) override {
    const Bytes wrapped = wrap(type, request);
    Bytes response = inner_.call(cloud::MessageType::kTenantScoped, wrapped,
                                 deadline, trace, parent_span_id);
    account(wrapped.size() + 1, response.size());
    return response;
  }

 private:
  [[nodiscard]] Bytes wrap(cloud::MessageType type, BytesView request) const {
    if (type == cloud::MessageType::kTenantScoped)
      throw InvalidArgument("ScopedTransport: request already tenant-scoped");
    cloud::TenantScopedRequest env;
    env.tenant = tenant_;
    env.inner_type = type;
    env.inner_payload = Bytes(request.begin(), request.end());
    return env.serialize();
  }

  cloud::Transport& inner_;
  std::string tenant_;
};

}  // namespace rsse::tenant
