// Wire protocol between DataUser and CloudServer.
//
// Every retrieval mode of the paper is a concrete message pair here, so
// the channel's byte counters measure exactly what the paper's bandwidth
// discussion talks about:
//   * RankedSearch      — RSSE, one round: trapdoor+k -> top-k files.
//   * BasicEntries      — Basic Scheme two-round, round 1: trapdoor ->
//                         all valid (id, E_z(S)) entries.
//   * FetchFiles        — Basic Scheme two-round, round 2: ids -> files.
//   * BasicFiles        — Basic Scheme one-round: trapdoor -> ALL matching
//                         files with their encrypted scores.
//   * Snapshot          — replica repair: full shard state (index, file
//                         blobs, dynamic-overlay segments) from a healthy
//                         replica, used to rebuild a peer whose on-disk
//                         artifacts failed their integrity check.
//   * Stats             — observability: the node's metrics registry as
//                         Prometheus text or a JSON snapshot.
//   * Trace             — observability: the node's retained slow-query
//                         traces (operation, latency, spans).
//   * Update            — dynamics: the owner streams an encrypted
//                         add/delete delta (seg::UpdateDelta) into the
//                         server's segmented overlay.
//   * DeltaBackfill     — anti-entropy: a lagging replica (or the
//                         coordinator's catch-up worker on its behalf)
//                         fetches the WAL suffix after its own sequence
//                         cursor from a healthy peer; doubles as the
//                         extended health probe (empty request reports
//                         the responder's next_seq).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ext/conjunctive.h"
#include "obs/trace.h"
#include "seg/delta.h"
#include "sse/basic_scheme.h"
#include "sse/rsse_scheme.h"
#include "sse/types.h"
#include "util/bytes.h"

namespace rsse::cloud {

/// RPC discriminator.
enum class MessageType : std::uint8_t {
  kRankedSearch = 1,
  kBasicEntries = 2,
  kFetchFiles = 3,
  kBasicFiles = 4,
  kMultiSearch = 5,
  kSnapshot = 6,
  kStats = 7,
  kTrace = 8,
  kUpdate = 9,
  kDeltaBackfill = 10,
  kTenantScoped = 11,
};

/// True when `id` is a well-formed tenant identifier: 1-64 characters
/// from [a-zA-Z0-9_-]. Enforced at the wire (TenantScopedRequest), in
/// the tenant registry, and by the CLI, so a tenant id is always safe to
/// embed in metric labels, file-system paths and AES-GCM associated
/// data without escaping.
[[nodiscard]] bool valid_tenant_id(const std::string& id);

/// Boolean connective of a multi-keyword search.
enum class MultiSearchMode : std::uint8_t {
  kConjunctive = 0,  ///< AND: files matching every keyword (sum-of-OPM rank)
  kDisjunctive = 1,  ///< OR: files matching any keyword (max-of-OPM rank)
};

/// A ranked hit with its encrypted file (RSSE response element).
struct RankedFile {
  sse::FileId id{};
  std::uint64_t opm_score = 0;
  Bytes blob;

  friend bool operator==(const RankedFile&, const RankedFile&) = default;
};

/// A matching file with its user-decryptable score (Basic one-round).
struct BasicFile {
  sse::FileId id{};
  Bytes encrypted_score;
  Bytes blob;

  friend bool operator==(const BasicFile&, const BasicFile&) = default;
};

/// RSSE search request: trapdoor plus the optional top-k (0 = all).
struct RankedSearchRequest {
  sse::Trapdoor trapdoor;
  std::uint64_t top_k = 0;

  [[nodiscard]] Bytes serialize() const;
  static RankedSearchRequest deserialize(BytesView blob);
};

/// RSSE response: ranked files, best first. `partial` is false from a
/// single CloudServer; a cluster coordinator sets it when a whole shard
/// group was unreachable and the merged result may be missing that
/// shard's hits (graceful degradation instead of a failed query).
struct RankedSearchResponse {
  std::vector<RankedFile> files;
  bool partial = false;

  [[nodiscard]] Bytes serialize() const;
  static RankedSearchResponse deserialize(BytesView blob);
};

/// Basic Scheme round-1 request: just the trapdoor.
struct BasicEntriesRequest {
  sse::Trapdoor trapdoor;

  [[nodiscard]] Bytes serialize() const;
  static BasicEntriesRequest deserialize(BytesView blob);
};

/// Basic Scheme round-1 response: every valid posting entry.
struct BasicEntriesResponse {
  std::vector<sse::BasicSearchEntry> entries;

  [[nodiscard]] Bytes serialize() const;
  static BasicEntriesResponse deserialize(BytesView blob);
};

/// Basic Scheme round-2 request: the user's chosen file ids.
struct FetchFilesRequest {
  std::vector<sse::FileId> ids;

  [[nodiscard]] Bytes serialize() const;
  static FetchFilesRequest deserialize(BytesView blob);
};

/// Basic Scheme round-2 response: the requested encrypted files, in
/// request order. Unknown ids yield empty blobs.
struct FetchFilesResponse {
  std::vector<RankedFile> files;  ///< opm_score unused (0)

  [[nodiscard]] Bytes serialize() const;
  static FetchFilesResponse deserialize(BytesView blob);
};

/// Multi-keyword search request: one trapdoor per keyword, the boolean
/// connective, and the optional top-k.
struct MultiSearchRequest {
  ext::ConjunctiveTrapdoor trapdoor;
  MultiSearchMode mode = MultiSearchMode::kConjunctive;
  std::uint64_t top_k = 0;

  [[nodiscard]] Bytes serialize() const;
  static MultiSearchRequest deserialize(BytesView blob);
};

/// Basic Scheme one-round response: all matching files + encrypted scores.
struct BasicFilesResponse {
  std::vector<BasicFile> files;

  [[nodiscard]] Bytes serialize() const;
  static BasicFilesResponse deserialize(BytesView blob);
};

/// Repair request: asks a replica for its full shard state. Empty — the
/// replica serves exactly one shard, so there is nothing to select.
struct SnapshotRequest {
  [[nodiscard]] Bytes serialize() const;
  static SnapshotRequest deserialize(BytesView blob);
};

/// Repair response: the serialized secure index, every encrypted file
/// blob, and the dynamic overlay's sealed segments (memtable frozen
/// last) — enough to rebuild a peer's deployment from scratch WITHOUT
/// dropping applied deltas. All ciphertext the peer already holds.
struct SnapshotResponse {
  Bytes index;  ///< sse::SecureIndex::serialize() bytes
  std::vector<std::pair<std::uint64_t, Bytes>> files;  ///< (file id, blob)
  std::vector<Bytes> segments;  ///< seg::Segment::serialize() bytes, oldest first
  std::uint64_t next_seq = 1;   ///< overlay sequence counter (1 = empty overlay)

  [[nodiscard]] Bytes serialize() const;
  static SnapshotResponse deserialize(BytesView blob);
};

/// Rendering of a kStats reply.
enum class StatsFormat : std::uint8_t {
  kJson = 0,
  kPrometheus = 1,
};

/// Observability request: the node's metrics registry, rendered.
struct StatsRequest {
  StatsFormat format = StatsFormat::kJson;

  [[nodiscard]] Bytes serialize() const;
  static StatsRequest deserialize(BytesView blob);
};

/// Observability response: the rendered registry.
struct StatsResponse {
  std::string text;

  [[nodiscard]] Bytes serialize() const;
  static StatsResponse deserialize(BytesView blob);
};

/// Observability request: the node's retained slow-query traces, newest
/// last. `max_entries` caps the reply (0 = all retained).
struct TraceRequest {
  std::uint64_t max_entries = 0;

  [[nodiscard]] Bytes serialize() const;
  static TraceRequest deserialize(BytesView blob);
};

/// One retained slow query on the wire. `tenant` is empty on a
/// single-owner server; a tenant host's per-tenant servers stamp it so
/// hot-tenant debugging attributes end to end.
struct TraceEntry {
  std::string operation;
  std::string tenant;
  double seconds = 0.0;
  std::vector<obs::Span> spans;
};

/// Observability response: the slow-query log contents.
struct TraceResponse {
  std::vector<TraceEntry> entries;

  [[nodiscard]] Bytes serialize() const;
  static TraceResponse deserialize(BytesView blob);
};

/// Dynamic-index update: one owner-streamed delta. `delta_id`, when
/// non-zero, makes the request idempotent — a server that already applied
/// this id returns its cached response (replayed = true) instead of
/// applying twice, so transport-level retries are safe.
struct UpdateRequest {
  std::uint64_t delta_id = 0;
  seg::UpdateDelta delta;

  [[nodiscard]] Bytes serialize() const;
  static UpdateRequest deserialize(BytesView blob);
};

/// What the server did with the delta.
struct UpdateResponse {
  std::uint64_t entries_applied = 0;
  std::uint64_t tombstones_applied = 0;
  std::uint64_t files_stored = 0;
  std::uint64_t files_erased = 0;
  std::uint64_t sealed_segments = 0;  ///< sealed segments after the apply
  std::uint64_t next_seq = 0;         ///< server sequence counter after the apply
  bool replayed = false;              ///< idempotent replay of an earlier delta

  [[nodiscard]] Bytes serialize() const;
  static UpdateResponse deserialize(BytesView blob);
};

/// Anti-entropy request: the WAL records covering [from_seq, ...) from a
/// peer's retained tail. A from_seq at or past the responder's own
/// next_seq yields an empty reply — which makes
/// DeltaBackfillRequest{~0ull} a cheap "what is your sequence cursor"
/// health probe (ReplicaSet::probe uses exactly that).
struct DeltaBackfillRequest {
  std::uint64_t from_seq = 0;     ///< requester's overlay next_seq
  std::uint64_t max_records = 0;  ///< response batch cap (0 = all retained)

  [[nodiscard]] Bytes serialize() const;
  static DeltaBackfillRequest deserialize(BytesView blob);
};

/// Anti-entropy response: contiguous WAL records starting exactly at
/// from_seq, oldest first, each a seg::WalRecord::serialize() payload the
/// requester replays through its own kUpdate path. `truncated` means the
/// responder's retained tail no longer reaches back to from_seq (a
/// checkpoint dropped those records) — the requester must fall back to a
/// full kSnapshot repair.
struct DeltaBackfillResponse {
  bool truncated = false;
  std::uint64_t next_seq = 0;  ///< responder's overlay sequence cursor
  std::vector<Bytes> records;  ///< seg::WalRecord payloads, ascending seq

  [[nodiscard]] Bytes serialize() const;
  static DeltaBackfillResponse deserialize(BytesView blob);
};

/// Multi-tenant envelope: any inner request, tagged with the tenant id
/// it acts for. A tenant host validates the id and runs admission
/// control BEFORE parsing `inner_payload` (a shed costs one string
/// compare, never a row decryption); the response is the inner type's
/// response, unwrapped. Nesting is rejected at parse time — the
/// envelope carries exactly one layer of tenancy.
struct TenantScopedRequest {
  std::string tenant;
  MessageType inner_type = MessageType::kRankedSearch;
  Bytes inner_payload;

  [[nodiscard]] Bytes serialize() const;
  static TenantScopedRequest deserialize(BytesView blob);
};

}  // namespace rsse::cloud
