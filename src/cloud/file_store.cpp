#include "cloud/file_store.h"

#include "crypto/aes_gcm.h"
#include "crypto/prf.h"
#include "util/errors.h"

namespace rsse::cloud {

FileCrypter::FileCrypter(Bytes file_master) : file_master_(std::move(file_master)) {
  detail::require(file_master_.size() >= 16, "FileCrypter: file master too short");
}

Bytes FileCrypter::file_key(ir::FileId id) const {
  Bytes label;
  append_u64(label, ir::value(id));
  return crypto::Prf(file_master_).derive(label);
}

Bytes FileCrypter::encrypt(const ir::Document& doc) const {
  Bytes plaintext;
  append_lp(plaintext, to_bytes(doc.name));
  append_lp(plaintext, to_bytes(doc.text));
  Bytes aad;
  append_u64(aad, ir::value(doc.id));
  return crypto::aes_gcm_encrypt(file_key(doc.id), plaintext, aad);
}

ir::Document FileCrypter::decrypt(ir::FileId id, BytesView blob) const {
  Bytes aad;
  append_u64(aad, ir::value(id));
  const Bytes plaintext = crypto::aes_gcm_decrypt(file_key(id), blob, aad);
  ByteReader reader(plaintext);
  ir::Document doc;
  doc.id = id;
  doc.name = to_string(reader.read_lp());
  doc.text = to_string(reader.read_lp());
  if (!reader.exhausted()) throw ParseError("FileCrypter: trailing bytes in file blob");
  return doc;
}

std::map<std::uint64_t, Bytes> encrypt_corpus(const FileCrypter& crypter,
                                              const ir::Corpus& corpus) {
  std::map<std::uint64_t, Bytes> blobs;
  for (const ir::Document& doc : corpus.documents())
    blobs.emplace(ir::value(doc.id), crypter.encrypt(doc));
  return blobs;
}

}  // namespace rsse::cloud
