// A keyword-scoped data user: the system-level face of the capability
// extension (ext/capability.h, the paper's §VIII fine-grained access
// control). Unlike DataUser, this role holds NO trapdoor key material —
// only pre-issued per-keyword trapdoors — so its search power is exactly
// the granted allowlist, with revocation by re-issuance.
#pragma once

#include <string_view>
#include <vector>

#include "cloud/channel.h"
#include "cloud/data_user.h"
#include "cloud/file_store.h"
#include "ext/capability.h"
#include "ir/analyzer.h"

namespace rsse::cloud {

/// A user restricted to a capability bundle.
class RestrictedDataUser {
 public:
  /// Binds to an opened bundle, the file-decryption root the owner
  /// granted alongside it, and a transport. `analyzer_options` must match
  /// the owner's pipeline.
  RestrictedDataUser(ext::CapabilityBundle bundle, Bytes file_master,
                     Transport& channel, ir::AnalyzerOptions analyzer_options = {});

  /// True when the (normalized) keyword is within the grant.
  [[nodiscard]] bool authorized_for(std::string_view keyword) const;

  /// RSSE top-k retrieval for a granted keyword. Throws ProtocolError
  /// when the keyword is outside the grant — the user cannot even form
  /// the request.
  std::vector<RetrievedFile> ranked_search(std::string_view keyword, std::size_t top_k);

  /// The granted (normalized) keywords.
  [[nodiscard]] std::vector<std::string> granted_keywords() const {
    return bundle_.keywords();
  }

 private:
  ext::CapabilityBundle bundle_;
  ir::Analyzer analyzer_;
  FileCrypter crypter_;
  Transport& channel_;
};

}  // namespace rsse::cloud
