#include "cloud/channel.h"

namespace rsse::cloud {

Bytes Channel::call(MessageType type, BytesView request, const Deadline& deadline) {
  // In-process dispatch cannot be interrupted mid-handle; enforcing the
  // deadline at the call boundary still bounds retry loops above us.
  deadline.check("Channel::call");
  Bytes response = server_.handle(type, request);
  account(request.size() + 1, response.size());  // +1: the type byte
  return response;
}

}  // namespace rsse::cloud
