#include "cloud/channel.h"

namespace rsse::cloud {

Bytes Channel::call(MessageType type, BytesView request) {
  Bytes response = server_.handle(type, request);
  account(request.size() + 1, response.size());  // +1: the type byte
  return response;
}

}  // namespace rsse::cloud
