#include "cloud/channel.h"

namespace rsse::cloud {

Bytes Channel::call(MessageType type, BytesView request, const Deadline& deadline) {
  // In-process dispatch cannot be interrupted mid-handle; enforcing the
  // deadline at the call boundary still bounds retry loops above us.
  deadline.check("Channel::call");
  Bytes response = server_.handle(type, request);
  account(request.size() + 1, response.size());  // +1: the type byte
  return response;
}

Bytes Channel::call(MessageType type, BytesView request, const Deadline& deadline,
                    obs::TraceRecorder* trace, std::uint64_t parent_span_id) {
  if (trace == nullptr) return call(type, request, deadline);
  deadline.check("Channel::call");
  obs::TraceContext ctx;
  ctx.trace_id = trace->trace_id();
  ctx.parent_span_id = parent_span_id;
  ctx.sampled = true;
  std::vector<obs::Span> spans;
  Bytes response = server_.handle(type, request, ctx, &spans);
  trace->add_all(std::move(spans));
  account(request.size() + 1, response.size());
  return response;
}

}  // namespace rsse::cloud
