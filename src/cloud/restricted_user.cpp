#include "cloud/restricted_user.h"

#include <limits>

#include "cloud/protocol.h"
#include "util/errors.h"

namespace rsse::cloud {

RestrictedDataUser::RestrictedDataUser(ext::CapabilityBundle bundle, Bytes file_master,
                                       Transport& channel,
                                       ir::AnalyzerOptions analyzer_options)
    : bundle_(std::move(bundle)),
      analyzer_(analyzer_options),
      crypter_(std::move(file_master)),
      channel_(channel) {}

bool RestrictedDataUser::authorized_for(std::string_view keyword) const {
  return bundle_.trapdoor_for(keyword, analyzer_).has_value();
}

std::vector<RetrievedFile> RestrictedDataUser::ranked_search(std::string_view keyword,
                                                             std::size_t top_k) {
  const auto trapdoor = bundle_.trapdoor_for(keyword, analyzer_);
  if (!trapdoor)
    throw ProtocolError("RestrictedDataUser: keyword outside the granted capability");
  const RankedSearchRequest req{*trapdoor, top_k};
  const Bytes resp_bytes = channel_.call(MessageType::kRankedSearch, req.serialize());
  const auto resp = RankedSearchResponse::deserialize(resp_bytes);
  std::vector<RetrievedFile> out;
  out.reserve(resp.files.size());
  for (const RankedFile& f : resp.files)
    out.push_back(RetrievedFile{crypter_.decrypt(f.id, f.blob),
                                std::numeric_limits<double>::quiet_NaN()});
  return out;
}

}  // namespace rsse::cloud
