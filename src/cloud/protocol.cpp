#include "cloud/protocol.h"

#include "util/errors.h"

namespace rsse::cloud {

namespace {

void expect_exhausted(const ByteReader& reader, const char* what) {
  if (!reader.exhausted()) throw ParseError(std::string(what) + ": trailing bytes");
}

}  // namespace

Bytes RankedSearchRequest::serialize() const {
  Bytes out;
  append_lp(out, trapdoor.serialize());
  append_u64(out, top_k);
  return out;
}

RankedSearchRequest RankedSearchRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  RankedSearchRequest req;
  req.trapdoor = sse::Trapdoor::deserialize(reader.read_lp());
  req.top_k = reader.read_u64();
  expect_exhausted(reader, "RankedSearchRequest");
  return req;
}

Bytes RankedSearchResponse::serialize() const {
  Bytes out;
  out.push_back(partial ? 1 : 0);
  append_u64(out, files.size());
  for (const RankedFile& f : files) {
    append_u64(out, ir::value(f.id));
    append_u64(out, f.opm_score);
    append_lp(out, f.blob);
  }
  return out;
}

RankedSearchResponse RankedSearchResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  RankedSearchResponse resp;
  const Bytes partial = reader.read(1);
  if (partial[0] > 1) throw ParseError("RankedSearchResponse: bad partial flag");
  resp.partial = partial[0] == 1;
  const std::uint64_t n = reader.read_count(20);  // id + score + LP header
  resp.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RankedFile f;
    f.id = ir::file_id(reader.read_u64());
    f.opm_score = reader.read_u64();
    f.blob = reader.read_lp();
    resp.files.push_back(std::move(f));
  }
  expect_exhausted(reader, "RankedSearchResponse");
  return resp;
}

Bytes BasicEntriesRequest::serialize() const {
  Bytes out;
  append_lp(out, trapdoor.serialize());
  return out;
}

BasicEntriesRequest BasicEntriesRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  BasicEntriesRequest req;
  req.trapdoor = sse::Trapdoor::deserialize(reader.read_lp());
  expect_exhausted(reader, "BasicEntriesRequest");
  return req;
}

Bytes BasicEntriesResponse::serialize() const {
  Bytes out;
  append_u64(out, entries.size());
  for (const sse::BasicSearchEntry& e : entries) {
    append_u64(out, ir::value(e.file));
    append_lp(out, e.encrypted_score);
  }
  return out;
}

BasicEntriesResponse BasicEntriesResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  BasicEntriesResponse resp;
  const std::uint64_t n = reader.read_count(12);  // id + LP header
  resp.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    sse::BasicSearchEntry e;
    e.file = ir::file_id(reader.read_u64());
    e.encrypted_score = reader.read_lp();
    resp.entries.push_back(std::move(e));
  }
  expect_exhausted(reader, "BasicEntriesResponse");
  return resp;
}

Bytes FetchFilesRequest::serialize() const {
  Bytes out;
  append_u64(out, ids.size());
  for (sse::FileId id : ids) append_u64(out, ir::value(id));
  return out;
}

FetchFilesRequest FetchFilesRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  FetchFilesRequest req;
  const std::uint64_t n = reader.read_count(8);  // one id each
  req.ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) req.ids.push_back(ir::file_id(reader.read_u64()));
  expect_exhausted(reader, "FetchFilesRequest");
  return req;
}

Bytes FetchFilesResponse::serialize() const {
  Bytes out;
  append_u64(out, files.size());
  for (const RankedFile& f : files) {
    append_u64(out, ir::value(f.id));
    append_lp(out, f.blob);
  }
  return out;
}

FetchFilesResponse FetchFilesResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  FetchFilesResponse resp;
  const std::uint64_t n = reader.read_count(12);  // id + LP header
  resp.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RankedFile f;
    f.id = ir::file_id(reader.read_u64());
    f.blob = reader.read_lp();
    resp.files.push_back(std::move(f));
  }
  expect_exhausted(reader, "FetchFilesResponse");
  return resp;
}

Bytes MultiSearchRequest::serialize() const {
  Bytes out;
  append_lp(out, trapdoor.serialize());
  out.push_back(static_cast<std::uint8_t>(mode));
  append_u64(out, top_k);
  return out;
}

MultiSearchRequest MultiSearchRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  MultiSearchRequest req;
  req.trapdoor = ext::ConjunctiveTrapdoor::deserialize(reader.read_lp());
  const Bytes mode = reader.read(1);
  if (mode[0] > 1) throw ParseError("MultiSearchRequest: unknown mode");
  req.mode = static_cast<MultiSearchMode>(mode[0]);
  req.top_k = reader.read_u64();
  expect_exhausted(reader, "MultiSearchRequest");
  return req;
}

Bytes SnapshotRequest::serialize() const { return {}; }

SnapshotRequest SnapshotRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  expect_exhausted(reader, "SnapshotRequest");
  return {};
}

Bytes SnapshotResponse::serialize() const {
  Bytes out;
  append_lp(out, index);
  append_u64(out, files.size());
  for (const auto& [id, blob] : files) {
    append_u64(out, id);
    append_lp(out, blob);
  }
  append_u64(out, segments.size());
  for (const Bytes& segment : segments) append_lp(out, segment);
  append_u64(out, next_seq);
  return out;
}

SnapshotResponse SnapshotResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  SnapshotResponse resp;
  resp.index = reader.read_lp();
  const std::uint64_t n = reader.read_count(12);  // id + LP header
  resp.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t id = reader.read_u64();
    resp.files.emplace_back(id, reader.read_lp());
  }
  const std::uint64_t num_segments = reader.read_count(4);  // LP header each
  resp.segments.reserve(num_segments);
  for (std::uint64_t i = 0; i < num_segments; ++i) {
    Bytes segment = reader.read_lp();
    if (segment.empty()) throw ParseError("SnapshotResponse: empty segment");
    resp.segments.push_back(std::move(segment));
  }
  resp.next_seq = reader.read_u64();
  if (resp.next_seq == 0)
    throw ParseError("SnapshotResponse: next_seq 0 is the base index epoch");
  expect_exhausted(reader, "SnapshotResponse");
  return resp;
}

Bytes BasicFilesResponse::serialize() const {
  Bytes out;
  append_u64(out, files.size());
  for (const BasicFile& f : files) {
    append_u64(out, ir::value(f.id));
    append_lp(out, f.encrypted_score);
    append_lp(out, f.blob);
  }
  return out;
}

BasicFilesResponse BasicFilesResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  BasicFilesResponse resp;
  const std::uint64_t n = reader.read_count(16);  // id + two LP headers
  resp.files.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    BasicFile f;
    f.id = ir::file_id(reader.read_u64());
    f.encrypted_score = reader.read_lp();
    f.blob = reader.read_lp();
    resp.files.push_back(std::move(f));
  }
  expect_exhausted(reader, "BasicFilesResponse");
  return resp;
}

Bytes StatsRequest::serialize() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(format));
  return out;
}

StatsRequest StatsRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  StatsRequest req;
  const Bytes fmt = reader.read(1);
  if (fmt[0] > 1) throw ParseError("StatsRequest: bad format");
  req.format = static_cast<StatsFormat>(fmt[0]);
  expect_exhausted(reader, "StatsRequest");
  return req;
}

Bytes StatsResponse::serialize() const {
  Bytes out;
  append_lp(out, to_bytes(text));
  return out;
}

StatsResponse StatsResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  StatsResponse resp;
  resp.text = to_string(reader.read_lp());
  expect_exhausted(reader, "StatsResponse");
  return resp;
}

Bytes TraceRequest::serialize() const {
  Bytes out;
  append_u64(out, max_entries);
  return out;
}

TraceRequest TraceRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  TraceRequest req;
  req.max_entries = reader.read_u64();
  expect_exhausted(reader, "TraceRequest");
  return req;
}

Bytes TraceResponse::serialize() const {
  Bytes out;
  append_u64(out, entries.size());
  for (const TraceEntry& e : entries) {
    append_lp(out, to_bytes(e.operation));
    append_lp(out, to_bytes(e.tenant));
    // Latency as micros keeps the wire format integral (double-free).
    // The cast is UB outside [0, 2^64) and entries can carry wire-derived
    // latencies (snapshot relays), so clamp to the representable range.
    constexpr double kMaxMicros = 18446744073709549568.0;  // largest double < 2^64
    const double micros = e.seconds * 1e6;
    std::uint64_t wire_micros = 0;
    if (micros >= kMaxMicros)
      wire_micros = static_cast<std::uint64_t>(kMaxMicros);
    else if (micros > 0.0)
      wire_micros = static_cast<std::uint64_t>(micros);
    append_u64(out, wire_micros);
    append_lp(out, obs::serialize_spans(e.spans));
  }
  return out;
}

TraceResponse TraceResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  TraceResponse resp;
  const std::uint64_t n = reader.read_count(20);  // 3 LP headers + u64
  resp.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEntry e;
    e.operation = to_string(reader.read_lp());
    e.tenant = to_string(reader.read_lp());
    if (!e.tenant.empty() && !valid_tenant_id(e.tenant))
      throw ParseError("TraceResponse: malformed tenant id");
    e.seconds = static_cast<double>(reader.read_u64()) / 1e6;
    const Bytes spans = reader.read_lp();
    e.spans = obs::deserialize_spans(spans);
    resp.entries.push_back(std::move(e));
  }
  expect_exhausted(reader, "TraceResponse");
  return resp;
}

Bytes UpdateRequest::serialize() const {
  Bytes out;
  append_u64(out, delta_id);
  append_lp(out, delta.serialize());
  return out;
}

UpdateRequest UpdateRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  UpdateRequest req;
  req.delta_id = reader.read_u64();
  const Bytes delta_blob = reader.read_lp();
  req.delta = seg::UpdateDelta::deserialize(delta_blob);
  expect_exhausted(reader, "UpdateRequest");
  return req;
}

Bytes UpdateResponse::serialize() const {
  Bytes out;
  append_u64(out, entries_applied);
  append_u64(out, tombstones_applied);
  append_u64(out, files_stored);
  append_u64(out, files_erased);
  append_u64(out, sealed_segments);
  append_u64(out, next_seq);
  out.push_back(replayed ? 1 : 0);
  return out;
}

UpdateResponse UpdateResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  UpdateResponse resp;
  resp.entries_applied = reader.read_u64();
  resp.tombstones_applied = reader.read_u64();
  resp.files_stored = reader.read_u64();
  resp.files_erased = reader.read_u64();
  resp.sealed_segments = reader.read_u64();
  resp.next_seq = reader.read_u64();
  const Bytes replayed = reader.read(1);
  if (replayed[0] > 1) throw ParseError("UpdateResponse: bad replayed flag");
  resp.replayed = replayed[0] == 1;
  expect_exhausted(reader, "UpdateResponse");
  return resp;
}

Bytes DeltaBackfillRequest::serialize() const {
  Bytes out;
  append_u64(out, from_seq);
  append_u64(out, max_records);
  return out;
}

DeltaBackfillRequest DeltaBackfillRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  DeltaBackfillRequest req;
  req.from_seq = reader.read_u64();
  req.max_records = reader.read_u64();
  expect_exhausted(reader, "DeltaBackfillRequest");
  return req;
}

Bytes DeltaBackfillResponse::serialize() const {
  Bytes out;
  out.push_back(truncated ? 1 : 0);
  append_u64(out, next_seq);
  append_u64(out, records.size());
  for (const Bytes& record : records) append_lp(out, record);
  return out;
}

DeltaBackfillResponse DeltaBackfillResponse::deserialize(BytesView blob) {
  ByteReader reader(blob);
  DeltaBackfillResponse resp;
  const Bytes truncated = reader.read(1);
  if (truncated[0] > 1)
    throw ParseError("DeltaBackfillResponse: bad truncated flag");
  resp.truncated = truncated[0] == 1;
  resp.next_seq = reader.read_u64();
  // A sequence cursor below 1 never occurs on a live server (1 is the
  // empty overlay) — reject it like SnapshotResponse does.
  if (resp.next_seq == 0)
    throw ParseError("DeltaBackfillResponse: zero next_seq");
  const std::uint64_t n = reader.read_count(4);  // one LP header each
  resp.records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes record = reader.read_lp();
    if (record.empty())
      throw ParseError("DeltaBackfillResponse: empty backfill record");
    resp.records.push_back(std::move(record));
  }
  expect_exhausted(reader, "DeltaBackfillResponse");
  return resp;
}

bool valid_tenant_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Bytes TenantScopedRequest::serialize() const {
  Bytes out;
  append_lp(out, to_bytes(tenant));
  out.push_back(static_cast<std::uint8_t>(inner_type));
  append_lp(out, inner_payload);
  return out;
}

TenantScopedRequest TenantScopedRequest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  TenantScopedRequest req;
  req.tenant = to_string(reader.read_lp());
  if (!valid_tenant_id(req.tenant))
    throw ParseError("TenantScopedRequest: malformed tenant id");
  const Bytes type = reader.read(1);
  // One layer of tenancy only: a nested envelope (or an out-of-range
  // discriminator) is malformed, not merely unroutable.
  if (type[0] < static_cast<std::uint8_t>(MessageType::kRankedSearch) ||
      type[0] >= static_cast<std::uint8_t>(MessageType::kTenantScoped))
    throw ParseError("TenantScopedRequest: bad inner message type");
  req.inner_type = static_cast<MessageType>(type[0]);
  req.inner_payload = reader.read_lp();
  expect_exhausted(reader, "TenantScopedRequest");
  return req;
}

}  // namespace rsse::cloud
