// The accounted user<->server channel.
//
// Every call crosses the channel as serialized bytes and increments the
// round-trip counter, so the Basic-vs-RSSE ablation can report exactly
// the two costs the paper argues about: bandwidth (Sec. I: "unnecessary
// network traffic ... in today's pay-as-you-use cloud paradigm") and the
// Basic Scheme's extra round trip (Sec. III-C discussion).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "cloud/handler.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace rsse::cloud {

/// Cumulative traffic statistics of one channel (a snapshot — the live
/// counters inside Transport are atomics shared by concurrent callers).
struct ChannelStats {
  std::uint64_t round_trips = 0;
  std::uint64_t bytes_up = 0;    ///< user -> server (requests)
  std::uint64_t bytes_down = 0;  ///< server -> user (responses)

  /// Total bytes in both directions.
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_up + bytes_down; }
};

/// Abstract user->server transport. DataUser talks through this, so the
/// same client code runs over the in-process channel (below), a real TCP
/// connection (net/remote_channel.h), a whole cluster
/// (cluster/coordinator.h), or a fault-injecting decorator (fault/).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Performs one RPC: callers hand in the already-serialized request
  /// and receive the serialized response. Implementations must count
  /// the traffic via account() and honour the deadline — when the budget
  /// runs out mid-call they throw DeadlineExceeded instead of blocking.
  virtual Bytes call(MessageType type, BytesView request, const Deadline& deadline) = 0;

  /// One RPC under this transport's default per-call budget (see
  /// set_call_timeout; unlimited unless configured).
  Bytes call(MessageType type, BytesView request) {
    return call(type, request, default_deadline());
  }

  /// Traced RPC: like call(), but spans recorded along the way (locally
  /// and by trace-capable peers) land in `*trace`, parented to
  /// `parent_span_id`. The base implementation ignores the trace and
  /// forwards to the untraced call — a transport that cannot propagate
  /// context still works, it just leaves a gap in the trace. Transports
  /// that can (Channel, net::RemoteChannel, cluster::ClusterCoordinator,
  /// cluster::ReplicaSet callers, fault decorators) override this.
  virtual Bytes call(MessageType type, BytesView request, const Deadline& deadline,
                     obs::TraceRecorder* trace, std::uint64_t parent_span_id) {
    (void)trace;
    (void)parent_span_id;
    return call(type, request, deadline);
  }

  /// Traced RPC under the default per-call budget.
  Bytes call(MessageType type, BytesView request, obs::TraceRecorder* trace,
             std::uint64_t parent_span_id = 0) {
    return call(type, request, default_deadline(), trace, parent_span_id);
  }

  /// Sets the default budget applied to every call made without an
  /// explicit deadline. Zero (the default) means unlimited — the
  /// pre-deadline blocking behaviour.
  void set_call_timeout(std::chrono::milliseconds timeout) {
    call_timeout_ms_.store(timeout.count(), std::memory_order_relaxed);
  }

  /// Snapshot of the counters since construction or the last reset().
  [[nodiscard]] ChannelStats stats() const {
    ChannelStats s;
    s.round_trips = round_trips_.load(std::memory_order_relaxed);
    s.bytes_up = bytes_up_.load(std::memory_order_relaxed);
    s.bytes_down = bytes_down_.load(std::memory_order_relaxed);
    return s;
  }

  /// Zeroes the counters (per-experiment accounting).
  void reset() {
    round_trips_.store(0, std::memory_order_relaxed);
    bytes_up_.store(0, std::memory_order_relaxed);
    bytes_down_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Records one round trip of `up` request bytes and `down` response
  /// bytes. Safe to call from concurrent threads (a ReplicaSet advertises
  /// concurrent calls across replicas; the coordinator is shared by many
  /// client threads).
  void account(std::uint64_t up, std::uint64_t down) {
    bytes_up_.fetch_add(up, std::memory_order_relaxed);
    bytes_down_.fetch_add(down, std::memory_order_relaxed);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] Deadline default_deadline() const {
    const auto ms = call_timeout_ms_.load(std::memory_order_relaxed);
    return ms > 0 ? Deadline::after(std::chrono::milliseconds(ms)) : Deadline();
  }

  std::atomic<std::uint64_t> round_trips_{0};
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
  std::atomic<std::int64_t> call_timeout_ms_{0};
};

/// The in-process transport: directly invokes a serving endpoint (a bare
/// CloudServer or a tenant::TenantHost), counting every byte that would
/// cross the wire.
class Channel final : public Transport {
 public:
  explicit Channel(const RequestHandler& server) : server_(server) {}

  using Transport::call;
  Bytes call(MessageType type, BytesView request, const Deadline& deadline) override;
  Bytes call(MessageType type, BytesView request, const Deadline& deadline,
             obs::TraceRecorder* trace, std::uint64_t parent_span_id) override;

 private:
  const RequestHandler& server_;
};

}  // namespace rsse::cloud
