// The accounted user<->server channel.
//
// Every call crosses the channel as serialized bytes and increments the
// round-trip counter, so the Basic-vs-RSSE ablation can report exactly
// the two costs the paper argues about: bandwidth (Sec. I: "unnecessary
// network traffic ... in today's pay-as-you-use cloud paradigm") and the
// Basic Scheme's extra round trip (Sec. III-C discussion).
#pragma once

#include <cstdint>

#include "cloud/cloud_server.h"

namespace rsse::cloud {

/// Cumulative traffic statistics of one channel.
struct ChannelStats {
  std::uint64_t round_trips = 0;
  std::uint64_t bytes_up = 0;    ///< user -> server (requests)
  std::uint64_t bytes_down = 0;  ///< server -> user (responses)

  /// Total bytes in both directions.
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_up + bytes_down; }
};

/// Abstract user->server transport. DataUser talks through this, so the
/// same client code runs over the in-process channel (below) or a real
/// TCP connection (net/remote_channel.h).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Performs one RPC: callers hand in the already-serialized request
  /// and receive the serialized response. Implementations must count
  /// the traffic via account().
  virtual Bytes call(MessageType type, BytesView request) = 0;

  /// Counters since construction or the last reset().
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

  /// Zeroes the counters (per-experiment accounting).
  void reset() { stats_ = {}; }

 protected:
  /// Records one round trip of `up` request bytes and `down` response
  /// bytes.
  void account(std::uint64_t up, std::uint64_t down) {
    stats_.bytes_up += up;
    stats_.bytes_down += down;
    ++stats_.round_trips;
  }

 private:
  ChannelStats stats_;
};

/// The in-process transport: directly invokes a CloudServer instance,
/// counting every byte that would cross the wire.
class Channel final : public Transport {
 public:
  explicit Channel(const CloudServer& server) : server_(server) {}

  Bytes call(MessageType type, BytesView request) override;

 private:
  const CloudServer& server_;
};

}  // namespace rsse::cloud
