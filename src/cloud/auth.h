// User authorization (Sec. II-A: "we assume the authorization between the
// data owner and users is appropriately done"; Setup: "distribute the
// necessary secret parameters to a group of authorized users by employing
// off-the-shelf public key cryptography or ... broadcast encryption").
//
// We model the distribution concretely but simply: each enrolled user
// shares a personal 32-byte key with the owner (standing in for the PKI
// channel), and the owner seals a credential bundle to that key with
// AES-GCM. The bundle deliberately contains only what a *user* needs —
// the trapdoor keys, the Basic-Scheme score key, and the file master —
// never the OPM key root z, so a user cannot recompute score mappings.
#pragma once

#include <string>
#include <unordered_map>

#include "sse/keys.h"
#include "util/bytes.h"

namespace rsse::cloud {

/// What an authorized user holds.
struct UserCredentials {
  Bytes x;           ///< trapdoor label key
  Bytes y;           ///< trapdoor list key root
  Bytes score_key;   ///< Basic Scheme score decryption key (derived from z)
  Bytes file_master; ///< file decryption root
  sse::SystemParams params;

  [[nodiscard]] Bytes serialize() const;
  static UserCredentials deserialize(BytesView blob);

  friend bool operator==(const UserCredentials&, const UserCredentials&) = default;
};

/// Owner-side enrollment service.
class AuthorizationService {
 public:
  /// Builds the user-facing credential bundle from the owner's master key
  /// and file master (score_key is derived, z itself never leaves).
  static UserCredentials make_credentials(const sse::MasterKey& key,
                                          const Bytes& file_master);

  /// Seals credentials to a user's personal key (AES-GCM, the user name
  /// as associated data).
  static Bytes issue(BytesView user_key, std::string_view user_name,
                     const UserCredentials& credentials);

  /// User side: opens a sealed bundle. Throws CryptoError on tampering or
  /// a wrong key.
  static UserCredentials open(BytesView user_key, std::string_view user_name,
                              BytesView sealed);

  /// Tenant-scoped sealing: binds the bundle to a (tenant, user) pair —
  /// AES-GCM associated data is tenant || 0x1f || user name. A tenant id
  /// is [a-zA-Z0-9_-] only (never 0x1f), so the pair encoding is
  /// injective: a credential issued inside one tenant's namespace can
  /// never open as another tenant's, nor as a tenant-less bundle.
  /// Throws InvalidArgument on a malformed tenant id.
  static Bytes issue(BytesView user_key, std::string_view tenant,
                     std::string_view user_name,
                     const UserCredentials& credentials);

  /// Opens a tenant-scoped bundle. Throws CryptoError on tampering, a
  /// wrong key, or a tenant/user mismatch.
  static UserCredentials open(BytesView user_key, std::string_view tenant,
                              std::string_view user_name, BytesView sealed);
};

}  // namespace rsse::cloud
