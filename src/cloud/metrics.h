// Server-side observability: cheap atomic counters the CloudServer
// increments per request, plus per-request-type service-time histograms,
// with a consistent snapshot for operators, benches and tests.
// Deliberately content-free — counting requests, bytes and times reveals
// nothing the honest-but-curious server doesn't already see.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "util/histogram.h"

namespace rsse::cloud {

/// Percentiles of one request type's service time, in seconds.
struct LatencyStats {
  std::uint64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// A mutex-guarded latency histogram. Samples are binned as log10(seconds)
/// over [100 ns, 100 s] with 180 containers, giving ~5% relative
/// resolution across nine decades — wide enough for a cached in-process
/// lookup and a cross-shard scatter-gather alike. Shared by the single
/// server's ServerMetrics and the cluster coordinator's per-shard metrics
/// so both report the same observability surface.
class LatencyRecorder {
 public:
  LatencyRecorder() : histogram_(kLogLo, kLogHi, kBins) {}

  /// Records one service time.
  void record(double seconds) {
    const double log_s = std::log10(std::max(seconds, 1e-9));
    const std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(log_s);
  }

  /// p50/p95/p99 of everything recorded so far.
  [[nodiscard]] LatencyStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    LatencyStats s;
    s.count = histogram_.total();
    if (s.count > 0) {
      s.p50_seconds = std::pow(10.0, histogram_.quantile(0.50));
      s.p95_seconds = std::pow(10.0, histogram_.quantile(0.95));
      s.p99_seconds = std::pow(10.0, histogram_.quantile(0.99));
    }
    return s;
  }

  /// Drops all samples.
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    histogram_ = Histogram(kLogLo, kLogHi, kBins);
  }

 private:
  static constexpr double kLogLo = -7.0;  // 100 ns
  static constexpr double kLogHi = 2.0;   // 100 s
  static constexpr std::size_t kBins = 180;

  mutable std::mutex mutex_;
  Histogram histogram_;
};

/// A point-in-time copy of the counters.
struct MetricsSnapshot {
  std::uint64_t ranked_searches = 0;
  std::uint64_t basic_entry_searches = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t basic_file_searches = 0;
  std::uint64_t snapshot_requests = 0;
  std::uint64_t files_returned = 0;
  std::uint64_t result_bytes = 0;

  /// Service-time percentiles per request type (counts include only
  /// requests whose handler timed itself, i.e. everything through
  /// CloudServer::handle). Multi-keyword searches count into
  /// ranked_searches above but get their own latency series here.
  LatencyStats ranked_search_latency;
  LatencyStats basic_entries_latency;
  LatencyStats fetch_latency;
  LatencyStats basic_files_latency;
  LatencyStats multi_search_latency;

  /// Total requests across all four types.
  [[nodiscard]] std::uint64_t total_requests() const {
    return ranked_searches + basic_entry_searches + fetch_requests +
           basic_file_searches;
  }
};

/// The live counters (one instance per CloudServer).
class ServerMetrics {
 public:
  /// Which latency series a handle() call belongs to.
  enum class RequestKind : std::uint8_t {
    kRankedSearch,
    kBasicEntries,
    kFetchFiles,
    kBasicFiles,
    kMultiSearch,
  };

  void record_ranked_search(std::uint64_t files, std::uint64_t bytes) {
    ++ranked_searches_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }
  void record_basic_entries(std::uint64_t bytes) {
    ++basic_entry_searches_;
    result_bytes_ += bytes;
  }
  void record_fetch(std::uint64_t files, std::uint64_t bytes) {
    ++fetch_requests_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }
  void record_basic_files(std::uint64_t files, std::uint64_t bytes) {
    ++basic_file_searches_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }
  void record_snapshot(std::uint64_t bytes) {
    ++snapshot_requests_;
    result_bytes_ += bytes;
  }

  /// Adds one service-time sample to the request type's series.
  void record_latency(RequestKind kind, double seconds) {
    latency_of(kind).record(seconds);
  }

  /// Copies the counters (each read atomically; the snapshot as a whole
  /// is weakly consistent, which is fine for monitoring).
  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.ranked_searches = ranked_searches_.load();
    s.basic_entry_searches = basic_entry_searches_.load();
    s.fetch_requests = fetch_requests_.load();
    s.basic_file_searches = basic_file_searches_.load();
    s.snapshot_requests = snapshot_requests_.load();
    s.files_returned = files_returned_.load();
    s.result_bytes = result_bytes_.load();
    s.ranked_search_latency = ranked_latency_.snapshot();
    s.basic_entries_latency = basic_entries_latency_.snapshot();
    s.fetch_latency = fetch_latency_.snapshot();
    s.basic_files_latency = basic_files_latency_.snapshot();
    s.multi_search_latency = multi_search_latency_.snapshot();
    return s;
  }

  /// Zeroes every counter and latency series.
  void reset() {
    ranked_searches_ = 0;
    basic_entry_searches_ = 0;
    fetch_requests_ = 0;
    basic_file_searches_ = 0;
    snapshot_requests_ = 0;
    files_returned_ = 0;
    result_bytes_ = 0;
    ranked_latency_.reset();
    basic_entries_latency_.reset();
    fetch_latency_.reset();
    basic_files_latency_.reset();
    multi_search_latency_.reset();
  }

 private:
  [[nodiscard]] LatencyRecorder& latency_of(RequestKind kind) {
    switch (kind) {
      case RequestKind::kRankedSearch: return ranked_latency_;
      case RequestKind::kBasicEntries: return basic_entries_latency_;
      case RequestKind::kFetchFiles: return fetch_latency_;
      case RequestKind::kBasicFiles: return basic_files_latency_;
      case RequestKind::kMultiSearch: return multi_search_latency_;
    }
    return ranked_latency_;  // unreachable
  }

  std::atomic<std::uint64_t> ranked_searches_{0};
  std::atomic<std::uint64_t> basic_entry_searches_{0};
  std::atomic<std::uint64_t> fetch_requests_{0};
  std::atomic<std::uint64_t> basic_file_searches_{0};
  std::atomic<std::uint64_t> snapshot_requests_{0};
  std::atomic<std::uint64_t> files_returned_{0};
  std::atomic<std::uint64_t> result_bytes_{0};
  LatencyRecorder ranked_latency_;
  LatencyRecorder basic_entries_latency_;
  LatencyRecorder fetch_latency_;
  LatencyRecorder basic_files_latency_;
  LatencyRecorder multi_search_latency_;
};

}  // namespace rsse::cloud
