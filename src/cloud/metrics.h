// Server-side observability: cheap atomic counters the CloudServer
// increments per request, with a consistent snapshot for operators,
// benches and tests. Deliberately content-free — counting requests and
// bytes reveals nothing the honest-but-curious server doesn't already
// see.
#pragma once

#include <atomic>
#include <cstdint>

namespace rsse::cloud {

/// A point-in-time copy of the counters.
struct MetricsSnapshot {
  std::uint64_t ranked_searches = 0;
  std::uint64_t basic_entry_searches = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t basic_file_searches = 0;
  std::uint64_t files_returned = 0;
  std::uint64_t result_bytes = 0;

  /// Total requests across all four types.
  [[nodiscard]] std::uint64_t total_requests() const {
    return ranked_searches + basic_entry_searches + fetch_requests +
           basic_file_searches;
  }
};

/// The live counters (one instance per CloudServer).
class ServerMetrics {
 public:
  void record_ranked_search(std::uint64_t files, std::uint64_t bytes) {
    ++ranked_searches_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }
  void record_basic_entries(std::uint64_t bytes) {
    ++basic_entry_searches_;
    result_bytes_ += bytes;
  }
  void record_fetch(std::uint64_t files, std::uint64_t bytes) {
    ++fetch_requests_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }
  void record_basic_files(std::uint64_t files, std::uint64_t bytes) {
    ++basic_file_searches_;
    files_returned_ += files;
    result_bytes_ += bytes;
  }

  /// Copies the counters (each read atomically; the snapshot as a whole
  /// is weakly consistent, which is fine for monitoring).
  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.ranked_searches = ranked_searches_.load();
    s.basic_entry_searches = basic_entry_searches_.load();
    s.fetch_requests = fetch_requests_.load();
    s.basic_file_searches = basic_file_searches_.load();
    s.files_returned = files_returned_.load();
    s.result_bytes = result_bytes_.load();
    return s;
  }

  /// Zeroes every counter.
  void reset() {
    ranked_searches_ = 0;
    basic_entry_searches_ = 0;
    fetch_requests_ = 0;
    basic_file_searches_ = 0;
    files_returned_ = 0;
    result_bytes_ = 0;
  }

 private:
  std::atomic<std::uint64_t> ranked_searches_{0};
  std::atomic<std::uint64_t> basic_entry_searches_{0};
  std::atomic<std::uint64_t> fetch_requests_{0};
  std::atomic<std::uint64_t> basic_file_searches_{0};
  std::atomic<std::uint64_t> files_returned_{0};
  std::atomic<std::uint64_t> result_bytes_{0};
};

}  // namespace rsse::cloud
