// Server-side observability, backed by the unified obs::MetricsRegistry.
//
// ServerMetrics keeps the snapshot API the benches and tests were built
// on (MetricsSnapshot, per-request-type LatencyStats) but every number
// now lives in registry instruments under the rsse_server_* family
// prefix, so the same counters that tests assert on are what a
// Prometheus scrape of the live server exports — one source of truth,
// two read paths. Deliberately content-free: counting requests, bytes
// and times reveals nothing the honest-but-curious server doesn't
// already see.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace rsse::cloud {

/// Percentiles of one request type's service time, in seconds.
struct LatencyStats {
  std::uint64_t count = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// A point-in-time copy of the counters.
struct MetricsSnapshot {
  std::uint64_t ranked_searches = 0;
  std::uint64_t basic_entry_searches = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t basic_file_searches = 0;
  std::uint64_t snapshot_requests = 0;
  std::uint64_t updates = 0;
  std::uint64_t update_entries = 0;
  std::uint64_t update_tombstones = 0;
  std::uint64_t files_returned = 0;
  std::uint64_t result_bytes = 0;

  /// Service-time percentiles per request type (counts include only
  /// requests whose handler timed itself, i.e. everything through
  /// CloudServer::handle). Multi-keyword searches count into
  /// ranked_searches above but get their own latency series here.
  LatencyStats ranked_search_latency;
  LatencyStats basic_entries_latency;
  LatencyStats fetch_latency;
  LatencyStats basic_files_latency;
  LatencyStats multi_search_latency;
  LatencyStats update_latency;

  /// Total requests across all four types.
  [[nodiscard]] std::uint64_t total_requests() const {
    return ranked_searches + basic_entry_searches + fetch_requests +
           basic_file_searches;
  }
};

/// The live counters (one instance per CloudServer). Registry families:
///   rsse_server_requests_total{type=...}          counter
///   rsse_server_request_latency_seconds{type=...} histogram
///   rsse_server_files_returned_total              counter
///   rsse_server_result_bytes_total                counter
///   rsse_server_rank_cache_hits_total             counter
///   rsse_server_rank_cache_misses_total           counter
///   rsse_server_stored_bytes                      gauge
///   rsse_server_index_rows                        gauge
///   rsse_server_slow_queries_total                counter
///   rsse_server_update_entries_total              counter
///   rsse_server_update_tombstones_total           counter
///   rsse_seg_sealed_segments                      gauge
///   rsse_seg_memtable_entries                     gauge
///   rsse_seg_tombstoned_files                     gauge
/// (net/server.h adds rsse_server_bytes_in_total / bytes_out_total /
/// connections_total / active_connections to the same registry.)
class ServerMetrics {
 public:
  /// Which latency series a handle() call belongs to.
  enum class RequestKind : std::uint8_t {
    kRankedSearch,
    kBasicEntries,
    kFetchFiles,
    kBasicFiles,
    kMultiSearch,
    kUpdate,
  };

  ServerMetrics();

  void record_ranked_search(std::uint64_t files, std::uint64_t bytes);
  void record_basic_entries(std::uint64_t bytes);
  void record_fetch(std::uint64_t files, std::uint64_t bytes);
  void record_basic_files(std::uint64_t files, std::uint64_t bytes);
  void record_multi_search(std::uint64_t files, std::uint64_t bytes);
  void record_snapshot(std::uint64_t bytes);
  void record_rank_cache(bool hit);
  void record_slow_query();

  /// One applied (non-replayed) update delta.
  void record_update(std::uint64_t entries, std::uint64_t tombstones);

  /// Updates the segmented-overlay gauges (called after each apply and
  /// after compactions).
  void set_segment_state(std::uint64_t sealed_segments,
                         std::uint64_t memtable_entries,
                         std::uint64_t tombstoned_files);

  /// Adds one service-time sample to the request type's series.
  void record_latency(RequestKind kind, double seconds);

  /// Updates the storage-footprint gauges (called on store/update).
  void set_storage(std::uint64_t stored_bytes, std::uint64_t index_rows);

  /// Copies the counters (each read atomically; the snapshot as a whole
  /// is weakly consistent, which is fine for monitoring).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Rank-cache counters (mirrored by CloudServer accessors).
  [[nodiscard]] std::uint64_t rank_cache_hits() const { return cache_hits_->value(); }
  [[nodiscard]] std::uint64_t rank_cache_misses() const { return cache_misses_->value(); }

  /// Zeroes every counter and latency series.
  void reset();

  /// The backing registry — what the scrape endpoint and the kStats
  /// handler render. Mutable by design: recording into metrics does not
  /// logically mutate the server.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return registry_; }

 private:
  [[nodiscard]] obs::HistogramMetric& latency_of(RequestKind kind) const;
  [[nodiscard]] static LatencyStats stats_of(const obs::HistogramMetric& h);

  mutable obs::MetricsRegistry registry_;
  // Cached instrument references (stable for the registry's lifetime).
  obs::Counter* ranked_searches_;
  obs::Counter* basic_entry_searches_;
  obs::Counter* fetch_requests_;
  obs::Counter* basic_file_searches_;
  obs::Counter* multi_searches_;
  obs::Counter* snapshot_requests_;
  obs::Counter* updates_;
  obs::Counter* update_entries_;
  obs::Counter* update_tombstones_;
  obs::Counter* files_returned_;
  obs::Counter* result_bytes_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* slow_queries_;
  obs::Gauge* stored_bytes_;
  obs::Gauge* index_rows_;
  obs::Gauge* sealed_segments_;
  obs::Gauge* memtable_entries_;
  obs::Gauge* tombstoned_files_;
  obs::HistogramMetric* ranked_latency_;
  obs::HistogramMetric* basic_entries_latency_;
  obs::HistogramMetric* fetch_latency_;
  obs::HistogramMetric* basic_files_latency_;
  obs::HistogramMetric* multi_search_latency_;
  obs::HistogramMetric* update_latency_;
};

}  // namespace rsse::cloud
