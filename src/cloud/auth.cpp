#include "cloud/auth.h"

#include "cloud/protocol.h"
#include "crypto/aes_gcm.h"
#include "crypto/prf.h"
#include "util/errors.h"

namespace rsse::cloud {

namespace {

Bytes tenant_aad(std::string_view tenant, std::string_view user_name) {
  detail::require(valid_tenant_id(std::string(tenant)),
                  "AuthorizationService: malformed tenant id");
  Bytes aad = to_bytes(tenant);
  aad.push_back(0x1f);  // unit separator: outside the tenant-id alphabet
  const Bytes user = to_bytes(user_name);
  aad.insert(aad.end(), user.begin(), user.end());
  return aad;
}

}  // namespace

Bytes UserCredentials::serialize() const {
  Bytes out;
  append_lp(out, x);
  append_lp(out, y);
  append_lp(out, score_key);
  append_lp(out, file_master);
  append_u64(out, params.key_bits);
  append_u64(out, params.p_bits);
  append_u64(out, params.score_levels);
  append_u64(out, params.range_bits);
  return out;
}

UserCredentials UserCredentials::deserialize(BytesView blob) {
  ByteReader reader(blob);
  UserCredentials c;
  c.x = reader.read_lp();
  c.y = reader.read_lp();
  c.score_key = reader.read_lp();
  c.file_master = reader.read_lp();
  c.params.key_bits = reader.read_u64();
  c.params.p_bits = reader.read_u64();
  c.params.score_levels = reader.read_u64();
  c.params.range_bits = reader.read_u64();
  if (!reader.exhausted()) throw ParseError("UserCredentials: trailing bytes");
  return c;
}

UserCredentials AuthorizationService::make_credentials(const sse::MasterKey& key,
                                                       const Bytes& file_master) {
  UserCredentials c;
  c.x = key.x;
  c.y = key.y;
  // Mirrors BasicScheme::score_key(): E_z's concrete key, not z itself.
  c.score_key = crypto::Prf(key.z).derive("score-key");
  c.file_master = file_master;
  c.params = key.params;
  return c;
}

Bytes AuthorizationService::issue(BytesView user_key, std::string_view user_name,
                                  const UserCredentials& credentials) {
  return crypto::aes_gcm_encrypt(user_key, credentials.serialize(), to_bytes(user_name));
}

UserCredentials AuthorizationService::open(BytesView user_key, std::string_view user_name,
                                           BytesView sealed) {
  const Bytes plain = crypto::aes_gcm_decrypt(user_key, sealed, to_bytes(user_name));
  return UserCredentials::deserialize(plain);
}

Bytes AuthorizationService::issue(BytesView user_key, std::string_view tenant,
                                  std::string_view user_name,
                                  const UserCredentials& credentials) {
  return crypto::aes_gcm_encrypt(user_key, credentials.serialize(),
                                 tenant_aad(tenant, user_name));
}

UserCredentials AuthorizationService::open(BytesView user_key,
                                           std::string_view tenant,
                                           std::string_view user_name,
                                           BytesView sealed) {
  const Bytes plain =
      crypto::aes_gcm_decrypt(user_key, sealed, tenant_aad(tenant, user_name));
  return UserCredentials::deserialize(plain);
}

}  // namespace rsse::cloud
