// The authorized data user role (Sec. II-A): generates trapdoors from its
// credential bundle, talks to the server over an accounted channel, and
// decrypts returned files. One method per retrieval protocol, so benches
// and tests can compare the paper's three modes side by side:
//
//   ranked_search          RSSE: 1 round, top-k files, server-ranked.
//   basic_search_one_round Basic: 1 round, ALL matching files, user ranks
//                          and keeps k (the bandwidth-heavy mode).
//   basic_search_two_round Basic: 2 rounds — entries, user ranks, then
//                          fetches exactly k files (latency-heavy mode).
#pragma once

#include <string_view>
#include <vector>

#include "cloud/auth.h"
#include "cloud/channel.h"
#include "cloud/file_store.h"
#include "ir/document.h"
#include "obs/trace.h"
#include "sse/trapdoor_gen.h"

namespace rsse::cloud {

/// One retrieved, decrypted file with the score information the user has
/// in the given mode (the real relevance score in the Basic modes; RSSE
/// users see ranks only, score is NaN there).
struct RetrievedFile {
  ir::Document document;
  double score = 0.0;
};

/// The user's end of the system.
class DataUser {
 public:
  /// Binds to an opened credential bundle and a channel to the server.
  /// `analyzer_options` must match the owner's (part of the public system
  /// parameters in deployment).
  DataUser(UserCredentials credentials, Transport& channel,
           ir::AnalyzerOptions analyzer_options = {});

  /// RSSE retrieval: top-k (0 = all matching), ranked best-first by the
  /// server. The user never sees relevance scores — `score` is NaN.
  std::vector<RetrievedFile> ranked_search(std::string_view keyword, std::size_t top_k);

  /// Basic Scheme, one round: server returns every matching file; the
  /// user decrypts scores, ranks, keeps k (0 = all).
  std::vector<RetrievedFile> basic_search_one_round(std::string_view keyword,
                                                    std::size_t top_k);

  /// Basic Scheme, two rounds: entries first, rank locally, fetch the
  /// chosen k files (0 = all).
  std::vector<RetrievedFile> basic_search_two_round(std::string_view keyword,
                                                    std::size_t top_k);

  /// Multi-keyword ranked retrieval (the §VIII extension end to end):
  /// conjunctive = files matching EVERY keyword, disjunctive = ANY.
  /// One round; server ranks by the aggregate encrypted score. Throws
  /// InvalidArgument when no keyword survives normalization.
  std::vector<RetrievedFile> multi_search(const std::vector<std::string>& keywords,
                                          bool conjunctive, std::size_t top_k);

  /// The underlying transport (traffic accounting).
  [[nodiscard]] const Transport& channel() const { return channel_; }

  /// Attaches a trace recorder: subsequent queries record a client root
  /// span (plus a client.decode span over decryption) and propagate the
  /// context through the transport, so one recorder collects the whole
  /// distributed trace of each query. Pass nullptr to detach. The
  /// recorder must outlive the queries; spans carry only operation names,
  /// node names and counts — never keywords, plaintext or scores.
  void set_trace_recorder(obs::TraceRecorder* recorder) { trace_ = recorder; }

 private:
  UserCredentials credentials_;
  sse::TrapdoorGenerator trapdoor_gen_;
  FileCrypter crypter_;
  Transport& channel_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace rsse::cloud
