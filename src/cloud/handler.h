// The request-handling seam between transports and serving logic.
//
// Every transport front end — the in-process Channel, the TCP
// NetworkServer, the deterministic SimTransport — dispatches requests by
// invoking this interface, not CloudServer directly. That makes the
// serving side substitutable: a bare CloudServer (single owner, the
// paper's model) and a tenant::TenantHost (many owners behind admission
// control and fair scheduling) plug into the same front ends unchanged.
#pragma once

#include <vector>

#include "cloud/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rsse::cloud {

/// Abstract serving endpoint: parses a typed request payload and returns
/// the serialized response. Implementations are internally synchronized —
/// transports call handle() from many threads concurrently (the epoll
/// reactor's worker pool in particular runs handle() for pipelined
/// requests of ONE connection in parallel; response ordering is the
/// transport's job, not the handler's).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// One RPC: parses `payload` according to `type` and returns the
  /// serialized response. Throws ProtocolError for unknown message
  /// types, ParseError for malformed payloads, and QuotaExceeded when
  /// admission control sheds the request before doing any work.
  [[nodiscard]] virtual Bytes handle(MessageType type, BytesView payload) const = 0;

  /// Traced RPC: like handle(), but when `ctx` carries a live trace the
  /// handler records spans into `*spans` for the transport to piggyback
  /// on the response frame. With an inactive context behaves exactly
  /// like the untraced overload.
  [[nodiscard]] virtual Bytes handle(MessageType type, BytesView payload,
                                     const obs::TraceContext& ctx,
                                     std::vector<obs::Span>* spans) const = 0;

  /// The registry transport front ends contribute their own families to
  /// (bytes in/out, connection counts) and scrape endpoints render.
  [[nodiscard]] virtual obs::MetricsRegistry& metrics_registry() const = 0;
};

}  // namespace rsse::cloud
