// The honest-but-curious cloud server (Sec. II-A).
//
// Holds exactly what the owner outsources — the encrypted index I and the
// encrypted file collection — and answers the protocol's four request
// types. It follows the protocol faithfully ("honest") and everything it
// could observe while doing so is available through observable_state()
// for the leakage tests ("curious").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "cloud/metrics.h"
#include "cloud/protocol.h"
#include "sse/secure_index.h"

namespace rsse::cloud {

/// The cloud service endpoint.
class CloudServer {
 public:
  /// Ingests the owner's outsourced data (Setup upload).
  void store(sse::SecureIndex index, std::map<std::uint64_t, Bytes> files);

  /// Stores/overwrites one encrypted file (dynamics path).
  void store_file(std::uint64_t id, Bytes blob);

  /// Deletes one encrypted file (dynamics path).
  void erase_file(std::uint64_t id);

  /// Owner-side in-place index update (the real deployment would ship
  /// row deltas; cloud/data_owner models that with this closure). Runs
  /// `mutate` under the exclusive state lock — concurrent searches from
  /// the network server wait — and invalidates the rank cache.
  void update_index(const std::function<void(sse::SecureIndex&)>& mutate);

  /// Enables/disables the per-keyword rank cache. Once the server has
  /// seen a trapdoor it has, by design, learned that row's ranked order
  /// (the paper's deliberate leakage); caching it makes repeat top-k
  /// queries O(k) instead of O(nu) row decryptions. Off by default so
  /// benches can measure both modes.
  void set_rank_cache_enabled(bool enabled);

  /// Drops all cached rankings.
  void clear_rank_cache();

  /// Cache observability for tests/benches.
  [[nodiscard]] std::uint64_t rank_cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t rank_cache_misses() const { return cache_misses_; }

  /// Request/traffic counters (incremented by handle()).
  [[nodiscard]] const ServerMetrics& metrics() const { return metrics_; }

  /// Zeroes the request counters.
  void reset_metrics() { metrics_.reset(); }

  /// Single RPC entry point: parses `payload` according to `type` and
  /// returns the serialized response. Throws ProtocolError for unknown
  /// message types and ParseError for malformed payloads.
  [[nodiscard]] Bytes handle(MessageType type, BytesView payload) const;

  // ----- typed handlers (handle() dispatches to these) -----

  /// RSSE: SearchIndex + rank by encrypted score + fetch top-k files.
  [[nodiscard]] RankedSearchResponse ranked_search(const RankedSearchRequest& req) const;

  /// Basic two-round, round 1: all valid entries of the matching row.
  [[nodiscard]] BasicEntriesResponse basic_entries(const BasicEntriesRequest& req) const;

  /// Basic two-round, round 2: the requested files.
  [[nodiscard]] FetchFilesResponse fetch_files(const FetchFilesRequest& req) const;

  /// Basic one-round: every matching file plus its encrypted score.
  [[nodiscard]] BasicFilesResponse basic_files(const BasicEntriesRequest& req) const;

  /// Multi-keyword AND/OR search over the RSSE index: intersect or merge
  /// the per-keyword results, rank by the aggregate encrypted score,
  /// return the top-k files. The aggregate rides in each RankedFile's
  /// opm_score field.
  [[nodiscard]] RankedSearchResponse multi_search(const MultiSearchRequest& req) const;

  /// Repair: the full shard state (serialized index + every file blob),
  /// for rebuilding a peer replica whose storage failed its integrity
  /// check. All ciphertext — reveals nothing a replica doesn't hold.
  [[nodiscard]] SnapshotResponse snapshot() const;

  // ----- what the curious server can see -----

  /// The stored index (ciphertext rows and labels).
  [[nodiscard]] const sse::SecureIndex& index() const { return index_; }

  /// Number of stored encrypted files.
  [[nodiscard]] std::size_t num_files() const { return files_.size(); }

  /// The stored encrypted blobs (persistence layer; all ciphertext).
  [[nodiscard]] const std::map<std::uint64_t, Bytes>& files() const { return files_; }

  /// Total stored bytes (index + files): the owner's storage footprint.
  [[nodiscard]] std::uint64_t stored_bytes() const;

 private:
  [[nodiscard]] Bytes blob_of(std::uint64_t id) const;
  [[nodiscard]] std::vector<sse::RankedSearchEntry> ranked_entries(
      const sse::Trapdoor& trapdoor, std::size_t top_k) const;

  // Readers (RPC handlers) take the shared lock; owner updates take the
  // exclusive lock, so a live network server stays consistent during
  // dynamics.
  mutable std::shared_mutex state_mutex_;
  sse::SecureIndex index_;
  std::map<std::uint64_t, Bytes> files_;

  // Rank cache: label -> fully ranked row. Mutable + mutex because
  // lookups happen inside const request handlers.
  bool cache_enabled_ = false;
  mutable std::mutex cache_mutex_;
  mutable std::map<Bytes, std::vector<sse::RankedSearchEntry>> rank_cache_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  mutable ServerMetrics metrics_;
};

}  // namespace rsse::cloud
