// The honest-but-curious cloud server (Sec. II-A).
//
// Holds exactly what the owner outsources — the encrypted index I and the
// encrypted file collection — and answers the protocol's four request
// types. It follows the protocol faithfully ("honest") and everything it
// could observe while doing so is available through observable_state()
// for the leakage tests ("curious").
//
// Dynamics (kUpdate) layer a segmented overlay (src/seg) over the static
// base index: owner-streamed deltas land in a memtable, seal into
// immutable segments, and an optional background compactor merges sealed
// segments without blocking queries. Ranked searches merge base + overlay
// in OPM order; while the overlay is empty the static fast path is
// byte-identical to the pre-dynamic server.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "analysis/transcript.h"
#include "cloud/handler.h"
#include "cloud/metrics.h"
#include "cloud/protocol.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "seg/compactor.h"
#include "seg/segmented_index.h"
#include "seg/wal.h"
#include "sse/secure_index.h"

namespace rsse::cloud {

/// The cloud service endpoint. Implements the transport-facing
/// RequestHandler seam, so every transport (in-process Channel, TCP
/// NetworkServer, SimNet endpoint) serves either a bare CloudServer or a
/// multi-tenant tenant::TenantHost without caring which.
class CloudServer : public RequestHandler {
 public:
  /// Ingests the owner's outsourced data (Setup upload).
  void store(sse::SecureIndex index, std::map<std::uint64_t, Bytes> files);

  /// Stores/overwrites one encrypted file (dynamics path).
  void store_file(std::uint64_t id, Bytes blob);

  /// Deletes one encrypted file (dynamics path).
  void erase_file(std::uint64_t id);

  /// Owner-side in-place index update (the real deployment would ship
  /// row deltas; cloud/data_owner models that with this closure). Runs
  /// `mutate` under the exclusive state lock — concurrent searches from
  /// the network server wait — and invalidates the rank cache.
  void update_index(const std::function<void(sse::SecureIndex&)>& mutate);

  /// Enables/disables the per-keyword rank cache. Once the server has
  /// seen a trapdoor it has, by design, learned that row's ranked order
  /// (the paper's deliberate leakage); caching it makes repeat top-k
  /// queries O(k) instead of O(nu) row decryptions. Off by default so
  /// benches can measure both modes.
  void set_rank_cache_enabled(bool enabled);

  /// Drops all cached rankings (const: the cache is mutable bookkeeping,
  /// and the const kUpdate path invalidates it).
  void clear_rank_cache() const;

  /// Cache observability for tests/benches.
  [[nodiscard]] std::uint64_t rank_cache_hits() const {
    return metrics_.rank_cache_hits();
  }
  [[nodiscard]] std::uint64_t rank_cache_misses() const {
    return metrics_.rank_cache_misses();
  }

  /// Request/traffic counters (incremented by handle()).
  [[nodiscard]] const ServerMetrics& metrics() const { return metrics_; }

  /// Zeroes the request counters.
  void reset_metrics() { metrics_.reset(); }

  /// Names this node in trace spans and slow-query entries ("shard2",
  /// ...). Default "server". Set before serving traffic.
  void set_node_name(std::string name) { node_name_ = std::move(name); }
  [[nodiscard]] const std::string& node_name() const { return node_name_; }

  /// Attributes this server's slow-query entries and trace spans to a
  /// tenant (a tenant host tags each per-tenant server with its id).
  /// Default empty: single-owner servers stay untagged. Set before
  /// serving traffic.
  void set_tenant_tag(std::string tenant) { tenant_tag_ = std::move(tenant); }
  [[nodiscard]] const std::string& tenant_tag() const { return tenant_tag_; }

  /// Attaches the adversary's-eye transcript: every ranked search this
  /// server answers records (row label, stored row width, returned file
  /// ids) into `sink` — the honest-but-curious view the leakage ledger
  /// and the query-recovery attack consume. Both the wire path (kRanked-
  /// Search via handle()) and direct typed calls are captured, so SimNet
  /// shards, cluster members and tenant servers get transcripts by
  /// composition. Set before serving traffic; nullptr detaches.
  void set_transcript_sink(std::shared_ptr<analysis::TranscriptSink> sink) {
    transcript_ = std::move(sink);
  }
  [[nodiscard]] const std::shared_ptr<analysis::TranscriptSink>& transcript_sink() const {
    return transcript_;
  }

  /// RequestHandler: the registry behind metrics() — what transports use
  /// to register their own byte/connection counters.
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() const override {
    return metrics_.registry();
  }

  /// Arms the slow-query log: handle() calls slower than `ms` are
  /// retained (with their trace when the request carried one) and served
  /// via kTrace. 0 (default) disables.
  void set_slow_query_threshold_ms(double ms) { slow_log_.set_threshold_ms(ms); }

  /// The retained slow queries, oldest first.
  [[nodiscard]] std::vector<obs::SlowQueryEntry> slow_queries() const {
    return slow_log_.entries();
  }

  /// Single RPC entry point: parses `payload` according to `type` and
  /// returns the serialized response. Throws ProtocolError for unknown
  /// message types and ParseError for malformed payloads.
  [[nodiscard]] Bytes handle(MessageType type, BytesView payload) const override;

  /// Traced RPC entry point: like handle(), but when `ctx` carries a live
  /// trace the handler records spans (request root + ranked-search
  /// stages) into `*spans` for the network server to piggyback on the
  /// response frame. With an inactive context this is exactly handle().
  [[nodiscard]] Bytes handle(MessageType type, BytesView payload,
                             const obs::TraceContext& ctx,
                             std::vector<obs::Span>* spans) const override;

  // ----- typed handlers (handle() dispatches to these) -----

  /// RSSE: SearchIndex + rank by encrypted score + fetch top-k files.
  [[nodiscard]] RankedSearchResponse ranked_search(const RankedSearchRequest& req) const;

  /// Basic two-round, round 1: all valid entries of the matching row.
  [[nodiscard]] BasicEntriesResponse basic_entries(const BasicEntriesRequest& req) const;

  /// Basic two-round, round 2: the requested files.
  [[nodiscard]] FetchFilesResponse fetch_files(const FetchFilesRequest& req) const;

  /// Basic one-round: every matching file plus its encrypted score.
  [[nodiscard]] BasicFilesResponse basic_files(const BasicEntriesRequest& req) const;

  /// Multi-keyword AND/OR search over the RSSE index: intersect or merge
  /// the per-keyword results, rank by the aggregate encrypted score,
  /// return the top-k files. The aggregate rides in each RankedFile's
  /// opm_score field.
  [[nodiscard]] RankedSearchResponse multi_search(const MultiSearchRequest& req) const;

  /// Repair: the full shard state (serialized index, every file blob,
  /// and the dynamic overlay's segments + sequence counter), for
  /// rebuilding a peer replica whose storage failed its integrity check.
  /// All ciphertext — reveals nothing a replica doesn't hold. Taken
  /// under the update lock, so the files and the overlay are a
  /// consistent cut with respect to concurrent kUpdate appliers.
  [[nodiscard]] SnapshotResponse snapshot() const;

  /// Dynamics: applies one owner-streamed delta to the segmented overlay
  /// and the file store. Idempotent per non-zero delta_id within the
  /// last kUpdateReplayWindow applied deltas (a replay returns the
  /// cached response with replayed = true), so a transport retry is safe
  /// even when other deltas land between the apply and the retry.
  [[nodiscard]] UpdateResponse apply_update(const UpdateRequest& req) const;

  /// Depth of the kUpdate idempotency window (recent delta_id ->
  /// response pairs retained for replay). A retry older than this many
  /// intervening deltas would re-apply; owners must not pipeline more
  /// unacknowledged deltas than the window holds.
  static constexpr std::size_t kUpdateReplayWindow = 64;

  /// Anti-entropy: the retained WAL suffix from `req.from_seq` on, for a
  /// lagging replica catching up. Empty with truncated = false when the
  /// requester is already current (so a from_seq of ~0 is the extended
  /// health probe: it just reports this server's next_seq); truncated =
  /// true when a checkpoint dropped the requested range and only a full
  /// kSnapshot can repair the requester.
  [[nodiscard]] DeltaBackfillResponse delta_backfill(const DeltaBackfillRequest& req) const;

  // ----- durability (write-ahead log) -----

  /// Binds this server to the append-only WAL at `path` and replays any
  /// records already there into the overlay — recovering the memtable
  /// entries, the delta_id idempotency ring, and the backfill tail that
  /// died with the previous process. Records a persisted snapshot
  /// already covers (first_seq below the restored next_seq) are skipped;
  /// a torn tail record (crash mid-append, never acked) is discarded. From
  /// here on every applied delta is flushed to the WAL before its ack.
  /// Call after restore_segments and before serving traffic (store's
  /// load_deployment does both). Returns the number of records replayed.
  /// Throws IntegrityError when the log does not continue the restored
  /// overlay (a record sequence gap).
  std::size_t attach_wal(const std::string& path);

  /// Drops WAL records a persisted snapshot now covers (first_seq <
  /// persisted_next_seq) from the retained tail and the attached file —
  /// store's save_deployment calls this after its atomic swap commits.
  /// Const for the same reason the kUpdate path is: the WAL is mutable
  /// durability bookkeeping on a server whose RPC surface is const.
  void checkpoint_wal(std::uint64_t persisted_next_seq) const;

  /// Records retained for kDeltaBackfill (tests/observability).
  [[nodiscard]] std::size_t wal_tail_records() const;

  /// Anti-entropy fallback installer: replaces the full server state
  /// (index, files, overlay segments + sequence counter) from a healthy
  /// peer's snapshot, resetting the idempotency ring and the WAL — the
  /// in-process equivalent of store::repair_cluster_shard.
  void install_snapshot(const SnapshotResponse& snap);

  // ----- dynamic-overlay lifecycle -----

  /// Memtable/compaction thresholds. Set before serving updates.
  void set_segment_policy(seg::SegPolicy policy) { overlay_.set_policy(policy); }

  /// Starts the background compactor (one worker thread; merges whenever
  /// `trigger_segments` sealed segments accumulate). Idempotent.
  void enable_background_compaction(seg::CompactorOptions options = {});

  /// Blocks until the compactor (when enabled) has drained.
  void wait_for_compaction_idle() const;

  /// Seals the memtable, then synchronously merges all sealed segments
  /// (test/tooling hook). Returns true when a merge happened.
  bool compact_segments_once();

  /// Background merges completed so far (0 when compaction is disabled).
  [[nodiscard]] std::uint64_t compactions_completed() const;

  /// The dynamic overlay (read-only observability).
  [[nodiscard]] const seg::SegmentedIndex& segments() const { return overlay_; }

  /// Persistence: deep copy of the overlay's segments (memtable frozen
  /// last) and the sequence counter to resume from.
  [[nodiscard]] std::vector<seg::Segment> segment_snapshot() const {
    return overlay_.snapshot_segments();
  }
  [[nodiscard]] std::uint64_t segment_next_seq() const { return overlay_.next_seq(); }

  /// Persistence: replaces the overlay from loaded segments.
  void restore_segments(std::vector<seg::Segment> segments, std::uint64_t next_seq);

  // ----- what the curious server can see -----

  /// The stored index (ciphertext rows and labels).
  [[nodiscard]] const sse::SecureIndex& index() const { return index_; }

  /// Number of stored encrypted files.
  [[nodiscard]] std::size_t num_files() const { return files_.size(); }

  /// The stored encrypted blobs (persistence layer; all ciphertext).
  [[nodiscard]] const std::map<std::uint64_t, Bytes>& files() const { return files_; }

  /// Total stored bytes (index + files): the owner's storage footprint.
  [[nodiscard]] std::uint64_t stored_bytes() const;

 private:
  [[nodiscard]] Bytes blob_of(std::uint64_t id) const;
  [[nodiscard]] std::vector<sse::RankedSearchEntry> ranked_entries(
      const sse::Trapdoor& trapdoor, std::size_t top_k) const;
  /// apply_update with update_mutex_ already held. `delta_bytes`, when
  /// non-null, is the caller's serialized copy of req.delta (WAL replay
  /// reuses the logged bytes instead of re-serializing); `log` is false
  /// on replay so records are not re-appended to the file.
  [[nodiscard]] UpdateResponse apply_update_locked(const UpdateRequest& req,
                                                   const Bytes* delta_bytes,
                                                   bool log) const;
  /// restore_segments with update_mutex_ already held: resets the
  /// overlay, the idempotency ring and the WAL tail together.
  void restore_segments_locked(std::vector<seg::Segment> segments,
                               std::uint64_t next_seq);
  [[nodiscard]] Bytes handle_impl(MessageType type, BytesView payload,
                                  obs::TraceRecorder* trace,
                                  std::uint64_t parent_span_id) const;
  void refresh_storage_gauges() const;

  void refresh_segment_gauges() const;

  // Readers (RPC handlers) take the shared lock; owner updates take the
  // exclusive lock, so a live network server stays consistent during
  // dynamics. files_ is mutable because kUpdate arrives through the const
  // RPC path (handle() is const; the overlay members below are mutable
  // for the same reason).
  mutable std::shared_mutex state_mutex_;
  sse::SecureIndex index_;
  mutable std::map<std::uint64_t, Bytes> files_;

  // The dynamic overlay. SegmentedIndex has its own internal lock (never
  // held together with state_mutex_); update_mutex_ serializes appliers
  // and guards the idempotency window (a bounded ring of recent
  // delta_id -> response pairs, newest overwriting oldest).
  mutable seg::SegmentedIndex overlay_;
  mutable std::mutex update_mutex_;
  mutable std::vector<std::pair<std::uint64_t, UpdateResponse>> recent_updates_;
  mutable std::size_t recent_updates_cursor_ = 0;

  // Durability + anti-entropy, both guarded by update_mutex_: the WAL
  // records applied since the last checkpoint (save_deployment), in
  // sequence order. wal_tail_ serves kDeltaBackfill whether or not a
  // file is attached; like the memtable it grows until the next save.
  mutable std::deque<seg::WalRecord> wal_tail_;
  mutable seg::WriteAheadLog wal_;

  // Rank cache: label -> fully ranked row. Mutable + mutex because
  // lookups happen inside const request handlers.
  bool cache_enabled_ = false;
  mutable std::mutex cache_mutex_;
  mutable std::map<Bytes, std::vector<sse::RankedSearchEntry>> rank_cache_;
  mutable ServerMetrics metrics_;
  mutable obs::SlowQueryLog slow_log_;
  std::string node_name_ = "server";
  std::string tenant_tag_;  // stamps slow-query entries; "" = single-owner
  // Adversary's-eye capture; like node_name_, attached before traffic.
  std::shared_ptr<analysis::TranscriptSink> transcript_;

  // Declared LAST: ~Compactor joins a worker thread that dereferences
  // overlay_ and metrics_'s registry mid-merge, so the compactor must be
  // destroyed before every member it points into.
  mutable std::unique_ptr<seg::Compactor> compactor_;
};

}  // namespace rsse::cloud
