// The honest-but-curious cloud server (Sec. II-A).
//
// Holds exactly what the owner outsources — the encrypted index I and the
// encrypted file collection — and answers the protocol's four request
// types. It follows the protocol faithfully ("honest") and everything it
// could observe while doing so is available through observable_state()
// for the leakage tests ("curious").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cloud/metrics.h"
#include "cloud/protocol.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "sse/secure_index.h"

namespace rsse::cloud {

/// The cloud service endpoint.
class CloudServer {
 public:
  /// Ingests the owner's outsourced data (Setup upload).
  void store(sse::SecureIndex index, std::map<std::uint64_t, Bytes> files);

  /// Stores/overwrites one encrypted file (dynamics path).
  void store_file(std::uint64_t id, Bytes blob);

  /// Deletes one encrypted file (dynamics path).
  void erase_file(std::uint64_t id);

  /// Owner-side in-place index update (the real deployment would ship
  /// row deltas; cloud/data_owner models that with this closure). Runs
  /// `mutate` under the exclusive state lock — concurrent searches from
  /// the network server wait — and invalidates the rank cache.
  void update_index(const std::function<void(sse::SecureIndex&)>& mutate);

  /// Enables/disables the per-keyword rank cache. Once the server has
  /// seen a trapdoor it has, by design, learned that row's ranked order
  /// (the paper's deliberate leakage); caching it makes repeat top-k
  /// queries O(k) instead of O(nu) row decryptions. Off by default so
  /// benches can measure both modes.
  void set_rank_cache_enabled(bool enabled);

  /// Drops all cached rankings.
  void clear_rank_cache();

  /// Cache observability for tests/benches.
  [[nodiscard]] std::uint64_t rank_cache_hits() const {
    return metrics_.rank_cache_hits();
  }
  [[nodiscard]] std::uint64_t rank_cache_misses() const {
    return metrics_.rank_cache_misses();
  }

  /// Request/traffic counters (incremented by handle()).
  [[nodiscard]] const ServerMetrics& metrics() const { return metrics_; }

  /// Zeroes the request counters.
  void reset_metrics() { metrics_.reset(); }

  /// Names this node in trace spans and slow-query entries ("shard2",
  /// ...). Default "server". Set before serving traffic.
  void set_node_name(std::string name) { node_name_ = std::move(name); }
  [[nodiscard]] const std::string& node_name() const { return node_name_; }

  /// Arms the slow-query log: handle() calls slower than `ms` are
  /// retained (with their trace when the request carried one) and served
  /// via kTrace. 0 (default) disables.
  void set_slow_query_threshold_ms(double ms) { slow_log_.set_threshold_ms(ms); }

  /// The retained slow queries, oldest first.
  [[nodiscard]] std::vector<obs::SlowQueryEntry> slow_queries() const {
    return slow_log_.entries();
  }

  /// Single RPC entry point: parses `payload` according to `type` and
  /// returns the serialized response. Throws ProtocolError for unknown
  /// message types and ParseError for malformed payloads.
  [[nodiscard]] Bytes handle(MessageType type, BytesView payload) const;

  /// Traced RPC entry point: like handle(), but when `ctx` carries a live
  /// trace the handler records spans (request root + ranked-search
  /// stages) into `*spans` for the network server to piggyback on the
  /// response frame. With an inactive context this is exactly handle().
  [[nodiscard]] Bytes handle(MessageType type, BytesView payload,
                             const obs::TraceContext& ctx,
                             std::vector<obs::Span>* spans) const;

  // ----- typed handlers (handle() dispatches to these) -----

  /// RSSE: SearchIndex + rank by encrypted score + fetch top-k files.
  [[nodiscard]] RankedSearchResponse ranked_search(const RankedSearchRequest& req) const;

  /// Basic two-round, round 1: all valid entries of the matching row.
  [[nodiscard]] BasicEntriesResponse basic_entries(const BasicEntriesRequest& req) const;

  /// Basic two-round, round 2: the requested files.
  [[nodiscard]] FetchFilesResponse fetch_files(const FetchFilesRequest& req) const;

  /// Basic one-round: every matching file plus its encrypted score.
  [[nodiscard]] BasicFilesResponse basic_files(const BasicEntriesRequest& req) const;

  /// Multi-keyword AND/OR search over the RSSE index: intersect or merge
  /// the per-keyword results, rank by the aggregate encrypted score,
  /// return the top-k files. The aggregate rides in each RankedFile's
  /// opm_score field.
  [[nodiscard]] RankedSearchResponse multi_search(const MultiSearchRequest& req) const;

  /// Repair: the full shard state (serialized index + every file blob),
  /// for rebuilding a peer replica whose storage failed its integrity
  /// check. All ciphertext — reveals nothing a replica doesn't hold.
  [[nodiscard]] SnapshotResponse snapshot() const;

  // ----- what the curious server can see -----

  /// The stored index (ciphertext rows and labels).
  [[nodiscard]] const sse::SecureIndex& index() const { return index_; }

  /// Number of stored encrypted files.
  [[nodiscard]] std::size_t num_files() const { return files_.size(); }

  /// The stored encrypted blobs (persistence layer; all ciphertext).
  [[nodiscard]] const std::map<std::uint64_t, Bytes>& files() const { return files_; }

  /// Total stored bytes (index + files): the owner's storage footprint.
  [[nodiscard]] std::uint64_t stored_bytes() const;

 private:
  [[nodiscard]] Bytes blob_of(std::uint64_t id) const;
  [[nodiscard]] std::vector<sse::RankedSearchEntry> ranked_entries(
      const sse::Trapdoor& trapdoor, std::size_t top_k) const;
  [[nodiscard]] Bytes handle_impl(MessageType type, BytesView payload,
                                  obs::TraceRecorder* trace,
                                  std::uint64_t parent_span_id) const;
  void refresh_storage_gauges() const;

  // Readers (RPC handlers) take the shared lock; owner updates take the
  // exclusive lock, so a live network server stays consistent during
  // dynamics.
  mutable std::shared_mutex state_mutex_;
  sse::SecureIndex index_;
  std::map<std::uint64_t, Bytes> files_;

  // Rank cache: label -> fully ranked row. Mutable + mutex because
  // lookups happen inside const request handlers.
  bool cache_enabled_ = false;
  mutable std::mutex cache_mutex_;
  mutable std::map<Bytes, std::vector<sse::RankedSearchEntry>> rank_cache_;
  mutable ServerMetrics metrics_;
  mutable obs::SlowQueryLog slow_log_;
  std::string node_name_ = "server";
};

}  // namespace rsse::cloud
