#include "cloud/data_owner.h"

#include "crypto/csprng.h"
#include "util/errors.h"

namespace rsse::cloud {

DataOwner::DataOwner(sse::SystemParams params, ir::AnalyzerOptions analyzer_options)
    : key_(sse::keygen(params)),
      rsse_(key_, analyzer_options),
      basic_(key_, analyzer_options),
      file_master_(crypto::random_bytes(32)),
      crypter_(file_master_) {}

DataOwner::DataOwner(sse::MasterKey key, Bytes file_master,
                     std::optional<opse::ScoreQuantizer> quantizer,
                     ir::AnalyzerOptions analyzer_options)
    : key_(std::move(key)),
      rsse_(key_, analyzer_options),
      basic_(key_, analyzer_options),
      file_master_(std::move(file_master)),
      crypter_(file_master_),
      quantizer_(std::move(quantizer)) {}

DataOwner::OutsourceReport DataOwner::outsource_rsse(const ir::Corpus& corpus,
                                                     CloudServer& server) {
  return outsource_rsse(corpus, server, sse::RsseScheme::BuildOptions{});
}

DataOwner::OutsourceReport DataOwner::outsource_rsse(
    const ir::Corpus& corpus, CloudServer& server,
    const sse::RsseScheme::BuildOptions& options) {
  sse::RsseScheme::BuildResult built = rsse_.build_index(corpus, options);
  quantizer_ = built.quantizer;
  auto files = encrypt_corpus(crypter_, corpus);

  OutsourceReport report;
  report.rsse_stats = built.stats;
  report.rsse_audit = built.audit;
  report.index_bytes = built.index.byte_size();
  for (const auto& [id, blob] : files) report.file_bytes += blob.size();
  server.store(std::move(built.index), std::move(files));
  return report;
}

DataOwner::OutsourceReport DataOwner::outsource_basic(const ir::Corpus& corpus,
                                                      CloudServer& server) {
  OutsourceReport report;
  sse::SecureIndex index = basic_.build_index(corpus, &report.basic_stats);
  auto files = encrypt_corpus(crypter_, corpus);
  report.index_bytes = index.byte_size();
  for (const auto& [id, blob] : files) report.file_bytes += blob.size();
  server.store(std::move(index), std::move(files));
  return report;
}

Bytes DataOwner::enroll_user(BytesView user_key, std::string_view user_name) const {
  const UserCredentials credentials =
      AuthorizationService::make_credentials(key_, file_master_);
  return AuthorizationService::issue(user_key, user_name, credentials);
}

sse::IndexUpdater::UpdateStats DataOwner::add_document(CloudServer& server,
                                                       const ir::Document& doc) const {
  detail::require(quantizer_.has_value(),
                  "DataOwner::add_document: outsource_rsse must run first");
  const sse::IndexUpdater updater(rsse_, *quantizer_);
  // Ordering invariant against live searches: the blob must exist before
  // any index entry points at it (removal goes the other way round),
  // otherwise a concurrent top-k retrieval can return an empty file.
  server.store_file(ir::value(doc.id), crypter_.encrypt(doc));
  sse::IndexUpdater::UpdateStats stats;
  server.update_index([&](sse::SecureIndex& index) {
    stats = updater.add_document(index, doc);
  });
  return stats;
}

sse::IndexUpdater::UpdateStats DataOwner::remove_document(CloudServer& server,
                                                          const ir::Document& doc) const {
  detail::require(quantizer_.has_value(),
                  "DataOwner::remove_document: outsource_rsse must run first");
  const sse::IndexUpdater updater(rsse_, *quantizer_);
  sse::IndexUpdater::UpdateStats stats;
  server.update_index([&](sse::SecureIndex& index) {
    stats = updater.remove_document(index, doc);
  });
  server.erase_file(ir::value(doc.id));
  return stats;
}

seg::UpdateDelta DataOwner::build_update(const std::vector<ir::Document>& adds,
                                         const std::vector<sse::FileId>& removes) const {
  detail::require(quantizer_.has_value(),
                  "DataOwner::build_update: outsource_rsse must run first");
  seg::DeltaBuilder builder(rsse_, *quantizer_);
  // Adds before removes: a document both added and removed in one batch
  // ends up removed (the tombstone's later op wins at the server).
  // Every add is preceded by a guard tombstone for its own id: the owner
  // is stateless about stored ids, and without it a re-add of a live id
  // would supersede only the rows the two versions share — postings for
  // keywords exclusive to the old version would survive and keep
  // matching. The guard (earlier op than the add, so the add's own
  // entries win) suppresses every older posting, base included, making
  // an add an upsert. For a genuinely fresh id it suppresses nothing.
  for (const ir::Document& doc : adds) {
    builder.remove_document(doc.id);
    builder.add_document(doc, crypter_.encrypt(doc));
  }
  for (const sse::FileId id : removes) builder.remove_document(id);
  return builder.take();
}

UpdateResponse DataOwner::stream_update(Transport& transport,
                                        const std::vector<ir::Document>& adds,
                                        const std::vector<sse::FileId>& removes) {
  UpdateRequest req;
  req.delta_id = next_delta_id_++;
  req.delta = build_update(adds, removes);
  detail::require(!req.delta.empty(), "DataOwner::stream_update: empty batch");
  return UpdateResponse::deserialize(
      transport.call(MessageType::kUpdate, req.serialize()));
}

}  // namespace rsse::cloud
