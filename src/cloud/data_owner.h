// The data owner role (Sec. II-A): generates keys, pre-processes and
// encrypts the collection, outsources index + files, enrolls users, and
// drives incremental updates. One DataOwner instance manages one
// collection under one master key; outsource either scheme to a server
// (one server holds one scheme's index).
#pragma once

#include <optional>
#include <string_view>

#include "cloud/auth.h"
#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/file_store.h"
#include "seg/delta_builder.h"
#include "ir/document.h"
#include "sse/basic_scheme.h"
#include "sse/dynamics.h"
#include "sse/rsse_scheme.h"

namespace rsse::cloud {

/// The owner's end of the system.
class DataOwner {
 public:
  /// Runs KeyGen and prepares both scheme front-ends.
  explicit DataOwner(sse::SystemParams params = {},
                     ir::AnalyzerOptions analyzer_options = {});

  /// Restores an owner from persisted secrets (store/owner_state.h). The
  /// optional quantizer re-arms the dynamics path of a prior deployment.
  DataOwner(sse::MasterKey key, Bytes file_master,
            std::optional<opse::ScoreQuantizer> quantizer,
            ir::AnalyzerOptions analyzer_options = {});

  /// What Setup produced (sizes feed Table I style reporting).
  struct OutsourceReport {
    std::uint64_t index_bytes = 0;
    std::uint64_t file_bytes = 0;
    sse::RsseScheme::BuildStats rsse_stats;   ///< filled by outsource_rsse
    sse::LeakageAudit rsse_audit;             ///< filled by outsource_rsse
    sse::BasicScheme::BuildStats basic_stats; ///< filled by outsource_basic
  };

  /// Setup with the efficient RSSE scheme: builds the OPM index, encrypts
  /// the files, uploads both. Retains the quantizer for future updates.
  OutsourceReport outsource_rsse(const ir::Corpus& corpus, CloudServer& server);

  /// Setup with explicit build options (padding policy, build threads) —
  /// what `rsse build --padding` drives. The chosen padding mode lands in
  /// the returned rsse_audit, so a stored audit names the policy.
  OutsourceReport outsource_rsse(const ir::Corpus& corpus, CloudServer& server,
                                 const sse::RsseScheme::BuildOptions& options);

  /// Setup with the Basic Scheme (baseline path).
  OutsourceReport outsource_basic(const ir::Corpus& corpus, CloudServer& server);

  /// Seals a credential bundle for `user_name` under the user's personal
  /// key (the off-the-shelf PKI stand-in).
  [[nodiscard]] Bytes enroll_user(BytesView user_key, std::string_view user_name) const;

  /// Incrementally indexes a new document on an RSSE server (requires a
  /// prior outsource_rsse). Uploads the encrypted file too.
  sse::IndexUpdater::UpdateStats add_document(CloudServer& server,
                                              const ir::Document& doc) const;

  /// Removes a document from an RSSE server: entries become padding and
  /// the encrypted file is deleted.
  sse::IndexUpdater::UpdateStats remove_document(CloudServer& server,
                                                 const ir::Document& doc) const;

  /// Builds one wire-streamable update delta (dynamic-index path): adds
  /// become pre-encrypted posting rows + blob puts, removes become
  /// tombstones, ordered adds-then-removes. Each add carries a guard
  /// tombstone at the preceding op, so adding an id that is already
  /// live fully supersedes the old version (old-only keywords stop
  /// matching) — an add is an upsert. Requires a prior outsource_rsse
  /// (or a restored quantizer).
  [[nodiscard]] seg::UpdateDelta build_update(
      const std::vector<ir::Document>& adds,
      const std::vector<sse::FileId>& removes) const;

  /// Streams build_update(adds, removes) to a live server over kUpdate.
  /// Each call carries a fresh non-zero delta_id, so transport retries
  /// are idempotent server-side. Throws on an empty batch.
  UpdateResponse stream_update(Transport& transport,
                               const std::vector<ir::Document>& adds,
                               const std::vector<sse::FileId>& removes);

  /// Reseeds the stream_update idempotency counter. Delta ids default to
  /// 1, 2, ... per DataOwner instance; a short-lived process (the CLI)
  /// must seed a fresh range or the server will dedup its first delta
  /// against the previous process's. Ignores 0 (the no-dedup sentinel).
  void seed_delta_ids(std::uint64_t first) {
    if (first != 0) next_delta_id_ = first;
  }

  /// The owner's RSSE front-end (tests / advanced callers).
  [[nodiscard]] const sse::RsseScheme& rsse() const { return rsse_; }

  /// The owner's Basic Scheme front-end.
  [[nodiscard]] const sse::BasicScheme& basic() const { return basic_; }

  /// The master key (owner-side persistence only).
  [[nodiscard]] const sse::MasterKey& master_key() const { return key_; }

  /// The quantizer fixed by outsource_rsse (nullopt before Setup).
  [[nodiscard]] const std::optional<opse::ScoreQuantizer>& quantizer() const {
    return quantizer_;
  }

  /// The file-encryption root (owner persistence only).
  [[nodiscard]] const Bytes& file_master() const { return file_master_; }

 private:
  sse::MasterKey key_;
  sse::RsseScheme rsse_;
  sse::BasicScheme basic_;
  Bytes file_master_;
  FileCrypter crypter_;
  std::optional<opse::ScoreQuantizer> quantizer_;
  std::uint64_t next_delta_id_ = 1;  ///< stream_update idempotency tokens
};

}  // namespace rsse::cloud
