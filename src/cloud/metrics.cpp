#include "cloud/metrics.h"

namespace rsse::cloud {

namespace {

const char* kRequestsHelp = "Requests handled, by message type";
const char* kLatencyHelp = "Handler service time in seconds, by message type";

obs::Labels type_label(const char* type) { return {{"type", type}}; }

}  // namespace

ServerMetrics::ServerMetrics() {
  const std::vector<double> bounds = obs::log_bounds();
  ranked_searches_ =
      &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                         type_label("ranked_search"));
  basic_entry_searches_ =
      &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                         type_label("basic_entries"));
  fetch_requests_ = &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                                       type_label("fetch_files"));
  basic_file_searches_ =
      &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                         type_label("basic_files"));
  multi_searches_ = &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                                       type_label("multi_search"));
  snapshot_requests_ = &registry_.counter("rsse_server_requests_total",
                                          kRequestsHelp, type_label("snapshot"));
  updates_ = &registry_.counter("rsse_server_requests_total", kRequestsHelp,
                                type_label("update"));
  update_entries_ = &registry_.counter("rsse_server_update_entries_total",
                                       "Posting entries received in update deltas");
  update_tombstones_ = &registry_.counter("rsse_server_update_tombstones_total",
                                          "File tombstones received in update deltas");
  files_returned_ = &registry_.counter("rsse_server_files_returned_total",
                                       "Encrypted files returned in responses");
  result_bytes_ = &registry_.counter("rsse_server_result_bytes_total",
                                     "Serialized response payload bytes");
  cache_hits_ = &registry_.counter("rsse_server_rank_cache_hits_total",
                                   "Rank cache hits");
  cache_misses_ = &registry_.counter("rsse_server_rank_cache_misses_total",
                                     "Rank cache misses");
  slow_queries_ = &registry_.counter(
      "rsse_server_slow_queries_total",
      "Requests recorded by the slow-query log (over the latency threshold)");
  stored_bytes_ = &registry_.gauge("rsse_server_stored_bytes",
                                   "Outsourced storage footprint (index + files)");
  index_rows_ = &registry_.gauge("rsse_server_index_rows",
                                 "Rows in the stored secure index");
  sealed_segments_ = &registry_.gauge("rsse_seg_sealed_segments",
                                      "Sealed dynamic-index segments held");
  memtable_entries_ = &registry_.gauge("rsse_seg_memtable_entries",
                                       "Posting entries in the live memtable");
  tombstoned_files_ = &registry_.gauge("rsse_seg_tombstoned_files",
                                       "Distinct files tombstoned in the overlay");
  ranked_latency_ = &registry_.histogram("rsse_server_request_latency_seconds",
                                         kLatencyHelp, bounds,
                                         type_label("ranked_search"));
  basic_entries_latency_ = &registry_.histogram(
      "rsse_server_request_latency_seconds", kLatencyHelp, bounds,
      type_label("basic_entries"));
  fetch_latency_ = &registry_.histogram("rsse_server_request_latency_seconds",
                                        kLatencyHelp, bounds,
                                        type_label("fetch_files"));
  basic_files_latency_ = &registry_.histogram(
      "rsse_server_request_latency_seconds", kLatencyHelp, bounds,
      type_label("basic_files"));
  multi_search_latency_ = &registry_.histogram(
      "rsse_server_request_latency_seconds", kLatencyHelp, bounds,
      type_label("multi_search"));
  update_latency_ = &registry_.histogram("rsse_server_request_latency_seconds",
                                         kLatencyHelp, bounds, type_label("update"));
}

void ServerMetrics::record_ranked_search(std::uint64_t files, std::uint64_t bytes) {
  ranked_searches_->inc();
  files_returned_->inc(files);
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_basic_entries(std::uint64_t bytes) {
  basic_entry_searches_->inc();
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_fetch(std::uint64_t files, std::uint64_t bytes) {
  fetch_requests_->inc();
  files_returned_->inc(files);
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_basic_files(std::uint64_t files, std::uint64_t bytes) {
  basic_file_searches_->inc();
  files_returned_->inc(files);
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_multi_search(std::uint64_t files, std::uint64_t bytes) {
  multi_searches_->inc();
  files_returned_->inc(files);
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_snapshot(std::uint64_t bytes) {
  snapshot_requests_->inc();
  result_bytes_->inc(bytes);
}

void ServerMetrics::record_rank_cache(bool hit) {
  (hit ? cache_hits_ : cache_misses_)->inc();
}

void ServerMetrics::record_slow_query() { slow_queries_->inc(); }

void ServerMetrics::record_update(std::uint64_t entries, std::uint64_t tombstones) {
  updates_->inc();
  update_entries_->inc(entries);
  update_tombstones_->inc(tombstones);
}

void ServerMetrics::set_segment_state(std::uint64_t sealed_segments,
                                      std::uint64_t memtable_entries,
                                      std::uint64_t tombstoned_files) {
  sealed_segments_->set(static_cast<std::int64_t>(sealed_segments));
  memtable_entries_->set(static_cast<std::int64_t>(memtable_entries));
  tombstoned_files_->set(static_cast<std::int64_t>(tombstoned_files));
}

void ServerMetrics::record_latency(RequestKind kind, double seconds) {
  latency_of(kind).observe(seconds);
}

void ServerMetrics::set_storage(std::uint64_t stored_bytes, std::uint64_t index_rows) {
  stored_bytes_->set(static_cast<std::int64_t>(stored_bytes));
  index_rows_->set(static_cast<std::int64_t>(index_rows));
}

obs::HistogramMetric& ServerMetrics::latency_of(RequestKind kind) const {
  switch (kind) {
    case RequestKind::kRankedSearch: return *ranked_latency_;
    case RequestKind::kBasicEntries: return *basic_entries_latency_;
    case RequestKind::kFetchFiles: return *fetch_latency_;
    case RequestKind::kBasicFiles: return *basic_files_latency_;
    case RequestKind::kMultiSearch: return *multi_search_latency_;
    case RequestKind::kUpdate: return *update_latency_;
  }
  return *ranked_latency_;  // unreachable
}

LatencyStats ServerMetrics::stats_of(const obs::HistogramMetric& h) {
  LatencyStats s;
  s.count = h.count();
  if (s.count > 0) {
    s.p50_seconds = h.quantile(0.50);
    s.p95_seconds = h.quantile(0.95);
    s.p99_seconds = h.quantile(0.99);
  }
  return s;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  // Multi-keyword searches have always counted into ranked_searches (they
  // are ranked searches to the accounting the paper's discussion needs);
  // the registry keeps them distinguishable under type="multi_search".
  s.ranked_searches = ranked_searches_->value() + multi_searches_->value();
  s.basic_entry_searches = basic_entry_searches_->value();
  s.fetch_requests = fetch_requests_->value();
  s.basic_file_searches = basic_file_searches_->value();
  s.snapshot_requests = snapshot_requests_->value();
  s.updates = updates_->value();
  s.update_entries = update_entries_->value();
  s.update_tombstones = update_tombstones_->value();
  s.files_returned = files_returned_->value();
  s.result_bytes = result_bytes_->value();
  s.ranked_search_latency = stats_of(*ranked_latency_);
  s.basic_entries_latency = stats_of(*basic_entries_latency_);
  s.fetch_latency = stats_of(*fetch_latency_);
  s.basic_files_latency = stats_of(*basic_files_latency_);
  s.multi_search_latency = stats_of(*multi_search_latency_);
  s.update_latency = stats_of(*update_latency_);
  return s;
}

void ServerMetrics::reset() { registry_.reset_values(); }

}  // namespace rsse::cloud
