// File-collection encryption: the "encrypted form" in which C is
// outsourced (Sec. II-A). Each file gets its own AES-256-GCM key derived
// from a file-master key by PRF(id), so authorized users can decrypt any
// returned file while compromise of one file key reveals nothing else.
// The file id doubles as GCM associated data, binding blob to identity.
#pragma once

#include <map>

#include "ir/document.h"
#include "util/bytes.h"

namespace rsse::cloud {

/// Encrypts/decrypts documents of the outsourced collection.
class FileCrypter {
 public:
  /// `file_master` is the collection-wide root key (>= 16 bytes).
  explicit FileCrypter(Bytes file_master);

  /// Encrypts one document (name + text) into an authenticated blob.
  [[nodiscard]] Bytes encrypt(const ir::Document& doc) const;

  /// Decrypts a blob back into the document with identifier `id`.
  /// Throws CryptoError when the blob fails authentication for this id.
  [[nodiscard]] ir::Document decrypt(ir::FileId id, BytesView blob) const;

 private:
  [[nodiscard]] Bytes file_key(ir::FileId id) const;

  Bytes file_master_;
};

/// Encrypts a whole corpus: id -> blob, the server-side file map.
std::map<std::uint64_t, Bytes> encrypt_corpus(const FileCrypter& crypter,
                                              const ir::Corpus& corpus);

}  // namespace rsse::cloud
