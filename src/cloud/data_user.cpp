#include "cloud/data_user.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cloud/protocol.h"
#include "ext/conjunctive.h"
#include "sse/basic_scheme.h"
#include "util/errors.h"

namespace rsse::cloud {

DataUser::DataUser(UserCredentials credentials, Transport& channel,
                   ir::AnalyzerOptions analyzer_options)
    : credentials_(std::move(credentials)),
      trapdoor_gen_(credentials_.x, credentials_.y, credentials_.params.p_bits,
                    analyzer_options),
      crypter_(credentials_.file_master),
      channel_(channel) {}

std::vector<RetrievedFile> DataUser::ranked_search(std::string_view keyword,
                                                   std::size_t top_k) {
  obs::SpanScope query(trace_, "client.ranked_search", "client");
  RankedSearchRequest req{trapdoor_gen_.generate(keyword), top_k};
  const Bytes resp_bytes = channel_.call(MessageType::kRankedSearch, req.serialize(),
                                         trace_, query.span_id());
  const auto resp = RankedSearchResponse::deserialize(resp_bytes);
  std::vector<RetrievedFile> out;
  out.reserve(resp.files.size());
  {
    obs::SpanScope decode(trace_, "client.decode", "client", query.span_id());
    for (const RankedFile& f : resp.files) {
      // RSSE keeps scores hidden from everyone, user included: rank only.
      out.push_back(RetrievedFile{crypter_.decrypt(f.id, f.blob),
                                  std::numeric_limits<double>::quiet_NaN()});
    }
    decode.event("decrypted", std::to_string(out.size()) + " files");
  }
  return out;
}

std::vector<RetrievedFile> DataUser::multi_search(
    const std::vector<std::string>& keywords, bool conjunctive, std::size_t top_k) {
  obs::SpanScope query(trace_, "client.multi_search", "client");
  MultiSearchRequest req;
  req.trapdoor = ext::make_conjunctive_trapdoor(trapdoor_gen_, keywords);
  req.mode = conjunctive ? MultiSearchMode::kConjunctive : MultiSearchMode::kDisjunctive;
  req.top_k = top_k;
  const Bytes resp_bytes = channel_.call(MessageType::kMultiSearch, req.serialize(),
                                         trace_, query.span_id());
  const auto resp = RankedSearchResponse::deserialize(resp_bytes);
  std::vector<RetrievedFile> out;
  out.reserve(resp.files.size());
  {
    obs::SpanScope decode(trace_, "client.decode", "client", query.span_id());
    for (const RankedFile& f : resp.files)
      out.push_back(RetrievedFile{crypter_.decrypt(f.id, f.blob),
                                  std::numeric_limits<double>::quiet_NaN()});
    decode.event("decrypted", std::to_string(out.size()) + " files");
  }
  return out;
}

namespace {

// Decrypt + rank basic-mode scored hits, best first, keep k (0 = all).
template <typename Hit, typename ScoreOf>
std::vector<std::pair<sse::FileId, double>> rank_hits(const std::vector<Hit>& hits,
                                                      std::size_t top_k,
                                                      ScoreOf&& score_of) {
  std::vector<std::pair<sse::FileId, double>> ranked;
  ranked.reserve(hits.size());
  for (const Hit& h : hits) ranked.emplace_back(h.id, score_of(h));
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return ir::value(a.first) < ir::value(b.first);
  });
  if (top_k > 0 && ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace

std::vector<RetrievedFile> DataUser::basic_search_one_round(std::string_view keyword,
                                                            std::size_t top_k) {
  BasicEntriesRequest req{trapdoor_gen_.generate(keyword)};
  const Bytes resp_bytes = channel_.call(MessageType::kBasicFiles, req.serialize());
  const auto resp = BasicFilesResponse::deserialize(resp_bytes);

  const auto ranked = rank_hits(resp.files, top_k, [&](const BasicFile& f) {
    return sse::decrypt_basic_score(credentials_.score_key, f.encrypted_score);
  });

  std::vector<RetrievedFile> out;
  out.reserve(ranked.size());
  for (const auto& [id, score] : ranked) {
    const auto it = std::find_if(resp.files.begin(), resp.files.end(),
                                 [&](const BasicFile& f) { return f.id == id; });
    out.push_back(RetrievedFile{crypter_.decrypt(id, it->blob), score});
  }
  return out;
}

std::vector<RetrievedFile> DataUser::basic_search_two_round(std::string_view keyword,
                                                            std::size_t top_k) {
  // Round 1: entries only.
  BasicEntriesRequest req{trapdoor_gen_.generate(keyword)};
  const Bytes entries_bytes = channel_.call(MessageType::kBasicEntries, req.serialize());
  const auto entries = BasicEntriesResponse::deserialize(entries_bytes);

  struct IdHit {
    sse::FileId id{};
    Bytes encrypted_score;
  };
  std::vector<IdHit> hits;
  hits.reserve(entries.entries.size());
  for (const sse::BasicSearchEntry& e : entries.entries)
    hits.push_back(IdHit{e.file, e.encrypted_score});
  const auto ranked = rank_hits(hits, top_k, [&](const IdHit& h) {
    return sse::decrypt_basic_score(credentials_.score_key, h.encrypted_score);
  });

  // Round 2: fetch exactly the chosen files.
  FetchFilesRequest fetch;
  fetch.ids.reserve(ranked.size());
  for (const auto& [id, score] : ranked) fetch.ids.push_back(id);
  const Bytes files_bytes = channel_.call(MessageType::kFetchFiles, fetch.serialize());
  const auto files = FetchFilesResponse::deserialize(files_bytes);
  detail::require(files.files.size() == ranked.size(),
                  "DataUser: server returned wrong file count");

  std::vector<RetrievedFile> out;
  out.reserve(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i)
    out.push_back(
        RetrievedFile{crypter_.decrypt(ranked[i].first, files.files[i].blob),
                      ranked[i].second});
  return out;
}

}  // namespace rsse::cloud
