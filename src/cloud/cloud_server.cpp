#include "cloud/cloud_server.h"

#include <algorithm>

#include "ext/disjunctive.h"

#include "obs/profiler.h"
#include "util/errors.h"
#include "util/stopwatch.h"

namespace rsse::cloud {

namespace {

const char* message_name(MessageType type) {
  switch (type) {
    case MessageType::kRankedSearch: return "ranked_search";
    case MessageType::kBasicEntries: return "basic_entries";
    case MessageType::kFetchFiles: return "fetch_files";
    case MessageType::kBasicFiles: return "basic_files";
    case MessageType::kMultiSearch: return "multi_search";
    case MessageType::kSnapshot: return "snapshot";
    case MessageType::kStats: return "stats";
    case MessageType::kTrace: return "trace";
    case MessageType::kUpdate: return "update";
    case MessageType::kDeltaBackfill: return "delta_backfill";
    case MessageType::kTenantScoped: return "tenant_scoped";
  }
  return "unknown";
}

}  // namespace

void CloudServer::store(sse::SecureIndex index, std::map<std::uint64_t, Bytes> files) {
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    index_ = std::move(index);
    files_ = std::move(files);
  }
  clear_rank_cache();
  refresh_storage_gauges();
}

void CloudServer::update_index(const std::function<void(sse::SecureIndex&)>& mutate) {
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    mutate(index_);
  }
  clear_rank_cache();
  refresh_storage_gauges();
}

void CloudServer::refresh_storage_gauges() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  std::uint64_t total = index_.byte_size();
  for (const auto& [id, blob] : files_) total += blob.size();
  metrics_.set_storage(total, index_.num_rows());
}

void CloudServer::set_rank_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) clear_rank_cache();
}

void CloudServer::clear_rank_cache() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  rank_cache_.clear();
}

std::vector<sse::RankedSearchEntry> CloudServer::ranked_entries(
    const sse::Trapdoor& trapdoor, std::size_t top_k) const {
  if (!overlay_.empty()) {
    // Dynamic path: tombstones and re-adds can suppress arbitrarily many
    // base hits, so the base row must be ranked in FULL (top_k = 0) and
    // the cut applied after the overlay merge. The rank cache is bypassed
    // — apply_update invalidates it, so serving from it here would race
    // with concurrent deltas.
    std::vector<sse::RankedSearchEntry> base;
    {
      const std::shared_lock<std::shared_mutex> lock(state_mutex_);
      base = sse::RsseScheme::search(index_, trapdoor, 0);
    }
    return overlay_.search(trapdoor, std::move(base), top_k);
  }
  if (!cache_enabled_) {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    return sse::RsseScheme::search(index_, trapdoor, top_k);
  }
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = rank_cache_.find(trapdoor.label);
    if (it != rank_cache_.end()) {
      metrics_.record_rank_cache(true);
      std::vector<sse::RankedSearchEntry> out = it->second;
      if (top_k > 0 && out.size() > top_k) out.resize(top_k);
      return out;
    }
    metrics_.record_rank_cache(false);
  }
  // Rank the full row once (top_k = 0), cache it, then truncate.
  std::vector<sse::RankedSearchEntry> full;
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    full = sse::RsseScheme::search(index_, trapdoor, 0);
  }
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    rank_cache_[trapdoor.label] = full;
  }
  if (top_k > 0 && full.size() > top_k) full.resize(top_k);
  return full;
}

void CloudServer::store_file(std::uint64_t id, Bytes blob) {
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    files_[id] = std::move(blob);
  }
  refresh_storage_gauges();
}

void CloudServer::erase_file(std::uint64_t id) {
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    files_.erase(id);
  }
  refresh_storage_gauges();
}

Bytes CloudServer::blob_of(std::uint64_t id) const {
  const auto it = files_.find(id);
  return it == files_.end() ? Bytes{} : it->second;
}

RankedSearchResponse CloudServer::ranked_search(const RankedSearchRequest& req) const {
  const auto ranked = ranked_entries(req.trapdoor, static_cast<std::size_t>(req.top_k));
  RankedSearchResponse resp;
  resp.files.reserve(ranked.size());
  std::size_t row_width = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    for (const sse::RankedSearchEntry& e : ranked)
      resp.files.push_back(RankedFile{e.file, e.opm_score, blob_of(ir::value(e.file))});
    if (transcript_) {
      const std::vector<Bytes>* row = index_.row(req.trapdoor.label);
      row_width = row ? row->size() : 0;
    }
  }
  if (transcript_) {
    // Outside the state lock: the sink has its own lock and may fire a
    // listener (the attack evaluator's notify()).
    std::vector<std::uint64_t> ids;
    ids.reserve(ranked.size());
    for (const sse::RankedSearchEntry& e : ranked) ids.push_back(ir::value(e.file));
    transcript_->record(req.trapdoor.label, row_width, std::move(ids));
  }
  return resp;
}

BasicEntriesResponse CloudServer::basic_entries(const BasicEntriesRequest& req) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return BasicEntriesResponse{sse::BasicScheme::search(index_, req.trapdoor)};
}

FetchFilesResponse CloudServer::fetch_files(const FetchFilesRequest& req) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  FetchFilesResponse resp;
  resp.files.reserve(req.ids.size());
  for (sse::FileId id : req.ids)
    resp.files.push_back(RankedFile{id, 0, blob_of(ir::value(id))});
  return resp;
}

BasicFilesResponse CloudServer::basic_files(const BasicEntriesRequest& req) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  BasicFilesResponse resp;
  for (const sse::BasicSearchEntry& e : sse::BasicScheme::search(index_, req.trapdoor))
    resp.files.push_back(BasicFile{e.file, e.encrypted_score, blob_of(ir::value(e.file))});
  return resp;
}

RankedSearchResponse CloudServer::multi_search(const MultiSearchRequest& req) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  RankedSearchResponse resp;
  const auto k = static_cast<std::size_t>(req.top_k);
  if (req.mode == MultiSearchMode::kConjunctive) {
    for (const auto& hit : ext::ConjunctiveRsse::search(index_, req.trapdoor, k))
      resp.files.push_back(
          RankedFile{hit.file, hit.aggregate_opm, blob_of(ir::value(hit.file))});
  } else {
    for (const auto& hit : ext::DisjunctiveRsse::search(index_, req.trapdoor, k))
      resp.files.push_back(
          RankedFile{hit.file, hit.aggregate_opm, blob_of(ir::value(hit.file))});
  }
  return resp;
}

SnapshotResponse CloudServer::snapshot() const {
  // Excluding appliers (update_mutex_ before state_mutex_, the same
  // order apply_update takes) makes files and overlay a consistent cut:
  // a peer repaired from this snapshot serves exactly the deltas this
  // server had applied, no torn half-delta.
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  SnapshotResponse resp;
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    resp.index = index_.serialize();
    resp.files.reserve(files_.size());
    for (const auto& [id, blob] : files_) resp.files.emplace_back(id, blob);
  }
  for (const seg::Segment& segment : overlay_.snapshot_segments())
    resp.segments.push_back(segment.serialize());
  resp.next_seq = overlay_.next_seq();
  return resp;
}

UpdateResponse CloudServer::apply_update(const UpdateRequest& req) const {
  // Serialize appliers: sequence assignment, file mutations and the
  // idempotency cache must agree on one order of deltas.
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  return apply_update_locked(req, nullptr, /*log=*/true);
}

UpdateResponse CloudServer::apply_update_locked(const UpdateRequest& req,
                                                const Bytes* delta_bytes,
                                                bool log) const {
  if (req.delta_id != 0) {
    // Transport-level retry of a delta already applied: replay the cached
    // response instead of double-applying. The window is a bounded ring,
    // so a retry survives other deltas landing in between (a second
    // client, coordinator retry interleaving) up to kUpdateReplayWindow
    // intervening applies.
    for (const auto& [id, response] : recent_updates_) {
      if (id == req.delta_id) {
        UpdateResponse replay = response;
        replay.replayed = true;
        return replay;
      }
    }
  }

  const seg::ApplyStats stats = overlay_.apply(req.delta);
  UpdateResponse resp;
  resp.entries_applied = stats.entries_applied;
  resp.tombstones_applied = stats.tombstones_applied;

  // File mutations in op order, so a remove+re-add within one delta
  // leaves the re-added blob (matching the overlay's sequence rule).
  struct FileOp {
    std::uint64_t op = 0;
    bool erase = false;
    const std::uint64_t* id = nullptr;
    const Bytes* blob = nullptr;
  };
  std::vector<FileOp> ops;
  ops.reserve(req.delta.file_puts.size() + req.delta.tombstones.size());
  for (const seg::FilePut& put : req.delta.file_puts)
    ops.push_back(FileOp{put.op, false, &put.id, &put.blob});
  for (const seg::Tombstone& tomb : req.delta.tombstones)
    ops.push_back(FileOp{tomb.op, true, &tomb.file_id, nullptr});
  std::sort(ops.begin(), ops.end(),
            [](const FileOp& a, const FileOp& b) { return a.op < b.op; });
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    for (const FileOp& op : ops) {
      if (op.erase) {
        resp.files_erased += files_.erase(*op.id);
      } else {
        files_[*op.id] = *op.blob;
        ++resp.files_stored;
      }
    }
  }
  clear_rank_cache();
  refresh_storage_gauges();

  // Durability: log the applied delta BEFORE the ack can leave. A failed
  // append throws without caching the response, so the owner's retry
  // re-applies — an add is an upsert (guard tombstone per add), so the
  // at-least-once outcome stays correct.
  seg::WalRecord record;
  record.delta_id = req.delta_id;
  record.first_seq = stats.first_seq;
  record.delta = delta_bytes != nullptr ? *delta_bytes : req.delta.serialize();
  if (log && wal_.attached()) wal_.append(record);
  wal_tail_.push_back(std::move(record));

  resp.sealed_segments = overlay_.sealed_count();
  resp.next_seq = overlay_.next_seq();
  metrics_.record_update(resp.entries_applied, resp.tombstones_applied);
  refresh_segment_gauges();
  seg::export_update_leakage_gauges(overlay_.leakage(), metrics_.registry());
  if (req.delta_id != 0) {
    if (recent_updates_.size() < kUpdateReplayWindow) {
      recent_updates_.emplace_back(req.delta_id, resp);
    } else {
      recent_updates_[recent_updates_cursor_] = {req.delta_id, resp};
      recent_updates_cursor_ = (recent_updates_cursor_ + 1) % kUpdateReplayWindow;
    }
  }
  if (compactor_) compactor_->notify();
  return resp;
}

void CloudServer::enable_background_compaction(seg::CompactorOptions options) {
  if (compactor_) return;
  compactor_ = std::make_unique<seg::Compactor>(overlay_, options,
                                                &metrics_.registry());
}

void CloudServer::wait_for_compaction_idle() const {
  if (compactor_) compactor_->wait_for_idle();
}

bool CloudServer::compact_segments_once() {
  overlay_.seal();
  const auto stats = overlay_.compact_once();
  refresh_segment_gauges();
  seg::export_update_leakage_gauges(overlay_.leakage(), metrics_.registry());
  return stats.has_value();
}

std::uint64_t CloudServer::compactions_completed() const {
  return compactor_ ? compactor_->completed() : 0;
}

void CloudServer::restore_segments(std::vector<seg::Segment> segments,
                                   std::uint64_t next_seq) {
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  restore_segments_locked(std::move(segments), next_seq);
}

void CloudServer::restore_segments_locked(std::vector<seg::Segment> segments,
                                          std::uint64_t next_seq) {
  overlay_.restore(std::move(segments), next_seq);
  // A restored overlay invalidates everything keyed to the previous
  // sequence history: the replay ring and the retained WAL tail.
  recent_updates_.clear();
  recent_updates_cursor_ = 0;
  wal_tail_.clear();
  if (wal_.attached()) wal_.rewrite(wal_tail_);
  clear_rank_cache();
  refresh_segment_gauges();
}

DeltaBackfillResponse CloudServer::delta_backfill(const DeltaBackfillRequest& req) const {
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  DeltaBackfillResponse resp;
  resp.next_seq = overlay_.next_seq();
  if (req.from_seq >= resp.next_seq) return resp;  // current (or a probe)
  // The suffix must start exactly at from_seq: the requester replays
  // records in order against its own sequence counter, so a gap — the
  // tail was checkpointed past from_seq — means only a snapshot helps.
  bool found = false;
  for (const seg::WalRecord& record : wal_tail_) {
    if (!found) {
      if (record.first_seq == req.from_seq) {
        found = true;
      } else if (record.first_seq > req.from_seq) {
        break;
      } else {
        continue;
      }
    }
    resp.records.push_back(record.serialize());
    if (req.max_records != 0 && resp.records.size() >= req.max_records) break;
  }
  if (!found) {
    resp.truncated = true;
    resp.records.clear();
  }
  return resp;
}

std::size_t CloudServer::attach_wal(const std::string& path) {
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  const seg::WalScan scan = seg::WriteAheadLog::scan_file(path);
  std::size_t replayed = 0;
  for (const seg::WalRecord& record : scan.records) {
    const std::uint64_t next = overlay_.next_seq();
    if (record.first_seq < next) continue;  // a persisted save covers it
    if (record.first_seq != next)
      throw IntegrityError("attach_wal: log does not continue the overlay (record seq " +
                           std::to_string(record.first_seq) + ", overlay at " +
                           std::to_string(next) + "): " + path);
    UpdateRequest req;
    req.delta_id = record.delta_id;
    req.delta = seg::UpdateDelta::deserialize(record.delta);
    (void)apply_update_locked(req, &record.delta, /*log=*/false);
    ++replayed;
  }
  wal_.open(path);
  // Compact the file when replay dropped anything (snapshot-covered
  // records, a torn tail) or in-memory applies predate the attach; a
  // clean fully-replayed log is left byte-identical, appends continue.
  if (scan.torn_tail || wal_tail_.size() != scan.records.size())
    wal_.rewrite(wal_tail_);
  return replayed;
}

void CloudServer::checkpoint_wal(std::uint64_t persisted_next_seq) const {
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  const std::size_t before = wal_tail_.size();
  while (!wal_tail_.empty() && wal_tail_.front().first_seq < persisted_next_seq)
    wal_tail_.pop_front();
  if (wal_.attached() && before != wal_tail_.size()) wal_.rewrite(wal_tail_);
}

std::size_t CloudServer::wal_tail_records() const {
  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  return wal_tail_.size();
}

void CloudServer::install_snapshot(const SnapshotResponse& snap) {
  // Parse outside the locks; a malformed snapshot must not leave a
  // half-replaced server.
  sse::SecureIndex index = sse::SecureIndex::deserialize(snap.index);
  std::vector<seg::Segment> segments;
  segments.reserve(snap.segments.size());
  for (const Bytes& blob : snap.segments)
    segments.push_back(seg::Segment::deserialize(blob));
  std::map<std::uint64_t, Bytes> files;
  for (const auto& [id, blob] : snap.files) files[id] = blob;

  const std::lock_guard<std::mutex> update_lock(update_mutex_);
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    index_ = std::move(index);
    files_ = std::move(files);
  }
  restore_segments_locked(std::move(segments), snap.next_seq);
  refresh_storage_gauges();
}

void CloudServer::refresh_segment_gauges() const {
  metrics_.set_segment_state(overlay_.sealed_count(), overlay_.memtable_entries(),
                             overlay_.tombstone_count());
}

std::uint64_t CloudServer::stored_bytes() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  std::uint64_t total = index_.byte_size();
  for (const auto& [id, blob] : files_) total += blob.size();
  return total;
}

Bytes CloudServer::handle(MessageType type, BytesView payload) const {
  const Stopwatch watch;
  Bytes out = handle_impl(type, payload, nullptr, 0);
  if (slow_log_.maybe_record(message_name(type), watch.elapsed_seconds(), {},
                             tenant_tag_)) {
    metrics_.record_slow_query();
  }
  return out;
}

Bytes CloudServer::handle(MessageType type, BytesView payload,
                          const obs::TraceContext& ctx,
                          std::vector<obs::Span>* spans) const {
  if (!ctx.active() || spans == nullptr) return handle(type, payload);
  const Stopwatch watch;
  obs::TraceRecorder recorder(ctx.trace_id);
  // The root span must reach the client even when the handler throws —
  // an error response carries no spans, but the slow log still gets them.
  Bytes out;
  try {
    out = handle_impl(type, payload, &recorder, ctx.parent_span_id);
  } catch (...) {
    if (slow_log_.maybe_record(message_name(type), watch.elapsed_seconds(),
                               recorder.spans(), tenant_tag_)) {
      metrics_.record_slow_query();
    }
    throw;
  }
  *spans = recorder.spans();
  if (slow_log_.maybe_record(message_name(type), watch.elapsed_seconds(), *spans,
                             tenant_tag_)) {
    metrics_.record_slow_query();
  }
  return out;
}

Bytes CloudServer::handle_impl(MessageType type, BytesView payload,
                               obs::TraceRecorder* trace,
                               std::uint64_t parent_span_id) const {
  const Stopwatch watch;
  obs::SpanScope root(trace, std::string("server.") + message_name(type), node_name_,
                      parent_span_id);
  try {
    switch (type) {
      case MessageType::kRankedSearch: {
        // The traced stages: parse, index lookup + rank, serialize. Event
        // details carry only counts and sizes, never content. The profile
        // scopes aggregate the same stages into per-stage histograms.
        static const auto kParseStage = obs::Profiler::global().stage("server/parse");
        static const auto kRankStage = obs::Profiler::global().stage("server/rank");
        static const auto kSerializeStage =
            obs::Profiler::global().stage("server/serialize");
        obs::SpanScope parse(trace, "server.parse", node_name_, root.span_id());
        obs::ProfileScope parse_profile(kParseStage);
        const auto req = RankedSearchRequest::deserialize(payload);
        parse_profile.finish();
        parse.finish();
        obs::SpanScope rank(trace, "server.index_rank", node_name_, root.span_id());
        obs::ProfileScope rank_profile(kRankStage);
        const auto resp = ranked_search(req);
        rank_profile.finish();
        rank.event("ranked", std::to_string(resp.files.size()) + " hits");
        rank.finish();
        obs::SpanScope serialize(trace, "server.serialize", node_name_,
                                 root.span_id());
        obs::ProfileScope serialize_profile(kSerializeStage);
        Bytes out = resp.serialize();
        serialize_profile.finish();
        serialize.finish();
        metrics_.record_ranked_search(resp.files.size(), out.size());
        metrics_.record_latency(ServerMetrics::RequestKind::kRankedSearch,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kBasicEntries: {
        const auto resp = basic_entries(BasicEntriesRequest::deserialize(payload));
        Bytes out = resp.serialize();
        metrics_.record_basic_entries(out.size());
        metrics_.record_latency(ServerMetrics::RequestKind::kBasicEntries,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kFetchFiles: {
        const auto resp = fetch_files(FetchFilesRequest::deserialize(payload));
        Bytes out = resp.serialize();
        metrics_.record_fetch(resp.files.size(), out.size());
        metrics_.record_latency(ServerMetrics::RequestKind::kFetchFiles,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kBasicFiles: {
        const auto resp = basic_files(BasicEntriesRequest::deserialize(payload));
        Bytes out = resp.serialize();
        metrics_.record_basic_files(resp.files.size(), out.size());
        metrics_.record_latency(ServerMetrics::RequestKind::kBasicFiles,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kMultiSearch: {
        static const auto kRankStage = obs::Profiler::global().stage("server/rank");
        obs::SpanScope rank(trace, "server.index_rank", node_name_, root.span_id());
        obs::ProfileScope rank_profile(kRankStage);
        const auto resp = multi_search(MultiSearchRequest::deserialize(payload));
        rank_profile.finish();
        rank.event("ranked", std::to_string(resp.files.size()) + " hits");
        rank.finish();
        Bytes out = resp.serialize();
        metrics_.record_multi_search(resp.files.size(), out.size());
        metrics_.record_latency(ServerMetrics::RequestKind::kMultiSearch,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kSnapshot: {
        (void)SnapshotRequest::deserialize(payload);
        Bytes out = snapshot().serialize();
        metrics_.record_snapshot(out.size());
        return out;
      }
      case MessageType::kStats: {
        const auto req = StatsRequest::deserialize(payload);
        StatsResponse resp;
        resp.text = req.format == StatsFormat::kPrometheus
                        ? metrics_.registry().render_prometheus()
                        : metrics_.registry().render_json();
        return resp.serialize();
      }
      case MessageType::kUpdate: {
        static const auto kParseStage =
            obs::Profiler::global().stage("server/update_parse");
        static const auto kApplyStage =
            obs::Profiler::global().stage("server/update_apply");
        obs::SpanScope parse(trace, "server.parse", node_name_, root.span_id());
        obs::ProfileScope parse_profile(kParseStage);
        const auto req = UpdateRequest::deserialize(payload);
        parse_profile.finish();
        parse.finish();
        obs::SpanScope apply(trace, "server.update_apply", node_name_,
                             root.span_id());
        obs::ProfileScope apply_profile(kApplyStage);
        const auto resp = apply_update(req);
        apply_profile.finish();
        apply.event("applied", std::to_string(resp.entries_applied) + " entries, " +
                                   std::to_string(resp.tombstones_applied) +
                                   " tombstones");
        apply.finish();
        Bytes out = resp.serialize();
        metrics_.record_latency(ServerMetrics::RequestKind::kUpdate,
                                watch.elapsed_seconds());
        return out;
      }
      case MessageType::kDeltaBackfill: {
        const auto req = DeltaBackfillRequest::deserialize(payload);
        return delta_backfill(req).serialize();
      }
      case MessageType::kTrace: {
        const auto req = TraceRequest::deserialize(payload);
        auto entries = slow_log_.entries();
        if (req.max_entries > 0 && entries.size() > req.max_entries) {
          entries.erase(entries.begin(),
                        entries.end() - static_cast<std::ptrdiff_t>(req.max_entries));
        }
        TraceResponse resp;
        resp.entries.reserve(entries.size());
        for (auto& e : entries) {
          resp.entries.push_back(TraceEntry{std::move(e.operation),
                                            std::move(e.tenant), e.seconds,
                                            std::move(e.spans)});
        }
        return resp.serialize();
      }
      case MessageType::kTenantScoped:
        // A bare CloudServer has no tenant registry or admission control;
        // only a tenant::TenantHost can unwrap the envelope.
        throw ProtocolError(
            "CloudServer: tenant-scoped requests require a tenant host");
    }
    throw ProtocolError("CloudServer: unknown message type");
  } catch (const Error&) {
    root.set_status("error");
    throw;
  }
}

}  // namespace rsse::cloud
