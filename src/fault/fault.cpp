#include "fault/fault.h"

#include "util/errors.h"

namespace rsse::fault {

FaultSchedule::FaultSchedule(FaultSpec spec) : spec_(spec), rng_(spec.seed) {
  detail::require(spec_.total_rate() <= 1.0 + 1e-9,
                  "FaultSchedule: fault rates sum past 1");
  detail::require(spec_.delay_rate >= 0 && spec_.disconnect_rate >= 0 &&
                      spec_.error_rate >= 0 && spec_.truncate_rate >= 0 &&
                      spec_.bit_flip_rate >= 0,
                  "FaultSchedule: negative fault rate");
  detail::require(spec_.delay_min <= spec_.delay_max,
                  "FaultSchedule: delay_min > delay_max");
}

FaultDecision FaultSchedule::next() {
  // One uniform draw walks the cumulative rate thresholds, so the
  // per-event fault mix matches the spec exactly and the whole decision
  // costs a single PRNG step (plus two for delay/entropy parameters).
  double u = 0.0;
  FaultDecision decision;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    u = rng_.next_double();
    double edge = spec_.delay_rate;
    if (u < edge) {
      decision.kind = FaultKind::kDelay;
      decision.delay = std::chrono::milliseconds(
          rng_.uniform_in(static_cast<std::uint64_t>(spec_.delay_min.count()),
                          static_cast<std::uint64_t>(spec_.delay_max.count())));
    } else if (u < (edge += spec_.disconnect_rate)) {
      decision.kind = FaultKind::kDisconnect;
    } else if (u < (edge += spec_.error_rate)) {
      decision.kind = FaultKind::kErrorFrame;
    } else if (u < (edge += spec_.truncate_rate)) {
      decision.kind = FaultKind::kTruncate;
      decision.entropy = rng_.next_u64();
    } else if (u < (edge += spec_.bit_flip_rate)) {
      decision.kind = FaultKind::kBitFlip;
      decision.entropy = rng_.next_u64();
    }
  }
  ++events_;
  switch (decision.kind) {
    case FaultKind::kNone: break;
    case FaultKind::kDelay: ++delays_; break;
    case FaultKind::kDisconnect: ++disconnects_; break;
    case FaultKind::kErrorFrame: ++error_frames_; break;
    case FaultKind::kTruncate: ++truncations_; break;
    case FaultKind::kBitFlip: ++bit_flips_; break;
  }
  return decision;
}

FaultCounters FaultSchedule::counters() const {
  FaultCounters c;
  c.events = events_.load();
  c.delays = delays_.load();
  c.disconnects = disconnects_.load();
  c.error_frames = error_frames_.load();
  c.truncations = truncations_.load();
  c.bit_flips = bit_flips_.load();
  return c;
}

}  // namespace rsse::fault
