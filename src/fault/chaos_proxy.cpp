#include "fault/chaos_proxy.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "util/errors.h"

namespace rsse::fault {

ChaosProxy::ChaosProxy(std::uint16_t target_port, FaultSpec spec)
    : listener_(0), target_port_(target_port), schedule_(spec) {
  if (::pipe(stop_pipe_) != 0) throw ProtocolError("ChaosProxy: pipe failed");
  accept_thread_ = std::thread([this] { serve(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  // Wake every relay poll(), then unblock accept().
  (void)!::write(stop_pipe_[1], "x", 1);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers)
    if (worker.joinable()) worker.join();
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
}

void ChaosProxy::serve() {
  for (;;) {
    net::Socket client = listener_.accept();
    if (!client.valid()) return;  // listener closed: shutting down
    if (stopping_.load()) return;
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, conn = std::move(client)]() mutable {
      relay(std::move(conn));
    });
  }
}

void ChaosProxy::relay(net::Socket client) {
  net::Socket server;
  try {
    server = net::tcp_connect(target_port_);
  } catch (const Error&) {
    return;  // target down: the client sees a closed connection
  }

  std::array<std::uint8_t, 4096> buffer;
  for (;;) {
    std::array<pollfd, 3> fds{{{client.fd(), POLLIN, 0},
                               {server.fd(), POLLIN, 0},
                               {stop_pipe_[0], POLLIN, 0}}};
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[2].revents & POLLIN) != 0 || stopping_.load()) return;

    for (int side = 0; side < 2; ++side) {
      if ((fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const net::Socket& from = side == 0 ? client : server;
      const net::Socket& to = side == 0 ? server : client;
      const ssize_t n = ::recv(from.fd(), buffer.data(), buffer.size(), 0);
      if (n <= 0) return;  // EOF or error: drop both sides

      std::size_t len = static_cast<std::size_t>(n);
      const FaultDecision decision = schedule_.next();
      switch (decision.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kDelay:
          std::this_thread::sleep_for(decision.delay);
          break;
        case FaultKind::kDisconnect:
        case FaultKind::kErrorFrame:  // no raw-stream equivalent: drop too
          return;
        case FaultKind::kTruncate: {
          // Forward a strict prefix, then drop the connection — a torn
          // delivery, not a reordering.
          len = decision.entropy % len;
          if (len > 0) {
            try {
              to.send_all(BytesView(buffer.data(), len));
            } catch (const Error&) {
            }
          }
          return;
        }
        case FaultKind::kBitFlip: {
          const std::uint64_t bit = decision.entropy % (len * 8);
          buffer[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          break;
        }
      }
      try {
        to.send_all(BytesView(buffer.data(), len));
      } catch (const Error&) {
        return;  // peer gone mid-forward
      }
    }
  }
}

}  // namespace rsse::fault
