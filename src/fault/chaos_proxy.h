// A TCP chaos proxy: the faulty-network shim for the real socket path.
//
// Listens on an ephemeral loopback port and forwards every connection to
// a target port, applying the FaultSchedule per forwarded chunk: stalls,
// connection drops, truncated deliveries and bit flips hit the actual
// byte stream, so the frame protocol's length checks, the client's
// deserializers and the deadline-bounded socket I/O are exercised
// against genuine wire corruption — not just decorator-level sabotage.
// (kErrorFrame has no raw-stream equivalent and acts as a disconnect.)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "net/socket.h"

namespace rsse::fault {

/// The proxy. Construction binds and starts accepting; stop() (or the
/// destructor) tears everything down, dropping live connections.
class ChaosProxy {
 public:
  /// Starts a proxy on an ephemeral port forwarding to
  /// 127.0.0.1:`target_port`. Throws InvalidArgument on a bad spec and
  /// ProtocolError when the listener cannot bind.
  ChaosProxy(std::uint16_t target_port, FaultSpec spec);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The port clients should connect to instead of the target's.
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, drops live connections, joins the workers
  /// (idempotent).
  void stop();

  /// What has been injected so far.
  [[nodiscard]] FaultCounters counters() const { return schedule_.counters(); }

 private:
  void serve();
  void relay(net::Socket client);

  net::TcpListener listener_;
  std::uint16_t target_port_;
  FaultSchedule schedule_;
  std::atomic<bool> stopping_{false};
  int stop_pipe_[2] = {-1, -1};  // poll-interruptible shutdown signal
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace rsse::fault
