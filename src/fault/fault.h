// Deterministic fault injection: the schedule that decides, per event,
// whether (and how) to misbehave.
//
// Chaos testing is only useful when a failing run can be replayed, so
// every decision comes from a seeded xoshiro256** stream: the same
// FaultSpec (rates + seed) produces the same fault sequence, call for
// call. The schedule is shared by the two injection points — the
// Transport decorator (fault_transport.h) that corrupts whole RPCs, and
// the TCP chaos proxy (chaos_proxy.h) that corrupts the byte stream —
// so one spec drives both layers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "util/rng.h"

namespace rsse::fault {

/// What the schedule decided to do to one event.
enum class FaultKind : std::uint8_t {
  kNone = 0,        ///< behave normally
  kDelay = 1,       ///< stall (a slow or hung peer)
  kDisconnect = 2,  ///< drop the connection / fail the call
  kErrorFrame = 3,  ///< answer with a server error instead of a response
  kTruncate = 4,    ///< deliver only a prefix of the payload
  kBitFlip = 5,     ///< deliver the payload with one bit flipped
};

/// Fault rates and shape. Rates are independent probabilities per event
/// (per RPC for the transport decorator, per forwarded chunk for the
/// proxy); their sum must stay <= 1 — the remainder is the no-fault case.
struct FaultSpec {
  double delay_rate = 0.0;
  double disconnect_rate = 0.0;
  double error_rate = 0.0;
  double truncate_rate = 0.0;
  double bit_flip_rate = 0.0;
  std::chrono::milliseconds delay_min{1};   ///< injected stall lower bound
  std::chrono::milliseconds delay_max{20};  ///< injected stall upper bound
  std::uint64_t seed = 1;                   ///< reproducibility anchor

  /// Sum of all fault rates (the per-event fault probability).
  [[nodiscard]] double total_rate() const {
    return delay_rate + disconnect_rate + error_rate + truncate_rate + bit_flip_rate;
  }
};

/// One drawn decision: the kind plus the parameters the injector needs
/// (how long to stall; entropy for choosing truncation points and bit
/// positions deterministically).
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  std::chrono::milliseconds delay{0};
  std::uint64_t entropy = 0;
};

/// Injection counts so far (what actually happened, for assertions).
struct FaultCounters {
  std::uint64_t events = 0;  ///< decisions drawn (faulty or not)
  std::uint64_t delays = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t error_frames = 0;
  std::uint64_t truncations = 0;
  std::uint64_t bit_flips = 0;

  [[nodiscard]] std::uint64_t total_faults() const {
    return delays + disconnects + error_frames + truncations + bit_flips;
  }
};

/// The seeded decision stream. Thread-safe: concurrent callers draw
/// decisions in some serialized order, and a fixed seed fixes that
/// sequence of decisions (under concurrency the *assignment* of
/// decisions to callers follows scheduling; single-threaded replays are
/// bit-exact). Throws InvalidArgument when the rates sum past 1 or the
/// delay bounds are inverted.
class FaultSchedule {
 public:
  explicit FaultSchedule(FaultSpec spec);

  /// Draws the next decision from the stream.
  FaultDecision next();

  /// What has been injected so far.
  [[nodiscard]] FaultCounters counters() const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  std::mutex mutex_;  // guards rng_
  Xoshiro256 rng_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> error_frames_{0};
  std::atomic<std::uint64_t> truncations_{0};
  std::atomic<std::uint64_t> bit_flips_{0};
};

}  // namespace rsse::fault
