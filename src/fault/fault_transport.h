// A fault-injecting cloud::Transport decorator.
//
// Wraps any Transport (in-process Channel, RemoteChannel, even a whole
// coordinator) and misbehaves per a deterministic FaultSchedule: stalls
// like a hung replica (bounded by the caller's deadline — a stall past
// the budget becomes DeadlineExceeded, exactly what a real hung peer
// produces), fails like a dropped connection, answers with error frames,
// or delivers truncated / bit-flipped responses that the caller's
// deserializer must reject. Because it sits on the Transport seam, every
// resilience layer above it — ReplicaSet failover, coordinator
// degradation, client retries — is exercised without a real network.
#pragma once

#include <memory>

#include "cloud/channel.h"
#include "fault/fault.h"

namespace rsse::fault {

/// The decorator. Thread-safe to the extent the inner transport is; the
/// schedule itself is thread-safe.
class FaultInjectingTransport final : public cloud::Transport {
 public:
  /// Takes ownership of the transport to wrap. Throws InvalidArgument on
  /// a null inner transport or an invalid spec.
  FaultInjectingTransport(std::unique_ptr<cloud::Transport> inner, FaultSpec spec);

  /// One RPC, possibly sabotaged. Injected failures surface as the same
  /// typed errors real ones do: ProtocolError for disconnects and error
  /// frames, DeadlineExceeded for stalls that outlive the deadline;
  /// truncations and bit flips corrupt the returned payload and are
  /// caught by the caller's deserializer (ParseError).
  using cloud::Transport::call;
  Bytes call(cloud::MessageType type, BytesView request,
             const Deadline& deadline) override;

  /// Traced RPC: the decorator is transparent to tracing — the context
  /// passes through to the inner transport, so injected failures show up
  /// in the caller's spans as what they imitate (a failed or hung
  /// attempt), not as an extra hop.
  Bytes call(cloud::MessageType type, BytesView request, const Deadline& deadline,
             obs::TraceRecorder* trace, std::uint64_t parent_span_id) override;

  /// What has been injected so far.
  [[nodiscard]] FaultCounters counters() const { return schedule_.counters(); }

  /// The wrapped transport (for assertions on its stats).
  [[nodiscard]] cloud::Transport& inner() { return *inner_; }

 private:
  Bytes call_impl(cloud::MessageType type, BytesView request, const Deadline& deadline,
                  obs::TraceRecorder* trace, std::uint64_t parent_span_id);

  std::unique_ptr<cloud::Transport> inner_;
  FaultSchedule schedule_;
};

}  // namespace rsse::fault
