#include "fault/fault_transport.h"

#include <algorithm>
#include <thread>

#include "util/errors.h"

namespace rsse::fault {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<cloud::Transport> inner, FaultSpec spec)
    : inner_(std::move(inner)), schedule_(spec) {
  detail::require(inner_ != nullptr, "FaultInjectingTransport: null transport");
}

Bytes FaultInjectingTransport::call(cloud::MessageType type, BytesView request,
                                    const Deadline& deadline) {
  return call_impl(type, request, deadline, nullptr, 0);
}

Bytes FaultInjectingTransport::call(cloud::MessageType type, BytesView request,
                                    const Deadline& deadline,
                                    obs::TraceRecorder* trace,
                                    std::uint64_t parent_span_id) {
  return call_impl(type, request, deadline, trace, parent_span_id);
}

Bytes FaultInjectingTransport::call_impl(cloud::MessageType type, BytesView request,
                                         const Deadline& deadline,
                                         obs::TraceRecorder* trace,
                                         std::uint64_t parent_span_id) {
  const FaultDecision decision = schedule_.next();
  switch (decision.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDelay: {
      // A hung peer holds the caller until its budget runs out; a merely
      // slow one holds it for the injected stall and then answers.
      if (!deadline.is_unlimited() && decision.delay >= deadline.remaining()) {
        std::this_thread::sleep_for(deadline.remaining());
        throw DeadlineExceeded("fault: injected hang outlived the deadline");
      }
      std::this_thread::sleep_for(decision.delay);
      break;
    }
    case FaultKind::kDisconnect:
      throw ProtocolError("fault: injected disconnect");
    case FaultKind::kErrorFrame:
      throw ProtocolError("fault: injected server error frame");
    case FaultKind::kTruncate: {
      Bytes response = inner_->call(type, request, deadline, trace, parent_span_id);
      if (!response.empty())
        response.resize(decision.entropy % response.size());
      account(request.size() + 1, response.size());
      return response;
    }
    case FaultKind::kBitFlip: {
      Bytes response = inner_->call(type, request, deadline, trace, parent_span_id);
      if (!response.empty()) {
        const std::uint64_t bit = decision.entropy % (response.size() * 8);
        response[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      account(request.size() + 1, response.size());
      return response;
    }
  }
  Bytes response = inner_->call(type, request, deadline, trace, parent_span_id);
  account(request.size() + 1, response.size());
  return response;
}

}  // namespace rsse::fault
