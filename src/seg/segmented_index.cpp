#include "seg/segmented_index.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "sse/entry_codec.h"
#include "util/errors.h"

namespace rsse::seg {

namespace {

/// The scheme-wide ranking order: OPM value descending, file id ascending.
bool ranked_less(const sse::RankedSearchEntry& a, const sse::RankedSearchEntry& b) {
  if (a.opm_score != b.opm_score) return a.opm_score > b.opm_score;
  return ir::value(a.file) < ir::value(b.file);
}

}  // namespace

void SegmentedIndex::set_policy(SegPolicy policy) {
  std::unique_lock lock(mutex_);
  policy_ = policy;
}

ApplyStats SegmentedIndex::apply(const UpdateDelta& delta) {
  std::unique_lock lock(mutex_);
  ApplyStats stats;
  // The owner speaks in relative op indices; the server owns the global
  // sequence counter, so replicated/sharded appliers stay consistent as
  // long as they see the same delta stream.
  const std::uint64_t base_seq = next_seq_;
  stats.first_seq = base_seq;
  for (const RowDelta& row : delta.rows) {
    std::vector<SeqEntry> entries;
    entries.reserve(row.entries.size());
    for (const DeltaEntry& e : row.entries) {
      entries.push_back(SeqEntry{e.ciphertext, base_seq + e.op});
    }
    stats.entries_applied += entries.size();
    std::vector<SeqEntry>& mem_row = mem_.rows[row.label];
    mem_row.insert(mem_row.end(), std::make_move_iterator(entries.begin()),
                   std::make_move_iterator(entries.end()));
  }
  mem_.entries += stats.entries_applied;
  for (const Tombstone& t : delta.tombstones) {
    std::uint64_t& stored = mem_.tombstones[t.file_id];
    stored = std::max(stored, base_seq + t.op);
    ++stats.tombstones_applied;
  }
  next_seq_ += delta.op_count;

  ++leakage_.updates;
  leakage_.keywords_touched_total += delta.rows.size();
  leakage_.keywords_touched_max =
      std::max<std::uint64_t>(leakage_.keywords_touched_max, delta.rows.size());
  leakage_.entries_total += stats.entries_applied;
  leakage_.tombstones_total += stats.tombstones_applied;

  if (mem_.entries + mem_.tombstones.size() >= policy_.memtable_max_entries) {
    stats.sealed = seal_locked();
  }
  return stats;
}

bool SegmentedIndex::seal() {
  std::unique_lock lock(mutex_);
  return seal_locked();
}

bool SegmentedIndex::seal_locked() {
  if (mem_.rows.empty() && mem_.tombstones.empty()) return false;
  auto segment = std::make_shared<Segment>();
  for (auto& [label, entries] : mem_.rows) {
    segment->add_entries(label, std::move(entries));
  }
  for (const auto& [file_id, seq] : mem_.tombstones) {
    segment->add_tombstone(file_id, seq);
  }
  sealed_.push_back(std::move(segment));
  mem_ = Memtable{};
  return true;
}

std::optional<CompactionStats> SegmentedIndex::compact_once() {
  // Snapshot the sealed list under the shared lock; merge outside any
  // lock; swap back in only if the snapshotted prefix is still intact.
  std::vector<std::shared_ptr<const Segment>> sources;
  {
    std::shared_lock lock(mutex_);
    if (sealed_.size() < 2) return std::nullopt;
    sources = sealed_;
  }

  CompactionStats stats;
  stats.segments_merged = sources.size();
  auto merged = std::make_shared<Segment>();
  std::map<Bytes, std::uint64_t> label_sources;
  for (const auto& source : sources) {
    for (const auto& [label, entries] : source->rows()) {
      merged->add_entries(label, std::vector<SeqEntry>(entries));
      ++label_sources[label];
    }
    for (const auto& [file_id, seq] : source->tombstones()) {
      merged->add_tombstone(file_id, seq);
    }
  }
  for (const auto& [label, count] : label_sources) {
    if (count >= 2) {
      ++stats.cooccurrence_groups;
      stats.rows_coalesced += count;
    }
  }
  stats.rows_out = merged->rows().size();
  stats.entries_out = merged->entry_count();
  stats.tombstones_out = merged->tombstones().size();

  {
    std::unique_lock lock(mutex_);
    // Seals only append at the back, so a surviving snapshot is exactly a
    // prefix of the current list. Verify by pointer identity; bail if
    // another compaction already replaced part of it.
    if (sealed_.size() < sources.size()) return std::nullopt;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sealed_[i] != sources[i]) return std::nullopt;
    }
    std::vector<std::shared_ptr<const Segment>> next;
    next.reserve(sealed_.size() - sources.size() + 1);
    next.push_back(std::move(merged));
    next.insert(next.end(), sealed_.begin() + static_cast<std::ptrdiff_t>(sources.size()),
                sealed_.end());
    sealed_ = std::move(next);
    ++compactions_;
    ++leakage_.compactions;
    leakage_.compaction_cooccurrence_groups += stats.cooccurrence_groups;
    leakage_.compaction_rows_coalesced += stats.rows_coalesced;
  }
  return stats;
}

std::vector<sse::RankedSearchEntry> SegmentedIndex::search(
    const sse::Trapdoor& trapdoor, std::vector<sse::RankedSearchEntry> base,
    std::size_t top_k) const {
  // Candidates carry their sequence so tombstone filtering and per-file
  // supersession can run after all layers are collected.
  struct Candidate {
    sse::RankedSearchEntry entry;
    std::uint64_t seq = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(base.size());
  for (sse::RankedSearchEntry& e : base) {
    candidates.push_back(Candidate{e, 0});
  }

  std::map<std::uint64_t, std::uint64_t> tombstones;
  const auto absorb_tombstones =
      [&tombstones](const std::map<std::uint64_t, std::uint64_t>& source) {
        for (const auto& [file_id, seq] : source) {
          std::uint64_t& stored = tombstones[file_id];
          stored = std::max(stored, seq);
        }
      };
  const auto absorb_row = [&](const std::vector<SeqEntry>& row) {
    for (const SeqEntry& e : row) {
      const auto posting = sse::decrypt_entry(trapdoor.list_key, e.ciphertext,
                                              sse::kRsseScoreFieldSize);
      if (!posting) continue;  // padding or foreign-row ciphertext
      ByteReader reader(posting->score_field);
      candidates.push_back(
          Candidate{sse::RankedSearchEntry{posting->file, reader.read_u64()}, e.seq});
    }
  };

  {
    std::shared_lock lock(mutex_);
    for (const auto& segment : sealed_) {
      if (const std::vector<SeqEntry>* row = segment->row(trapdoor.label)) {
        absorb_row(*row);
      }
      absorb_tombstones(segment->tombstones());
    }
    if (const auto it = mem_.rows.find(trapdoor.label); it != mem_.rows.end()) {
      absorb_row(it->second);
    }
    absorb_tombstones(mem_.tombstones);
  }

  // Per file: drop candidates superseded by a later re-add, then apply the
  // tombstone rule (suppressed iff tombstone seq strictly exceeds the
  // surviving entry's seq — add and remove never share a sequence).
  std::map<std::uint64_t, Candidate> latest;
  for (Candidate& c : candidates) {
    const std::uint64_t file = ir::value(c.entry.file);
    const auto [it, inserted] = latest.emplace(file, c);
    if (!inserted && c.seq > it->second.seq) it->second = c;
  }
  std::vector<sse::RankedSearchEntry> out;
  out.reserve(latest.size());
  for (const auto& [file, c] : latest) {
    const auto tomb = tombstones.find(file);
    if (tomb != tombstones.end() && tomb->second > c.seq) continue;
    out.push_back(c.entry);
  }
  std::sort(out.begin(), out.end(), ranked_less);
  if (top_k != 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

bool SegmentedIndex::empty() const {
  std::shared_lock lock(mutex_);
  return sealed_.empty() && mem_.rows.empty() && mem_.tombstones.empty();
}

std::size_t SegmentedIndex::sealed_count() const {
  std::shared_lock lock(mutex_);
  return sealed_.size();
}

std::size_t SegmentedIndex::memtable_entries() const {
  std::shared_lock lock(mutex_);
  return mem_.entries;
}

std::size_t SegmentedIndex::tombstone_count() const {
  std::shared_lock lock(mutex_);
  std::set<std::uint64_t> files;
  for (const auto& segment : sealed_) {
    for (const auto& [file_id, seq] : segment->tombstones()) files.insert(file_id);
  }
  for (const auto& [file_id, seq] : mem_.tombstones) files.insert(file_id);
  return files.size();
}

std::uint64_t SegmentedIndex::byte_size() const {
  std::shared_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& segment : sealed_) total += segment->byte_size();
  for (const auto& [label, entries] : mem_.rows) {
    total += label.size();
    for (const SeqEntry& e : entries) total += e.ciphertext.size() + 8;
  }
  total += 16 * mem_.tombstones.size();
  return total;
}

std::uint64_t SegmentedIndex::next_seq() const {
  std::shared_lock lock(mutex_);
  return next_seq_;
}

std::uint64_t SegmentedIndex::compactions() const {
  std::shared_lock lock(mutex_);
  return compactions_;
}

UpdateLeakage SegmentedIndex::leakage() const {
  std::shared_lock lock(mutex_);
  return leakage_;
}

std::vector<Segment> SegmentedIndex::snapshot_segments() const {
  std::shared_lock lock(mutex_);
  std::vector<Segment> out;
  out.reserve(sealed_.size() + 1);
  for (const auto& segment : sealed_) out.push_back(*segment);
  if (!mem_.rows.empty() || !mem_.tombstones.empty()) {
    Segment frozen;
    for (const auto& [label, entries] : mem_.rows) {
      frozen.add_entries(label, std::vector<SeqEntry>(entries));
    }
    for (const auto& [file_id, seq] : mem_.tombstones) {
      frozen.add_tombstone(file_id, seq);
    }
    out.push_back(std::move(frozen));
  }
  return out;
}

void SegmentedIndex::restore(std::vector<Segment> segments, std::uint64_t next_seq) {
  detail::require(next_seq >= 1, "SegmentedIndex::restore: next_seq 0 is the base index");
  std::unique_lock lock(mutex_);
  sealed_.clear();
  sealed_.reserve(segments.size());
  for (Segment& segment : segments) {
    if (segment.empty()) continue;
    sealed_.push_back(std::make_shared<Segment>(std::move(segment)));
  }
  mem_ = Memtable{};
  next_seq_ = next_seq;
}

}  // namespace rsse::seg
