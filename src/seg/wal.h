// Write-ahead log for the dynamic overlay (durability of acknowledged
// kUpdate deltas). The overlay's memtable lives in RAM between saves, so
// without a log every acknowledged delta since the last atomic-swap save
// dies with the process. The WAL closes that window: the server appends
// one record per applied delta BEFORE acking it, and a restart replays
// the log into the overlay — recovering the memtable entries, the
// delta_id idempotency ring, and the backfill tail.
//
// On-disk format: an append-only sequence of self-framing records,
//
//   u64 payload length || payload || SHA-256(payload) (32) || magic (8)
//
// — the store artifact footer discipline (store/deployment.h), per
// record instead of per file so an append never rewrites earlier bytes.
// A crash mid-append leaves a torn final frame; scan_wal detects it by
// length/checksum/magic and discards ONLY the tail, never a record that
// was fully flushed (i.e. never an acked update).
//
// The same record bytes travel the wire as kDeltaBackfill payloads, so a
// lagging replica replays exactly what the healthy peer logged.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace rsse::seg {

/// One durably logged update: everything a restarted server needs to
/// re-apply an acknowledged delta — the delta bytes, the owner's
/// idempotency token, and the first sequence number the apply assigned
/// (the delta occupies [first_seq, first_seq + op_count)).
struct WalRecord {
  std::uint64_t delta_id = 0;   ///< kUpdate idempotency token (0 = none)
  std::uint64_t first_seq = 0;  ///< sequence assigned to the delta's op 0
  Bytes delta;                  ///< seg::UpdateDelta::serialize() payload

  /// Canonical record payload (the bytes that get framed and checksummed;
  /// also the kDeltaBackfill wire element).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize. Throws ParseError on truncation, an empty
  /// delta, a zero first_seq (sequence 0 is the base index epoch and is
  /// never assigned to a delta) or trailing bytes.
  static WalRecord deserialize(BytesView blob);

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Frames one record for the append-only log (length + checksum + magic).
[[nodiscard]] Bytes encode_wal_frame(const WalRecord& record);

/// Result of scanning a log image.
struct WalScan {
  std::vector<WalRecord> records;  ///< every intact record, append order
  bool torn_tail = false;          ///< trailing bytes were torn or corrupt
                                   ///< and have been discarded
};

/// Decodes frames front to back, stopping at the first torn or corrupt
/// one. Damage never throws — a torn tail is the expected crash artifact,
/// reported via `torn_tail` so the caller can compact the file.
[[nodiscard]] WalScan scan_wal(BytesView raw);

/// The file-backed log. Binds lazily: open() only remembers the path; the
/// file is created on the first append, so a read-only load of a
/// deployment that never sees an update leaves no WAL behind.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Binds the log to `path` without touching the filesystem.
  void open(std::string path);

  [[nodiscard]] bool attached() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one framed record and flushes it to the OS before
  /// returning — the record survives a process crash from here on.
  /// Throws Error on I/O failure.
  void append(const WalRecord& record);

  /// Atomically replaces the log's contents with exactly `records`
  /// (written to <path>.tmp, renamed over) — the checkpoint primitive:
  /// records covered by a persisted snapshot are dropped by rewriting
  /// the survivors, never by truncating in place. Throws Error on I/O
  /// failure.
  void rewrite(const std::deque<WalRecord>& records);

  /// Scans the file at `path`; a missing file is an empty, clean scan.
  [[nodiscard]] static WalScan scan_file(const std::string& path);

 private:
  std::ofstream& appender();

  std::string path_;
  std::ofstream out_;  ///< lazily opened append stream
};

}  // namespace rsse::seg
