// Update-transcript leakage accounting — the dynamic-index counterpart
// of sse::LeakageAudit (which covers the static build).
//
// Unlike the build-time audit, every quantity here is computed from what
// the honest-but-curious SERVER observes while applying deltas: which
// rows an update touched (and how many), how many entries and tombstones
// it carried, and how compaction coalesces rows from different update
// epochs into shared segments — the co-occurrence signal Damie et al.'s
// query-recovery line of attacks feeds on. The accumulator makes that
// leakage measurable instead of hand-waved: a serving deployment exports
// it as live rsse_leakage_update_* gauges, and DESIGN.md Sec. 10 states
// what each number means relative to the static scheme.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace rsse::seg {

/// Server-observable update leakage, accumulated over a serving session.
struct UpdateLeakage {
  std::uint64_t updates = 0;                   ///< deltas applied
  std::uint64_t keywords_touched_total = 0;    ///< sum of per-delta row counts
  std::uint64_t keywords_touched_max = 0;      ///< widest single delta
  std::uint64_t entries_total = 0;             ///< postings across all deltas
  std::uint64_t tombstones_total = 0;          ///< tombstone volume
  std::uint64_t compactions = 0;
  /// Labels whose rows were merged from >= 2 source segments — each such
  /// label newly co-locates entries from different update epochs.
  std::uint64_t compaction_cooccurrence_groups = 0;
  /// (label, source segment) pairs folded into shared rows: the total
  /// cross-epoch co-occurrence exposure compaction has created.
  std::uint64_t compaction_rows_coalesced = 0;

  friend bool operator==(const UpdateLeakage&, const UpdateLeakage&) = default;
};

/// Exports the accumulator as gauges on `registry`:
///   rsse_leakage_update_observed                    deltas applied
///   rsse_leakage_update_keywords_touched_total      sum of row counts
///   rsse_leakage_update_keywords_touched_max        widest delta
///   rsse_leakage_update_entries_total               posting volume
///   rsse_leakage_update_tombstones_total            tombstone volume
///   rsse_leakage_update_compaction_cooccurrence_groups
///   rsse_leakage_update_compaction_rows_coalesced
/// Idempotent: re-exporting updates the same series. `labels` scopes the
/// series (a tenant host passes {tenant=<id>}; single-owner servers pass
/// nothing and keep the unlabeled series).
void export_update_leakage_gauges(const UpdateLeakage& leakage,
                                  obs::MetricsRegistry& registry,
                                  const obs::Labels& labels = {});

}  // namespace rsse::seg
