#include "seg/compactor.h"

#include "util/stopwatch.h"

namespace rsse::seg {

Compactor::Compactor(SegmentedIndex& index, CompactorOptions options,
                     obs::MetricsRegistry* registry)
    : index_(index), options_(options), registry_(registry) {
  thread_ = std::thread([this] { run(); });
}

Compactor::~Compactor() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Compactor::notify() {
  {
    std::lock_guard lock(mutex_);
    pending_ = true;
  }
  cv_.notify_all();
}

void Compactor::wait_for_idle() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] {
    return (!pending_ && !working_) || stop_;
  });
}

std::uint64_t Compactor::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

void Compactor::run() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return pending_ || stop_; });
      if (stop_) return;
      pending_ = false;
      working_ = true;
    }
    // Drain: merge until the trigger no longer holds. compact_once never
    // blocks readers; each iteration merges the current sealed set.
    std::uint64_t merges = 0;
    while (index_.sealed_count() >= options_.trigger_segments) {
      Stopwatch watch;
      const auto stats = index_.compact_once();
      if (!stats) break;  // lost a swap race or nothing left to merge
      ++merges;
      if (registry_ != nullptr) {
        registry_
            ->counter("rsse_seg_compactions_total",
                      "Background segment merges completed")
            .inc();
        registry_
            ->counter("rsse_seg_compaction_merged_segments_total",
                      "Sealed segments consumed by background merges")
            .inc(stats->segments_merged);
        registry_
            ->histogram("rsse_seg_compaction_seconds",
                        "Wall time of one background segment merge",
                        obs::log_bounds())
            .observe(watch.elapsed_seconds());
      }
    }
    if (registry_ != nullptr && merges > 0) {
      export_update_leakage_gauges(index_.leakage(), *registry_);
    }
    {
      std::lock_guard lock(mutex_);
      completed_ += merges;
      working_ = false;
    }
    cv_.notify_all();
  }
}

}  // namespace rsse::seg
