#include "seg/segment.h"

#include <algorithm>

#include "util/errors.h"

namespace rsse::seg {

namespace {

void expect_exhausted(const ByteReader& reader, const char* what) {
  if (!reader.exhausted()) throw ParseError(std::string(what) + ": trailing bytes");
}

}  // namespace

void Segment::add_entries(const Bytes& label, std::vector<SeqEntry> entries) {
  detail::require(!label.empty(), "Segment::add_entries: empty label");
  if (entries.empty()) return;
  entry_count_ += entries.size();
  std::vector<SeqEntry>& row = rows_[label];
  if (row.empty()) {
    row = std::move(entries);
  } else {
    row.insert(row.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
}

void Segment::add_tombstone(std::uint64_t file_id, std::uint64_t seq) {
  std::uint64_t& stored = tombstones_[file_id];
  stored = std::max(stored, seq);
}

const std::vector<SeqEntry>* Segment::row(BytesView label) const {
  const auto it = rows_.find(Bytes(label.begin(), label.end()));
  return it == rows_.end() ? nullptr : &it->second;
}

std::uint64_t Segment::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& [label, entries] : rows_) {
    total += label.size();
    for (const SeqEntry& e : entries) total += e.ciphertext.size() + 8;
  }
  total += 16 * tombstones_.size();
  return total;
}

Bytes Segment::serialize() const {
  Bytes out;
  append_u64(out, rows_.size());
  for (const auto& [label, entries] : rows_) {
    append_lp(out, label);
    append_u64(out, entries.size());
    for (const SeqEntry& e : entries) {
      append_lp(out, e.ciphertext);
      append_u64(out, e.seq);
    }
  }
  append_u64(out, tombstones_.size());
  for (const auto& [file_id, seq] : tombstones_) {
    append_u64(out, file_id);
    append_u64(out, seq);
  }
  return out;
}

Segment Segment::deserialize(BytesView blob) {
  ByteReader reader(blob);
  Segment segment;
  const std::uint64_t num_rows = reader.read_count(12);  // LP label + entry count
  Bytes previous_label;
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    Bytes label = reader.read_lp();
    if (label.empty()) throw ParseError("Segment: empty row label");
    // Strictly ascending labels keep deserialize(serialize(x)) == x: a
    // duplicate or out-of-order label would be silently reordered by the
    // backing map, breaking the canonical-form contract.
    if (i > 0 && label <= previous_label)
      throw ParseError("Segment: rows out of canonical order");
    const std::uint64_t num_entries = reader.read_count(12);  // LP entry + seq
    if (num_entries == 0) throw ParseError("Segment: row without entries");
    std::vector<SeqEntry> entries;
    entries.reserve(num_entries);
    for (std::uint64_t j = 0; j < num_entries; ++j) {
      SeqEntry e;
      e.ciphertext = reader.read_lp();
      if (e.ciphertext.empty()) throw ParseError("Segment: empty entry");
      e.seq = reader.read_u64();
      entries.push_back(std::move(e));
    }
    segment.entry_count_ += entries.size();
    segment.rows_.emplace(label, std::move(entries));
    previous_label = std::move(label);
  }
  const std::uint64_t num_tombstones = reader.read_count(16);  // id + seq
  std::uint64_t previous_id = 0;
  for (std::uint64_t i = 0; i < num_tombstones; ++i) {
    const std::uint64_t file_id = reader.read_u64();
    if (i > 0 && file_id <= previous_id)
      throw ParseError("Segment: tombstones out of canonical order");
    segment.tombstones_.emplace(file_id, reader.read_u64());
    previous_id = file_id;
  }
  expect_exhausted(reader, "Segment");
  return segment;
}

Bytes SegmentManifest::serialize() const {
  Bytes out;
  append_u32(out, version);
  append_u64(out, next_seq);
  append_u64(out, num_segments);
  return out;
}

SegmentManifest SegmentManifest::deserialize(BytesView blob) {
  ByteReader reader(blob);
  SegmentManifest manifest;
  manifest.version = reader.read_u32();
  if (manifest.version != 1)
    throw ParseError("SegmentManifest: unknown version " +
                     std::to_string(manifest.version));
  manifest.next_seq = reader.read_u64();
  if (manifest.next_seq == 0)
    throw ParseError("SegmentManifest: next_seq 0 is reserved for the base index");
  manifest.num_segments = reader.read_u64();
  expect_exhausted(reader, "SegmentManifest");
  return manifest;
}

}  // namespace rsse::seg
