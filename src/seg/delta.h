// The owner->server update delta: the wire unit of the dynamic index.
//
// A delta is an ordered batch of logical operations (document adds and
// removes). Adds carry pre-encrypted posting entries grouped by row label
// plus the encrypted file blob; removes carry only the plaintext file id
// — the server already stores blobs under plaintext ids, so a tombstone
// reveals nothing a direct file deletion would not. Every element is
// tagged with its operation index `op` (< op_count); the receiving server
// maps op indices onto its own monotonic sequence counter, so later
// operations always supersede earlier ones at query time no matter which
// segment they land in.
//
// The owner never sends padding entries in a delta (padding would not
// hide anything: the delta's row labels already reveal exactly which
// keywords the update touched). DESIGN.md Sec. 10 states this leakage.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rsse::seg {

/// One encrypted posting entry tagged with its operation index.
struct DeltaEntry {
  Bytes ciphertext;      ///< sse::encrypt_entry output (opaque to the server)
  std::uint64_t op = 0;  ///< operation index within the delta

  friend bool operator==(const DeltaEntry&, const DeltaEntry&) = default;
};

/// All new entries of one index row.
struct RowDelta {
  Bytes label;  ///< pi_x(w): the row the entries extend
  std::vector<DeltaEntry> entries;

  friend bool operator==(const RowDelta&, const RowDelta&) = default;
};

/// A document removal: suppresses every posting of `file_id` written by
/// an operation earlier than `op`, and deletes the stored blob.
struct Tombstone {
  std::uint64_t file_id = 0;
  std::uint64_t op = 0;

  friend bool operator==(const Tombstone&, const Tombstone&) = default;
};

/// An encrypted file blob upload (one per added document).
struct FilePut {
  std::uint64_t id = 0;
  std::uint64_t op = 0;
  Bytes blob;

  friend bool operator==(const FilePut&, const FilePut&) = default;
};

/// One streamed update batch. `op_count` is the number of logical
/// operations; every op field must be < op_count (enforced on parse).
struct UpdateDelta {
  std::uint64_t op_count = 0;
  std::vector<RowDelta> rows;
  std::vector<Tombstone> tombstones;
  std::vector<FilePut> file_puts;

  /// Total posting entries across all rows.
  [[nodiscard]] std::size_t entry_count() const;

  /// True when the delta carries no operations at all.
  [[nodiscard]] bool empty() const {
    return rows.empty() && tombstones.empty() && file_puts.empty();
  }

  /// Wire encoding (owner -> server, kUpdate payload component).
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input: op
  /// indices >= op_count, empty labels/ciphertexts, or trailing bytes.
  static UpdateDelta deserialize(BytesView blob);

  friend bool operator==(const UpdateDelta&, const UpdateDelta&) = default;
};

}  // namespace rsse::seg
