// Background compaction: a single worker thread that merges sealed
// segments whenever the index accumulates enough of them, without ever
// blocking queries (SegmentedIndex::compact_once does its merge outside
// the index lock).
//
// Deterministic by construction — no timers, no sleeps. The thread only
// wakes on notify() (the server calls it after each applied update) and
// drains until the trigger no longer holds; tests synchronize with
// wait_for_idle() instead of polling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "seg/segmented_index.h"

namespace rsse::seg {

struct CompactorOptions {
  /// Compact whenever at least this many sealed segments exist.
  std::size_t trigger_segments = 2;
};

/// Owns the compaction thread for one SegmentedIndex. Construction starts
/// the thread; destruction stops and joins it.
class Compactor {
 public:
  /// `registry`, when non-null, receives rsse_seg_compactions_total,
  /// rsse_seg_compaction_merged_segments and the update-leakage gauges
  /// refreshed after every completed merge.
  explicit Compactor(SegmentedIndex& index, CompactorOptions options = {},
                     obs::MetricsRegistry* registry = nullptr);

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  ~Compactor();

  /// Signals that sealed segments may have appeared. Cheap; safe from any
  /// thread.
  void notify();

  /// Blocks until the worker has drained every pending notification and
  /// the trigger condition no longer holds.
  void wait_for_idle();

  /// Completed merges (monotonic).
  [[nodiscard]] std::uint64_t completed() const;

 private:
  void run();

  SegmentedIndex& index_;
  CompactorOptions options_;
  obs::MetricsRegistry* registry_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool pending_ = false;
  bool working_ = false;
  bool stop_ = false;
  std::uint64_t completed_ = 0;

  std::thread thread_;  // last: starts in the ctor after state is ready
};

}  // namespace rsse::seg
