// Owner-side construction of wire-streamable update deltas.
//
// Where sse::IndexUpdater rewrites the outsourced base index in place
// (fetch row, overwrite a padding slot, push back), the DeltaBuilder
// never touches the server's state: it batches encrypted add entries and
// file tombstones into one seg::UpdateDelta the owner streams over
// kUpdate. Scores reuse the quantizer fixed at build time, and the
// one-to-many OPM's key-only bucket descent (Sec. VII) guarantees the
// new entries rank consistently against everything already outsourced.
//
// Ops are relative: the builder numbers adds/removes 0..op_count-1 in
// call order; the server maps them onto its global sequence counter.
#pragma once

#include <cstdint>
#include <map>

#include "ir/document.h"
#include "opse/quantizer.h"
#include "seg/delta.h"
#include "sse/rsse_scheme.h"

namespace rsse::seg {

/// Accumulates one UpdateDelta. Not thread-safe; one builder per batch.
class DeltaBuilder {
 public:
  /// Binds to the owner's scheme and the build-time quantizer.
  DeltaBuilder(const sse::RsseScheme& scheme, opse::ScoreQuantizer quantizer);

  /// Adds a document: one op covering a posting entry per distinct term
  /// plus the encrypted file blob. Throws InvalidArgument when the
  /// document analyzes to no terms.
  void add_document(const ir::Document& doc, Bytes encrypted_blob);

  /// Removes a file: one tombstone op. The server suppresses every
  /// posting of the file written at an earlier sequence, base included.
  void remove_document(sse::FileId id);

  /// Ops batched so far.
  [[nodiscard]] std::uint64_t pending_ops() const { return delta_.op_count; }

  /// Returns the batch and resets the builder for the next one.
  [[nodiscard]] UpdateDelta take();

 private:
  const sse::RsseScheme& scheme_;
  opse::ScoreQuantizer quantizer_;
  UpdateDelta delta_;
  std::map<Bytes, std::size_t> row_index_;  // label -> index into delta_.rows
};

}  // namespace rsse::seg
