#include "seg/delta_builder.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/scoring.h"
#include "util/errors.h"

namespace rsse::seg {

DeltaBuilder::DeltaBuilder(const sse::RsseScheme& scheme, opse::ScoreQuantizer quantizer)
    : scheme_(scheme), quantizer_(std::move(quantizer)) {}

void DeltaBuilder::add_document(const ir::Document& doc, Bytes encrypted_blob) {
  const std::vector<std::string> terms = scheme_.analyzer().analyze(doc.text);
  detail::require(!terms.empty(), "DeltaBuilder::add_document: document has no terms");
  const auto doc_length = static_cast<std::uint32_t>(terms.size());
  std::unordered_map<std::string, std::uint32_t> tf;
  for (const std::string& t : terms) ++tf[t];

  const std::uint64_t op = delta_.op_count++;
  for (const auto& [term, count] : tf) {
    const double score = ir::score_single_keyword(count, doc_length);
    DeltaEntry entry;
    entry.ciphertext = scheme_.make_entry(term, doc.id, score, quantizer_);
    entry.op = op;
    Bytes label = scheme_.row_label(term);
    const auto [it, inserted] = row_index_.emplace(std::move(label), delta_.rows.size());
    if (inserted) {
      RowDelta row;
      row.label = it->first;
      delta_.rows.push_back(std::move(row));
    }
    delta_.rows[it->second].entries.push_back(std::move(entry));
  }
  delta_.file_puts.push_back(
      FilePut{ir::value(doc.id), op, std::move(encrypted_blob)});
}

void DeltaBuilder::remove_document(sse::FileId id) {
  const std::uint64_t op = delta_.op_count++;
  delta_.tombstones.push_back(Tombstone{ir::value(id), op});
}

UpdateDelta DeltaBuilder::take() {
  UpdateDelta out = std::move(delta_);
  delta_ = UpdateDelta{};
  row_index_.clear();
  return out;
}

}  // namespace rsse::seg
