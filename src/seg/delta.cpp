#include "seg/delta.h"

#include "util/errors.h"

namespace rsse::seg {

namespace {

void expect_exhausted(const ByteReader& reader, const char* what) {
  if (!reader.exhausted()) throw ParseError(std::string(what) + ": trailing bytes");
}

void check_op(std::uint64_t op, std::uint64_t op_count, const char* what) {
  if (op >= op_count)
    throw ParseError(std::string(what) + ": op index past op_count");
}

}  // namespace

std::size_t UpdateDelta::entry_count() const {
  std::size_t n = 0;
  for (const RowDelta& row : rows) n += row.entries.size();
  return n;
}

Bytes UpdateDelta::serialize() const {
  Bytes out;
  append_u64(out, op_count);
  append_u64(out, rows.size());
  for (const RowDelta& row : rows) {
    append_lp(out, row.label);
    append_u64(out, row.entries.size());
    for (const DeltaEntry& e : row.entries) {
      append_lp(out, e.ciphertext);
      append_u64(out, e.op);
    }
  }
  append_u64(out, tombstones.size());
  for (const Tombstone& t : tombstones) {
    append_u64(out, t.file_id);
    append_u64(out, t.op);
  }
  append_u64(out, file_puts.size());
  for (const FilePut& p : file_puts) {
    append_u64(out, p.id);
    append_u64(out, p.op);
    append_lp(out, p.blob);
  }
  return out;
}

UpdateDelta UpdateDelta::deserialize(BytesView blob) {
  ByteReader reader(blob);
  UpdateDelta delta;
  delta.op_count = reader.read_u64();
  const std::uint64_t num_rows = reader.read_count(12);  // LP label + entry count
  delta.rows.reserve(num_rows);
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    RowDelta row;
    row.label = reader.read_lp();
    if (row.label.empty()) throw ParseError("UpdateDelta: empty row label");
    const std::uint64_t num_entries = reader.read_count(12);  // LP entry + op
    if (num_entries == 0) throw ParseError("UpdateDelta: row without entries");
    row.entries.reserve(num_entries);
    for (std::uint64_t j = 0; j < num_entries; ++j) {
      DeltaEntry e;
      e.ciphertext = reader.read_lp();
      if (e.ciphertext.empty()) throw ParseError("UpdateDelta: empty entry");
      e.op = reader.read_u64();
      check_op(e.op, delta.op_count, "UpdateDelta entry");
      row.entries.push_back(std::move(e));
    }
    delta.rows.push_back(std::move(row));
  }
  const std::uint64_t num_tombstones = reader.read_count(16);  // id + op
  delta.tombstones.reserve(num_tombstones);
  for (std::uint64_t i = 0; i < num_tombstones; ++i) {
    Tombstone t;
    t.file_id = reader.read_u64();
    t.op = reader.read_u64();
    check_op(t.op, delta.op_count, "UpdateDelta tombstone");
    delta.tombstones.push_back(t);
  }
  const std::uint64_t num_puts = reader.read_count(20);  // id + op + LP blob
  delta.file_puts.reserve(num_puts);
  for (std::uint64_t i = 0; i < num_puts; ++i) {
    FilePut p;
    p.id = reader.read_u64();
    p.op = reader.read_u64();
    check_op(p.op, delta.op_count, "UpdateDelta file put");
    p.blob = reader.read_lp();
    delta.file_puts.push_back(std::move(p));
  }
  expect_exhausted(reader, "UpdateDelta");
  return delta;
}

}  // namespace rsse::seg
