#include "seg/update_leakage.h"

namespace rsse::seg {

void export_update_leakage_gauges(const UpdateLeakage& leakage,
                                  obs::MetricsRegistry& registry,
                                  const obs::Labels& labels) {
  const auto set = [&registry, &labels](const char* name, const char* help,
                                        std::uint64_t value) {
    registry.gauge(name, help, labels).set(static_cast<std::int64_t>(value));
  };
  set("rsse_leakage_update_observed",
      "Update deltas the server has applied", leakage.updates);
  set("rsse_leakage_update_keywords_touched_total",
      "Distinct rows touched, summed over all applied deltas",
      leakage.keywords_touched_total);
  set("rsse_leakage_update_keywords_touched_max",
      "Rows touched by the widest single delta", leakage.keywords_touched_max);
  set("rsse_leakage_update_entries_total",
      "Encrypted posting entries received across all deltas",
      leakage.entries_total);
  set("rsse_leakage_update_tombstones_total",
      "File tombstones received across all deltas", leakage.tombstones_total);
  set("rsse_leakage_update_compaction_cooccurrence_groups",
      "Labels whose rows compaction merged from two or more segments",
      leakage.compaction_cooccurrence_groups);
  set("rsse_leakage_update_compaction_rows_coalesced",
      "(label, source segment) pairs compaction folded into shared rows",
      leakage.compaction_rows_coalesced);
}

}  // namespace rsse::seg
