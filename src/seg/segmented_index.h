// The segmented dynamic index: an in-memory delta (memtable) absorbing
// owner-streamed updates plus immutable sealed segments, layered over the
// outsourced base SecureIndex (which plays the role of segment zero, all
// of whose entries carry sequence 0).
//
// Query surface: search() implements the same rank-on-OPM-ciphertext
// contract as RsseScheme::search — decrypt the trapdoor's row across
// every layer, order by (OPM value descending, file id ascending), keep
// the top-k — with two dynamic-index twists resolved at the merge:
//   * tombstones: an entry is suppressed iff a tombstone for its file
//     carries a larger sequence (strictly: add and remove never share a
//     sequence, and base entries sit at sequence 0);
//   * supersession: when one file appears in a row at several sequences
//     (remove + re-add), only the largest sequence survives.
// Because tombstones and duplicates can suppress arbitrarily many
// candidates, per-layer top-k truncation is unsound; every layer is
// ranked in full and the cut happens after filtering. When the overlay is
// empty the caller can (and CloudServer does) fall back to the static
// RsseScheme::search fast path, which this class refines conservatively.
//
// Concurrency: one internal shared_mutex. Readers (search, gauges) take
// it shared; apply/seal/restore take it exclusively. Compaction does its
// merge work on shared_ptr segment snapshots OUTSIDE the lock and only
// swaps the sealed list under the exclusive lock — queries are never
// blocked behind a merge.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "seg/delta.h"
#include "seg/segment.h"
#include "seg/update_leakage.h"
#include "sse/rsse_scheme.h"
#include "sse/types.h"

namespace rsse::seg {

/// Lifecycle knobs.
struct SegPolicy {
  /// Seal the memtable into a segment once it holds this many entries +
  /// tombstones (applies after each delta; a single delta can overshoot).
  std::size_t memtable_max_entries = 1024;
};

/// What one apply() did.
struct ApplyStats {
  std::uint64_t entries_applied = 0;
  std::uint64_t tombstones_applied = 0;
  std::uint64_t first_seq = 0;  ///< sequences [first_seq, first_seq + op_count)
  bool sealed = false;          ///< the apply tripped the seal threshold
};

/// What one compaction did.
struct CompactionStats {
  std::uint64_t segments_merged = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t entries_out = 0;
  std::uint64_t tombstones_out = 0;
  /// Labels merged from >= 2 source segments / their (label, segment)
  /// pairs — the co-occurrence exposure fed into UpdateLeakage.
  std::uint64_t cooccurrence_groups = 0;
  std::uint64_t rows_coalesced = 0;
};

/// The dynamic overlay. One instance per CloudServer.
class SegmentedIndex {
 public:
  explicit SegmentedIndex(SegPolicy policy = {}) : policy_(policy) {}

  void set_policy(SegPolicy policy);

  /// Applies one delta: assigns the server-side sequence range, appends
  /// entries and tombstones to the memtable, seals per policy. File blob
  /// mutations are the caller's job (the index never sees blobs).
  ApplyStats apply(const UpdateDelta& delta);

  /// Seals the memtable into an immutable segment; false when empty.
  bool seal();

  /// Merges every currently sealed segment into one (structural: rows
  /// concatenate keeping sequence tags, tombstones union by max
  /// sequence). Runs without blocking readers; nullopt when fewer than
  /// two segments exist or a concurrent compaction won the swap.
  std::optional<CompactionStats> compact_once();

  /// Ranks one row across base + segments + memtable. `base` must be the
  /// FULL (top_k = 0) static ranking of the trapdoor's base row — its
  /// entries are treated as sequence 0.
  [[nodiscard]] std::vector<sse::RankedSearchEntry> search(
      const sse::Trapdoor& trapdoor, std::vector<sse::RankedSearchEntry> base,
      std::size_t top_k) const;

  /// True when the overlay holds nothing: the static fast path is exact.
  [[nodiscard]] bool empty() const;

  [[nodiscard]] std::size_t sealed_count() const;
  [[nodiscard]] std::size_t memtable_entries() const;

  /// Distinct tombstoned files across memtable + sealed segments.
  [[nodiscard]] std::size_t tombstone_count() const;

  [[nodiscard]] std::uint64_t byte_size() const;
  [[nodiscard]] std::uint64_t next_seq() const;
  [[nodiscard]] std::uint64_t compactions() const;

  /// The accumulated server-observable update leakage.
  [[nodiscard]] UpdateLeakage leakage() const;

  /// Deep copy of the segment set for persistence: sealed segments oldest
  /// first, then the memtable frozen as a final segment (omitted when
  /// empty). Pair with next_seq() for the manifest.
  [[nodiscard]] std::vector<Segment> snapshot_segments() const;

  /// Replaces the whole overlay from persisted state (load path). Resets
  /// the memtable; `next_seq` must exceed every restored sequence.
  void restore(std::vector<Segment> segments, std::uint64_t next_seq);

 private:
  struct Memtable {
    std::map<Bytes, std::vector<SeqEntry>> rows;
    std::map<std::uint64_t, std::uint64_t> tombstones;  // file -> max seq
    std::size_t entries = 0;
  };

  bool seal_locked();

  mutable std::shared_mutex mutex_;
  SegPolicy policy_;
  std::vector<std::shared_ptr<const Segment>> sealed_;  // oldest first
  Memtable mem_;
  std::uint64_t next_seq_ = 1;  // 0 is the base index
  std::uint64_t compactions_ = 0;
  UpdateLeakage leakage_;
};

}  // namespace rsse::seg
