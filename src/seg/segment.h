// An immutable sealed segment of the dynamic index, plus the manifest
// describing a persisted segment set.
//
// A segment is the frozen form of a memtable: per-label lists of
// sequence-tagged encrypted posting entries, plus the file tombstones
// absorbed while the memtable was live. The server cannot decrypt
// entries (row keys arrive only inside trapdoors), so segments compose
// structurally: compaction concatenates rows and unions tombstones by
// max sequence — entry-level garbage is purged only at query time, after
// decryption, or by an owner-driven rebuild (DESIGN.md Sec. 10).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.h"

namespace rsse::seg {

/// One encrypted posting entry tagged with the server-assigned global
/// update sequence it was written at.
struct SeqEntry {
  Bytes ciphertext;
  std::uint64_t seq = 0;

  friend bool operator==(const SeqEntry&, const SeqEntry&) = default;
};

/// An immutable sealed segment.
class Segment {
 public:
  /// Appends entries to a row (builder path; keeps per-row write order).
  void add_entries(const Bytes& label, std::vector<SeqEntry> entries);

  /// Records a file tombstone, keeping the largest sequence per file.
  void add_tombstone(std::uint64_t file_id, std::uint64_t seq);

  /// The rows, sorted by label (canonical order).
  [[nodiscard]] const std::map<Bytes, std::vector<SeqEntry>>& rows() const {
    return rows_;
  }

  /// file id -> largest tombstone sequence.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& tombstones() const {
    return tombstones_;
  }

  /// One row's entries; nullptr when the label is absent.
  [[nodiscard]] const std::vector<SeqEntry>* row(BytesView label) const;

  /// Total posting entries across all rows.
  [[nodiscard]] std::size_t entry_count() const { return entry_count_; }

  [[nodiscard]] bool empty() const { return rows_.empty() && tombstones_.empty(); }

  /// Serialized payload size (labels + entries + tombstones).
  [[nodiscard]] std::uint64_t byte_size() const;

  /// Canonical wire/persistence encoding.
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input —
  /// including rows or tombstones out of canonical (strictly ascending)
  /// order, so serialize() is a fixed point of deserialize().
  static Segment deserialize(BytesView blob);

  friend bool operator==(const Segment&, const Segment&) = default;

 private:
  std::map<Bytes, std::vector<SeqEntry>> rows_;
  std::map<std::uint64_t, std::uint64_t> tombstones_;
  std::size_t entry_count_ = 0;
};

/// The persisted description of a deployment's segment set: how many
/// sealed segment artifacts to load and where the server's sequence
/// counter resumes. Version gates the wire format.
struct SegmentManifest {
  std::uint32_t version = 1;
  std::uint64_t next_seq = 1;
  std::uint64_t num_segments = 0;

  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input, an
  /// unknown version, or next_seq == 0 (sequence 0 is reserved for the
  /// base index).
  static SegmentManifest deserialize(BytesView blob);

  friend bool operator==(const SegmentManifest&, const SegmentManifest&) = default;
};

}  // namespace rsse::seg
