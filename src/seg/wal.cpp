#include "seg/wal.h"

#include <cstring>
#include <filesystem>
#include <sstream>

#include "crypto/sha256.h"
#include "util/errors.h"

namespace rsse::seg {

namespace {

// Per-record integrity frame, mirroring the store artifact footer
// (store/deployment.h) but trailing each record instead of the file:
//   u64 payload length || payload || sha256(payload) (32) || magic (8)
// The leading length lets a scan skip to the footer; the trailing magic
// makes "append never finished" and "bytes rotted" equally detectable.
constexpr char kWalMagic[8] = {'R', 'S', 'S', 'E', 'W', 'A', 'L', '1'};
constexpr std::size_t kWalOverhead =
    8 + crypto::kSha256DigestSize + sizeof(kWalMagic);

}  // namespace

Bytes WalRecord::serialize() const {
  Bytes out;
  append_u64(out, delta_id);
  append_u64(out, first_seq);
  append_lp(out, delta);
  return out;
}

WalRecord WalRecord::deserialize(BytesView blob) {
  ByteReader reader(blob);
  WalRecord record;
  record.delta_id = reader.read_u64();
  record.first_seq = reader.read_u64();
  record.delta = reader.read_lp();
  if (!reader.exhausted())
    throw ParseError("WalRecord: trailing bytes after record");
  if (record.first_seq == 0)
    throw ParseError("WalRecord: sequence 0 is the base index epoch");
  if (record.delta.empty()) throw ParseError("WalRecord: empty delta payload");
  return record;
}

Bytes encode_wal_frame(const WalRecord& record) {
  const Bytes payload = record.serialize();
  Bytes frame;
  frame.reserve(payload.size() + kWalOverhead);
  append_u64(frame, payload.size());
  append(frame, payload);
  const crypto::Sha256Digest digest = crypto::sha256(payload);
  frame.insert(frame.end(), digest.begin(), digest.end());
  frame.insert(frame.end(), kWalMagic, kWalMagic + sizeof(kWalMagic));
  return frame;
}

WalScan scan_wal(BytesView raw) {
  WalScan scan;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t remaining = raw.size() - pos;
    if (remaining < 8) break;  // torn length prefix
    ByteReader length_reader(raw.subspan(pos, 8));
    const std::uint64_t payload_len = length_reader.read_u64();
    if (payload_len > remaining || remaining - 8 < payload_len ||
        remaining - 8 - payload_len < kWalOverhead - 8)
      break;  // frame extends past the file: torn append
    const std::uint8_t* payload = raw.data() + pos + 8;
    const std::uint8_t* footer = payload + payload_len;
    if (std::memcmp(footer + crypto::kSha256DigestSize, kWalMagic,
                    sizeof(kWalMagic)) != 0)
      break;  // magic never landed
    const crypto::Sha256Digest digest =
        crypto::sha256(BytesView(payload, payload_len));
    if (std::memcmp(footer, digest.data(), digest.size()) != 0) break;
    try {
      scan.records.push_back(
          WalRecord::deserialize(BytesView(payload, payload_len)));
    } catch (const ParseError&) {
      break;  // checksummed but malformed: treat like any other damage
    }
    pos += 8 + payload_len + (kWalOverhead - 8);
  }
  scan.torn_tail = pos < raw.size();
  return scan;
}

void WriteAheadLog::open(std::string path) {
  if (out_.is_open()) out_.close();
  path_ = std::move(path);
}

std::ofstream& WriteAheadLog::appender() {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) throw Error("WriteAheadLog: cannot open " + path_);
  }
  return out_;
}

void WriteAheadLog::append(const WalRecord& record) {
  if (path_.empty()) throw Error("WriteAheadLog: append before open");
  const Bytes frame = encode_wal_frame(record);
  std::ofstream& out = appender();
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) throw Error("WriteAheadLog: append failed for " + path_);
}

void WriteAheadLog::rewrite(const std::deque<WalRecord>& records) {
  if (path_.empty()) throw Error("WriteAheadLog: rewrite before open");
  if (out_.is_open()) out_.close();
  namespace fs = std::filesystem;
  if (records.empty() && !fs::exists(path_)) return;  // stay lazy
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("WriteAheadLog: cannot open " + tmp);
    for (const WalRecord& record : records) {
      const Bytes frame = encode_wal_frame(record);
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
    }
    out.flush();
    if (!out) throw Error("WriteAheadLog: rewrite failed for " + tmp);
  }
  fs::rename(tmp, path_);
}

WalScan WriteAheadLog::scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no log: nothing to replay
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_wal(to_bytes(buffer.str()));
}

}  // namespace rsse::seg
