#include "store/deployment.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.h"

namespace rsse::store {

namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("save_deployment: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("save_deployment: write failed for " + path.string());
}

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_deployment: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return to_bytes(content);
}

void save_parts(const sse::SecureIndex& index,
                const std::map<std::uint64_t, Bytes>& files, const fs::path& root) {
  const fs::path files_dir = root / "files";
  fs::create_directories(files_dir);
  // Replace any previous file set so deletions persist too.
  for (const auto& entry : fs::directory_iterator(files_dir)) fs::remove(entry.path());

  write_file(root / "index.bin", index.serialize());
  for (const auto& [id, blob] : files)
    write_file(files_dir / (std::to_string(id) + ".bin"), blob);
}

}  // namespace

void save_deployment(const cloud::CloudServer& server, const std::string& dir) {
  save_parts(server.index(), server.files(), fs::path(dir));
}

void load_deployment(const std::string& dir, cloud::CloudServer& server) {
  const fs::path root(dir);
  detail::require(fs::is_directory(root), "load_deployment: not a directory: " + dir);
  sse::SecureIndex index = sse::SecureIndex::deserialize(read_file(root / "index.bin"));

  std::map<std::uint64_t, Bytes> files;
  const fs::path files_dir = root / "files";
  if (fs::is_directory(files_dir)) {
    for (const auto& entry : fs::directory_iterator(files_dir)) {
      const std::string stem = entry.path().stem().string();
      try {
        files.emplace(std::stoull(stem), read_file(entry.path()));
      } catch (const std::logic_error&) {
        throw ParseError("load_deployment: non-numeric file name " + stem);
      }
    }
  }
  server.store(std::move(index), std::move(files));
}

void save_cluster_deployment(const cloud::CloudServer& server, std::uint32_t num_shards,
                             const std::string& dir) {
  const cluster::ShardMap map(num_shards);
  const fs::path root(dir);
  fs::create_directories(root);

  cluster::ClusterManifest manifest;
  manifest.num_shards = num_shards;
  manifest.total_rows = server.index().num_rows();
  manifest.total_files = server.num_files();
  write_file(root / "manifest.bin", manifest.serialize());

  auto indexes = map.split_index(server.index());
  auto file_sets = map.split_files(server.files());
  for (std::uint32_t i = 0; i < num_shards; ++i)
    save_parts(indexes[i], file_sets[i], root / ("shard" + std::to_string(i)));
}

bool is_cluster_deployment(const std::string& dir) {
  return fs::is_regular_file(fs::path(dir) / "manifest.bin");
}

cluster::ClusterManifest load_cluster_manifest(const std::string& dir) {
  return cluster::ClusterManifest::deserialize(
      read_file(fs::path(dir) / "manifest.bin"));
}

void load_cluster_shard(const std::string& dir, std::uint32_t shard,
                        cloud::CloudServer& server) {
  load_deployment((fs::path(dir) / ("shard" + std::to_string(shard))).string(), server);
}

}  // namespace rsse::store
