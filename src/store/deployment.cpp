#include "store/deployment.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.h"

namespace rsse::store {

namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("save_deployment: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("save_deployment: write failed for " + path.string());
}

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_deployment: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return to_bytes(content);
}

}  // namespace

void save_deployment(const cloud::CloudServer& server, const std::string& dir) {
  const fs::path root(dir);
  const fs::path files_dir = root / "files";
  fs::create_directories(files_dir);
  // Replace any previous file set so deletions persist too.
  for (const auto& entry : fs::directory_iterator(files_dir)) fs::remove(entry.path());

  write_file(root / "index.bin", server.index().serialize());
  for (const auto& [id, blob] : server.files())
    write_file(files_dir / (std::to_string(id) + ".bin"), blob);
}

void load_deployment(const std::string& dir, cloud::CloudServer& server) {
  const fs::path root(dir);
  detail::require(fs::is_directory(root), "load_deployment: not a directory: " + dir);
  sse::SecureIndex index = sse::SecureIndex::deserialize(read_file(root / "index.bin"));

  std::map<std::uint64_t, Bytes> files;
  const fs::path files_dir = root / "files";
  if (fs::is_directory(files_dir)) {
    for (const auto& entry : fs::directory_iterator(files_dir)) {
      const std::string stem = entry.path().stem().string();
      try {
        files.emplace(std::stoull(stem), read_file(entry.path()));
      } catch (const std::logic_error&) {
        throw ParseError("load_deployment: non-numeric file name " + stem);
      }
    }
  }
  server.store(std::move(index), std::move(files));
}

}  // namespace rsse::store
