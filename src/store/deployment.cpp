#include "store/deployment.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cloud/protocol.h"
#include "crypto/sha256.h"
#include "util/errors.h"

namespace rsse::store {

namespace fs = std::filesystem;

namespace {

// Integrity footer appended to every artifact:
//   payload || sha256(payload) (32) || u64 payload length (8) || magic (8)
// The magic at the very end makes "file without footer" and "file with a
// damaged footer" equally detectable; the explicit length catches
// truncation even when the remaining bytes happen to parse.
constexpr char kFooterMagic[8] = {'R', 'S', 'S', 'E', 'C', 'K', 'S', '1'};
constexpr std::size_t kFooterSize = crypto::kSha256DigestSize + 8 + sizeof(kFooterMagic);

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("save_deployment: cannot open " + path.string());
  const Bytes framed = encode_artifact(data);
  out.write(reinterpret_cast<const char*>(framed.data()),
            static_cast<std::streamsize>(framed.size()));
  out.flush();
  if (!out) throw Error("save_deployment: write failed for " + path.string());
}

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_deployment: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode_artifact(to_bytes(buffer.str()), path.string());
}

void save_parts(const sse::SecureIndex& index,
                const std::map<std::uint64_t, Bytes>& files, const fs::path& root) {
  const fs::path files_dir = root / "files";
  fs::create_directories(files_dir);
  // save_parts only ever fills freshly staged directories, but stay
  // idempotent: replace any previous file set so deletions persist too.
  for (const auto& entry : fs::directory_iterator(files_dir)) fs::remove(entry.path());

  write_file(root / "index.bin", index.serialize());
  for (const auto& [id, blob] : files)
    write_file(files_dir / (std::to_string(id) + ".bin"), blob);
}

/// Writes the dynamic overlay's segment artifacts + manifest under
/// `root/segments` (no-op for an empty overlay). `segments` holds
/// serialized seg::Segment payloads, oldest first.
void save_segment_artifacts(const std::vector<Bytes>& segments,
                            std::uint64_t next_seq, const fs::path& root) {
  if (segments.empty()) return;
  const fs::path seg_dir = root / "segments";
  fs::create_directories(seg_dir);
  seg::SegmentManifest manifest;
  manifest.next_seq = next_seq;
  manifest.num_segments = segments.size();
  write_file(seg_dir / "manifest.bin", manifest.serialize());
  for (std::size_t i = 0; i < segments.size(); ++i)
    write_file(seg_dir / ("seg" + std::to_string(i) + ".bin"), segments[i]);
}

fs::path staging_of(const fs::path& dir) { return dir.string() + ".saving"; }
fs::path parked_of(const fs::path& dir) { return dir.string() + ".old"; }

/// Atomically replaces `dir` with the fully written `staging` tree.
/// Crash-window analysis: before the first rename the old deployment is
/// untouched; between the renames the old tree sits at <dir>.old (load
/// recovers it); after the second rename the new tree is live.
void commit_dir(const fs::path& staging, const fs::path& dir) {
  const fs::path parked = parked_of(dir);
  std::error_code ec;
  fs::remove_all(parked, ec);  // leftovers of an earlier crashed save
  if (fs::exists(dir)) fs::rename(dir, parked);
  fs::rename(staging, dir);
  fs::remove_all(parked, ec);
}

/// Resolves the directory a load should read: when `dir` is missing but a
/// crashed save left the previous deployment parked at <dir>.old, move it
/// back — the interrupted save never becomes visible.
fs::path resolve_root(const fs::path& dir) {
  if (!fs::exists(dir) && fs::exists(parked_of(dir))) fs::rename(parked_of(dir), dir);
  return dir;
}

void quarantine(const fs::path& target) {
  const fs::path parked = fs::path(target.string() + ".quarantined");
  std::error_code ec;
  fs::remove_all(parked, ec);
  if (fs::exists(target)) fs::rename(target, parked);
  // The durability sidecar belongs to the quarantined state: its record
  // sequences continue the quarantined segments, not the replacement's.
  const fs::path wal = fs::path(wal_path(target.string()));
  const fs::path parked_wal = fs::path(parked.string() + ".wal");
  fs::remove(parked_wal, ec);
  if (fs::exists(wal)) fs::rename(wal, parked_wal);
}

}  // namespace

Bytes encode_artifact(BytesView payload) {
  Bytes framed(payload.begin(), payload.end());
  const crypto::Sha256Digest digest = crypto::sha256(payload);
  framed.insert(framed.end(), digest.begin(), digest.end());
  append_u64(framed, payload.size());
  framed.insert(framed.end(), kFooterMagic, kFooterMagic + sizeof(kFooterMagic));
  return framed;
}

Bytes decode_artifact(BytesView raw, const std::string& what) {
  if (raw.size() < kFooterSize)
    throw IntegrityError("load_deployment: missing integrity footer: " + what);
  const std::size_t payload_len = raw.size() - kFooterSize;
  const std::uint8_t* footer = raw.data() + payload_len;
  if (std::memcmp(footer + crypto::kSha256DigestSize + 8, kFooterMagic,
                  sizeof(kFooterMagic)) != 0)
    throw IntegrityError("load_deployment: bad footer magic: " + what);
  ByteReader length_reader(BytesView(footer + crypto::kSha256DigestSize, 8));
  if (length_reader.read_u64() != payload_len)
    throw IntegrityError("load_deployment: length mismatch (torn write?): " + what);
  const crypto::Sha256Digest digest =
      crypto::sha256(BytesView(raw.data(), payload_len));
  if (std::memcmp(footer, digest.data(), digest.size()) != 0)
    throw IntegrityError("load_deployment: checksum mismatch: " + what);
  return Bytes(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(payload_len));
}

std::string wal_path(const std::string& deployment_dir) {
  return deployment_dir + ".wal";
}

void save_deployment(const cloud::CloudServer& server, const std::string& dir) {
  const fs::path root(dir);
  const fs::path staging = staging_of(root);
  std::error_code ec;
  fs::remove_all(staging, ec);  // a previous save died mid-stage
  // Read the sequence cursor BEFORE snapshotting: deltas applied during
  // the save stay in the WAL (conservative — everything below this seq
  // is definitely inside the snapshot about to be staged).
  const std::uint64_t persisted_next_seq = server.segment_next_seq();
  save_parts(server.index(), server.files(), staging);
  // The dynamic overlay rides the same atomic-swap path: segments/ is
  // fully written in staging before the commit renames, so a crash never
  // leaves a deployment with a torn segment set. The memtable is frozen
  // into the final segment, so nothing in flight is lost.
  std::vector<Bytes> segments;
  for (const seg::Segment& segment : server.segment_snapshot())
    segments.push_back(segment.serialize());
  save_segment_artifacts(segments, server.segment_next_seq(), staging);
  commit_dir(staging, root);
  // Only after the swap is live may the WAL shed records the new
  // snapshot covers; a crash before this line replays them harmlessly
  // (load skips records below the restored next_seq).
  server.checkpoint_wal(persisted_next_seq);
}

void load_deployment(const std::string& dir, cloud::CloudServer& server) {
  const fs::path root = resolve_root(fs::path(dir));
  detail::require(fs::is_directory(root), "load_deployment: not a directory: " + dir);
  sse::SecureIndex index = sse::SecureIndex::deserialize(read_file(root / "index.bin"));

  std::map<std::uint64_t, Bytes> files;
  const fs::path files_dir = root / "files";
  if (fs::is_directory(files_dir)) {
    for (const auto& entry : fs::directory_iterator(files_dir)) {
      const std::string stem = entry.path().stem().string();
      try {
        files.emplace(std::stoull(stem), read_file(entry.path()));
      } catch (const std::logic_error&) {
        throw ParseError("load_deployment: non-numeric file name " + stem);
      }
    }
  }
  server.store(std::move(index), std::move(files));

  // Restore the dynamic overlay when this deployment has one. Every
  // segment artifact is checksummed like the rest; a count mismatch
  // against the manifest is a hard integrity error, not a silent skip.
  const fs::path seg_dir = root / "segments";
  if (fs::is_directory(seg_dir)) {
    const seg::SegmentManifest manifest =
        seg::SegmentManifest::deserialize(read_file(seg_dir / "manifest.bin"));
    std::vector<seg::Segment> segments;
    segments.reserve(manifest.num_segments);
    for (std::uint64_t i = 0; i < manifest.num_segments; ++i) {
      const fs::path path = seg_dir / ("seg" + std::to_string(i) + ".bin");
      if (!fs::is_regular_file(path))
        throw IntegrityError("load_deployment: missing segment artifact: " +
                             path.string());
      segments.push_back(seg::Segment::deserialize(read_file(path)));
    }
    server.restore_segments(std::move(segments), manifest.next_seq);
  } else {
    // "Replacing its state" includes the overlay: a deployment without
    // segment artifacts restores an empty overlay, not whatever a reused
    // server object happened to hold.
    server.restore_segments({}, 1);
  }

  // Replay the durability sidecar: deltas acked after the deployment's
  // last save (or before a save ever happened) live only in the WAL.
  // Records the loaded snapshot already covers are skipped by sequence;
  // a torn tail frame (crash mid-append, never acked) is discarded.
  server.attach_wal(wal_path(dir));
}

void save_cluster_deployment(const cloud::CloudServer& server, std::uint32_t num_shards,
                             const std::string& dir) {
  const cluster::ShardMap map(num_shards);
  const fs::path root(dir);
  const fs::path staging = staging_of(root);
  std::error_code ec;
  fs::remove_all(staging, ec);
  fs::create_directories(staging);

  cluster::ClusterManifest manifest;
  manifest.num_shards = num_shards;
  manifest.total_rows = server.index().num_rows();
  manifest.total_files = server.num_files();
  write_file(staging / "manifest.bin", manifest.serialize());

  auto indexes = map.split_index(server.index());
  auto file_sets = map.split_files(server.files());
  for (std::uint32_t i = 0; i < num_shards; ++i)
    save_parts(indexes[i], file_sets[i], staging / ("shard" + std::to_string(i)));
  commit_dir(staging, root);
}

void save_leakage_audit(const sse::LeakageAudit& audit, const std::string& dir) {
  const fs::path root = resolve_root(fs::path(dir));
  detail::require(fs::is_directory(root),
                  "save_leakage_audit: not a deployment directory: " + dir);
  write_file(root / "audit.bin", audit.serialize());
}

std::optional<sse::LeakageAudit> load_leakage_audit(const std::string& dir) {
  const fs::path path = resolve_root(fs::path(dir)) / "audit.bin";
  if (!fs::is_regular_file(path)) return std::nullopt;
  return sse::LeakageAudit::deserialize(read_file(path));
}

void save_transcript(const std::vector<analysis::TranscriptRecord>& records,
                     const std::string& path) {
  write_file(fs::path(path), analysis::TranscriptSink::serialize(records));
}

std::vector<analysis::TranscriptRecord> load_transcript(const std::string& path) {
  return analysis::TranscriptSink::deserialize(read_file(fs::path(path)));
}

bool is_cluster_deployment(const std::string& dir) {
  return fs::is_regular_file(resolve_root(fs::path(dir)) / "manifest.bin");
}

cluster::ClusterManifest load_cluster_manifest(const std::string& dir) {
  return cluster::ClusterManifest::deserialize(
      read_file(resolve_root(fs::path(dir)) / "manifest.bin"));
}

void load_cluster_shard(const std::string& dir, std::uint32_t shard,
                        cloud::CloudServer& server) {
  const fs::path root = resolve_root(fs::path(dir));
  load_deployment((root / ("shard" + std::to_string(shard))).string(), server);
}

void repair_cluster_shard(const std::string& dir, std::uint32_t shard,
                          cloud::Transport& healthy) {
  const fs::path root = resolve_root(fs::path(dir));
  const fs::path shard_dir = root / ("shard" + std::to_string(shard));

  // Fetch first: if the replica is unreachable the damaged-but-maybe-
  // partially-useful directory stays where it was.
  const auto snapshot = cloud::SnapshotResponse::deserialize(
      healthy.call(cloud::MessageType::kSnapshot, cloud::SnapshotRequest{}.serialize()));
  sse::SecureIndex index = sse::SecureIndex::deserialize(snapshot.index);
  std::map<std::uint64_t, Bytes> files;
  for (const auto& [id, blob] : snapshot.files) files.emplace(id, blob);
  // Validate the overlay segments BEFORE quarantining anything: a
  // malformed snapshot must fail the repair loudly, not stage a shard
  // that the subsequent load rejects.
  for (const Bytes& segment : snapshot.segments)
    (void)seg::Segment::deserialize(segment);

  quarantine(shard_dir);
  const fs::path staging = staging_of(shard_dir);
  std::error_code ec;
  fs::remove_all(staging, ec);
  save_parts(index, files, staging);
  save_segment_artifacts(snapshot.segments, snapshot.next_seq, staging);
  commit_dir(staging, shard_dir);
}

namespace {

/// Resolves the registry artifact path, recovering a crashed
/// save_tenant_registry first: a crash between write and rename leaves
/// the new registry complete at tenants.bin.saving. When the target is
/// missing and the temp verifies (checksum footer + parse), the rename
/// is replayed; any other leftover temp — torn write, or the rename
/// already happened — is stale and removed.
fs::path tenant_registry_path(const fs::path& root) {
  const fs::path target = root / "tenants.bin";
  const fs::path temp = root / "tenants.bin.saving";
  if (fs::is_regular_file(temp)) {
    std::error_code ec;
    if (fs::is_regular_file(target)) {
      fs::remove(temp, ec);
    } else {
      try {
        (void)tenant::TenantRegistry::deserialize(read_file(temp));
        fs::rename(temp, target);
      } catch (const Error&) {
        fs::remove(temp, ec);
      }
    }
  }
  return target;
}

}  // namespace

bool is_tenant_deployment(const std::string& dir) {
  return fs::is_regular_file(tenant_registry_path(resolve_root(fs::path(dir))));
}

std::string tenant_dir(const std::string& dir, const std::string& id) {
  detail::require(cloud::valid_tenant_id(id),
                  "tenant_dir: malformed tenant id: " + id);
  return (fs::path(dir) / ("tenant_" + id)).string();
}

void save_tenant_registry(const tenant::TenantRegistry& registry,
                          const std::string& dir) {
  const fs::path root(dir);
  fs::create_directories(root);
  // Write-to-temp + rename: the registry is one small artifact, so file
  // replacement (not the directory swap) is the right atomicity unit —
  // the tenant namespaces beside it must survive a registry update.
  const fs::path target = root / "tenants.bin";
  const fs::path temp = root / "tenants.bin.saving";
  write_file(temp, registry.serialize());
  fs::rename(temp, target);
}

tenant::TenantRegistry load_tenant_registry(const std::string& dir) {
  return tenant::TenantRegistry::deserialize(
      read_file(tenant_registry_path(resolve_root(fs::path(dir)))));
}

void save_tenant_deployment(const tenant::TenantHost& host, const std::string& dir) {
  const tenant::TenantRegistry registry = host.registry();
  // Namespaces first, registry last: a crash mid-save leaves tenants.bin
  // describing only deployments that were already fully committed (each
  // tenant_<id>/ save is itself atomic).
  for (const tenant::TenantConfig& config : registry.list()) {
    const cloud::CloudServer* server = host.find_server(config.id);
    detail::require(server != nullptr,
                    "save_tenant_deployment: tenant vanished mid-save: " + config.id);
    save_deployment(*server, tenant_dir(dir, config.id));
  }
  save_tenant_registry(registry, dir);
}

void load_tenant_deployment(const std::string& dir, tenant::TenantHost& host) {
  const tenant::TenantRegistry registry = load_tenant_registry(dir);
  for (const tenant::TenantConfig& config : registry.list()) {
    cloud::CloudServer& server = host.add_tenant(config);
    const std::string ns_dir = tenant_dir(dir, config.id);
    if (fs::is_directory(resolve_root(fs::path(ns_dir)))) {
      load_deployment(ns_dir, server);
    } else {
      // Registered before any save of its namespace: an empty tenant.
      // Still attach its WAL so deltas acked pre-first-save replay.
      server.attach_wal(wal_path(ns_dir));
    }
  }
}

void load_cluster_shard_or_repair(const std::string& dir, std::uint32_t shard,
                                  cloud::CloudServer& server,
                                  cloud::Transport* healthy) {
  try {
    load_cluster_shard(dir, shard, server);
    return;
  } catch (const Error&) {
    if (healthy == nullptr) throw;
  }
  repair_cluster_shard(dir, shard, *healthy);
  load_cluster_shard(dir, shard, server);
}

}  // namespace rsse::store
