// Server-side persistence: the outsourced deployment (secure index +
// encrypted file blobs) as a directory on disk, so a CloudServer can be
// shut down and restarted without the owner re-uploading. Layout:
//
//   <dir>/index.bin        SecureIndex::serialize() + integrity footer
//   <dir>/files/<id>.bin   one AES-GCM blob per file id (decimal name)
//
// Dynamic-overlay layout (present only when the server has absorbed
// kUpdate deltas; src/seg):
//
//   <dir>/segments/manifest.bin   SegmentManifest (next_seq, count) + footer
//   <dir>/segments/seg<i>.bin     one sealed segment per artifact, oldest
//                                 first; the live memtable is frozen into
//                                 the final segment at save time
//
// Durability sidecar (src/seg/wal.h):
//
//   <dir>.wal              write-ahead log of deltas applied since the
//                          last save, one checksummed frame per record
//
// The WAL is a SIBLING of the deployment directory, not a member: the
// atomic-swap save replaces <dir> wholesale, and a log inside it would
// vanish at commit — losing every delta acked during the save window.
// As a sibling it survives the swap; save_deployment checkpoints it
// (drops records the new snapshot covers) only AFTER the commit rename,
// and load_deployment replays whatever is left. Crash at any point
// loses nothing: records the visible deployment already covers are
// skipped by sequence number on replay.
//
// Everything stored is ciphertext; the directory is exactly what a real
// storage provider would hold.
//
// Integrity: every artifact carries a checksummed footer —
// payload || SHA-256(payload) || u64 payload length || 8-byte magic —
// verified on load, so a torn write, a truncated copy or silent bit rot
// surfaces as a typed IntegrityError instead of garbage state.
//
// Crash safety: saves are staged. The whole tree is written to
// <dir>.saving and swapped in by directory rename (the previous
// deployment briefly parks at <dir>.old). A crash at ANY point leaves
// either the old or the new deployment fully intact; load transparently
// recovers the parked directory when a crash hit the swap window.
//
// Cluster layout (sharded deployments, src/cluster):
//
//   <dir>/manifest.bin       ClusterManifest::serialize() + footer
//   <dir>/shard<i>/          one single-server deployment per shard
//
// Each shard directory is itself a valid single-server deployment, so a
// shard can be served by the plain `rsse serve` path (that is how replicas
// are deployed: upload the same shard directory to R endpoints). A shard
// whose artifacts fail their integrity check can be quarantined and
// rebuilt from a healthy replica (repair_cluster_shard).
// Leakage audit (sse::LeakageAudit): the owner's build-time audit is a
// deployment artifact too —
//
//   <dir>/audit.bin        LeakageAudit::serialize() + integrity footer
//
// written after the index (single-server and cluster roots alike) so a
// serving process can export the paper's security claims as live gauges
// and `rsse audit` can print them without the master key. It stores only
// aggregate counts and entropies — nothing about keywords or scores.
#pragma once

#include <optional>
#include <string>

#include "cloud/cloud_server.h"
#include "cloud/channel.h"
#include "cluster/shard_map.h"
#include "sse/rsse_scheme.h"
#include "tenant/host.h"
#include "tenant/registry.h"

namespace rsse::store {

/// Frames `payload` as a checksummed artifact:
///   payload || SHA-256(payload) (32) || u64 payload length (8) || magic (8)
/// — the byte format of every file a deployment directory holds.
[[nodiscard]] Bytes encode_artifact(BytesView payload);

/// Validates and strips the integrity footer written by encode_artifact,
/// returning the payload. Throws IntegrityError on a missing or damaged
/// footer, a length mismatch (truncation / torn write) or a checksum
/// mismatch; `what` tags the error message (e.g. the file path).
[[nodiscard]] Bytes decode_artifact(BytesView raw, const std::string& what);

/// The deployment's write-ahead log path: a sibling file `<dir>.wal`
/// (see the layout comment for why it cannot live inside the directory).
[[nodiscard]] std::string wal_path(const std::string& deployment_dir);

/// Writes the server's current index + files under `dir` (created if
/// missing; an existing deployment is replaced atomically — a crash
/// leaves either the previous or the new deployment loadable, never a
/// mix). Throws Error on I/O failure.
void save_deployment(const cloud::CloudServer& server, const std::string& dir);

/// Loads a deployment directory into `server` (replacing its state —
/// CloudServer owns a mutex and is therefore not movable).
/// Throws Error on I/O failure, IntegrityError when an artifact fails its
/// checksum (torn write, truncation, bit rot) and ParseError on malformed
/// content.
void load_deployment(const std::string& dir, cloud::CloudServer& server);

/// Splits the server's outsourced state across `num_shards` and writes a
/// cluster deployment (manifest + per-shard directories) under `dir`,
/// with the same staged-swap crash safety as save_deployment. Throws
/// Error on I/O failure.
void save_cluster_deployment(const cloud::CloudServer& server, std::uint32_t num_shards,
                             const std::string& dir);

/// Writes the owner-computed leakage audit into an existing deployment
/// (single-server or cluster root). Called after save_deployment /
/// save_cluster_deployment — those replace the directory wholesale, so
/// the audit is re-attached on every save. Throws Error on I/O failure.
void save_leakage_audit(const sse::LeakageAudit& audit, const std::string& dir);

/// Loads the deployment's leakage audit; nullopt when the deployment
/// predates the audit artifact. Throws IntegrityError / ParseError when
/// an audit.bin exists but is damaged.
std::optional<sse::LeakageAudit> load_leakage_audit(const std::string& dir);

/// Writes a captured query transcript (analysis::TranscriptSink records)
/// to `path` as a checksummed artifact — the replayable adversary's-eye
/// view `rsse serve --transcript` persists and `rsse audit --attack`
/// replays. Throws Error on I/O failure.
void save_transcript(const std::vector<analysis::TranscriptRecord>& records,
                     const std::string& path);

/// Reads a transcript artifact written by save_transcript. Throws Error
/// on I/O failure, IntegrityError on a damaged footer and ParseError on
/// malformed content.
std::vector<analysis::TranscriptRecord> load_transcript(const std::string& path);

/// True when `dir` holds a cluster deployment (a manifest.bin exists).
/// Also recovers a deployment parked by a crashed save (see
/// save_deployment).
bool is_cluster_deployment(const std::string& dir);

/// Reads the cluster manifest of a deployment written by
/// save_cluster_deployment. Throws Error / IntegrityError / ParseError.
cluster::ClusterManifest load_cluster_manifest(const std::string& dir);

/// Loads shard `shard` of a cluster deployment into `server`.
void load_cluster_shard(const std::string& dir, std::uint32_t shard,
                        cloud::CloudServer& server);

/// Rebuilds shard `shard` of the cluster deployment at `dir` from a
/// healthy replica of the same shard: the damaged shard directory is
/// quarantined (renamed to shard<i>.quarantined for post-mortem), a full
/// snapshot is fetched over `healthy`, and a fresh shard directory is
/// committed in its place. Throws Error when the replica cannot be
/// reached or the snapshot is malformed.
void repair_cluster_shard(const std::string& dir, std::uint32_t shard,
                          cloud::Transport& healthy);

/// load_cluster_shard, with self-healing: when the shard's artifacts are
/// corrupted (IntegrityError / ParseError) and `healthy` is non-null, the
/// shard is quarantined, re-fetched from the healthy replica and loaded
/// again. With a null `healthy` the load error propagates unchanged.
void load_cluster_shard_or_repair(const std::string& dir, std::uint32_t shard,
                                  cloud::CloudServer& server,
                                  cloud::Transport* healthy);

// ----- multi-tenant deployments (src/tenant) -----
//
// Layout:
//   <dir>/tenants.bin          TenantRegistry::serialize() + footer
//   <dir>/tenant_<id>/         one single-server deployment per tenant
//   <dir>/tenant_<id>.wal      that tenant's durability sidecar
//
// Each tenant_<id>/ is itself a valid single-server deployment written
// through the same staged atomic-swap path as save_deployment, and its
// WAL is a sibling for the same reason a single-owner WAL is. tenants.bin
// is replaced by write-to-temp + rename, so the registry too is either
// the old or the new version after a crash, never a torn mix.

/// True when `dir` holds a multi-tenant deployment (a tenants.bin
/// exists). Also recovers a registry parked by a crashed save.
bool is_tenant_deployment(const std::string& dir);

/// Writes just the registry artifact into `dir` (created if missing) —
/// the control-plane half of a tenant save, callable on its own after a
/// quota change.
void save_tenant_registry(const tenant::TenantRegistry& registry,
                          const std::string& dir);

/// Reads the registry artifact. Throws Error / IntegrityError /
/// ParseError.
tenant::TenantRegistry load_tenant_registry(const std::string& dir);

/// The namespace directory of one tenant inside a tenant deployment.
[[nodiscard]] std::string tenant_dir(const std::string& dir, const std::string& id);

/// Persists the whole host: the registry plus every tenant's namespace
/// (index, files, segment overlay), each through the atomic-swap path.
void save_tenant_deployment(const tenant::TenantHost& host, const std::string& dir);

/// Restores a tenant deployment into an empty host: re-registers every
/// tenant with its persisted quota and loads its namespace + WAL.
void load_tenant_deployment(const std::string& dir, tenant::TenantHost& host);

}  // namespace rsse::store
