// Server-side persistence: the outsourced deployment (secure index +
// encrypted file blobs) as a directory on disk, so a CloudServer can be
// shut down and restarted without the owner re-uploading. Layout:
//
//   <dir>/index.bin        SecureIndex::serialize()
//   <dir>/files/<id>.bin   one AES-GCM blob per file id (decimal name)
//
// Everything stored is ciphertext; the directory is exactly what a real
// storage provider would hold.
#pragma once

#include <string>

#include "cloud/cloud_server.h"

namespace rsse::store {

/// Writes the server's current index + files under `dir` (created if
/// missing; an existing deployment is replaced). Throws Error on I/O
/// failure.
void save_deployment(const cloud::CloudServer& server, const std::string& dir);

/// Loads a deployment directory into `server` (replacing its state —
/// CloudServer owns a mutex and is therefore not movable).
/// Throws Error on I/O failure and ParseError on malformed content.
void load_deployment(const std::string& dir, cloud::CloudServer& server);

}  // namespace rsse::store
