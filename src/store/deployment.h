// Server-side persistence: the outsourced deployment (secure index +
// encrypted file blobs) as a directory on disk, so a CloudServer can be
// shut down and restarted without the owner re-uploading. Layout:
//
//   <dir>/index.bin        SecureIndex::serialize()
//   <dir>/files/<id>.bin   one AES-GCM blob per file id (decimal name)
//
// Everything stored is ciphertext; the directory is exactly what a real
// storage provider would hold.
// Cluster layout (sharded deployments, src/cluster):
//
//   <dir>/manifest.bin       ClusterManifest::serialize()
//   <dir>/shard<i>/          one single-server deployment per shard
//
// Each shard directory is itself a valid single-server deployment, so a
// shard can be served by the plain `rsse serve` path (that is how replicas
// are deployed: upload the same shard directory to R endpoints).
#pragma once

#include <string>

#include "cloud/cloud_server.h"
#include "cluster/shard_map.h"

namespace rsse::store {

/// Writes the server's current index + files under `dir` (created if
/// missing; an existing deployment is replaced). Throws Error on I/O
/// failure.
void save_deployment(const cloud::CloudServer& server, const std::string& dir);

/// Loads a deployment directory into `server` (replacing its state —
/// CloudServer owns a mutex and is therefore not movable).
/// Throws Error on I/O failure and ParseError on malformed content.
void load_deployment(const std::string& dir, cloud::CloudServer& server);

/// Splits the server's outsourced state across `num_shards` and writes a
/// cluster deployment (manifest + per-shard directories) under `dir`.
/// Throws Error on I/O failure.
void save_cluster_deployment(const cloud::CloudServer& server, std::uint32_t num_shards,
                             const std::string& dir);

/// True when `dir` holds a cluster deployment (a manifest.bin exists).
bool is_cluster_deployment(const std::string& dir);

/// Reads the cluster manifest of a deployment written by
/// save_cluster_deployment. Throws Error / ParseError.
cluster::ClusterManifest load_cluster_manifest(const std::string& dir);

/// Loads shard `shard` of a cluster deployment into `server`.
void load_cluster_shard(const std::string& dir, std::uint32_t shard,
                        cloud::CloudServer& server);

}  // namespace rsse::store
