#include "store/owner_state.h"

#include <fstream>
#include <sstream>

#include "crypto/aes_gcm.h"
#include "crypto/csprng.h"
#include "crypto/pbkdf2.h"
#include "util/errors.h"

namespace rsse::store {

namespace {

// File magic: "RSSEOWN1".
constexpr std::uint8_t kMagic[8] = {'R', 'S', 'S', 'E', 'O', 'W', 'N', '1'};
constexpr std::size_t kSaltSize = 16;

}  // namespace

Bytes OwnerState::serialize() const {
  Bytes out;
  append_lp(out, key.serialize());
  append_lp(out, file_master);
  out.push_back(quantizer.has_value() ? 0x01 : 0x00);
  if (quantizer) append_lp(out, quantizer->serialize());
  return out;
}

OwnerState OwnerState::deserialize(BytesView blob) {
  ByteReader reader(blob);
  OwnerState state;
  state.key = sse::MasterKey::deserialize(reader.read_lp());
  state.file_master = reader.read_lp();
  const Bytes flag = reader.read(1);
  if (flag[0] == 0x01) {
    state.quantizer = opse::ScoreQuantizer::deserialize(reader.read_lp());
  } else if (flag[0] != 0x00) {
    throw ParseError("OwnerState: bad quantizer flag");
  }
  if (!reader.exhausted()) throw ParseError("OwnerState: trailing bytes");
  return state;
}

Bytes seal_owner_state(const OwnerState& state, std::string_view passphrase,
                       std::uint32_t iterations) {
  detail::require(!passphrase.empty(), "seal_owner_state: empty passphrase");
  const Bytes salt = crypto::random_bytes(kSaltSize);
  const Bytes sealing_key =
      crypto::pbkdf2_hmac_sha256(to_bytes(passphrase), salt, iterations, 32);

  Bytes out(kMagic, kMagic + sizeof kMagic);
  append(out, salt);
  append_u32(out, iterations);
  append_lp(out, crypto::aes_gcm_encrypt(sealing_key, state.serialize(),
                                         BytesView(kMagic, sizeof kMagic)));
  return out;
}

OwnerState open_owner_state(BytesView sealed, std::string_view passphrase) {
  ByteReader reader(sealed);
  const Bytes magic = reader.read(sizeof kMagic);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw ParseError("open_owner_state: not an owner-state file");
  const Bytes salt = reader.read(kSaltSize);
  const std::uint32_t iterations = reader.read_u32();
  if (iterations == 0) throw ParseError("open_owner_state: zero iterations");
  const Bytes envelope = reader.read_lp();
  if (!reader.exhausted()) throw ParseError("open_owner_state: trailing bytes");

  const Bytes sealing_key =
      crypto::pbkdf2_hmac_sha256(to_bytes(passphrase), salt, iterations, 32);
  const Bytes plain =
      crypto::aes_gcm_decrypt(sealing_key, envelope, BytesView(kMagic, sizeof kMagic));
  return OwnerState::deserialize(plain);
}

void save_owner_state(const OwnerState& state, const std::string& path,
                      std::string_view passphrase, std::uint32_t iterations) {
  const Bytes sealed = seal_owner_state(state, passphrase, iterations);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("save_owner_state: cannot open " + path);
  out.write(reinterpret_cast<const char*>(sealed.data()),
            static_cast<std::streamsize>(sealed.size()));
  if (!out) throw Error("save_owner_state: write failed for " + path);
}

OwnerState load_owner_state(const std::string& path, std::string_view passphrase) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_owner_state: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return open_owner_state(to_bytes(content), passphrase);
}

}  // namespace rsse::store
