// Owner-side persistence: everything the data owner must retain between
// sessions — the master key, the file-encryption root, and (after Setup)
// the score quantizer that pins the dynamics path's encoding. On disk
// the bundle is sealed with AES-256-GCM under a PBKDF2 passphrase key,
// salt and iteration count stored in the header.
#pragma once

#include <optional>
#include <string>

#include "opse/quantizer.h"
#include "sse/keys.h"
#include "util/bytes.h"

namespace rsse::store {

/// The owner's persistent secrets.
struct OwnerState {
  sse::MasterKey key;
  Bytes file_master;
  std::optional<opse::ScoreQuantizer> quantizer;

  /// Plain (unsealed) serialization — used inside the sealed envelope
  /// and by tests.
  [[nodiscard]] Bytes serialize() const;

  /// Inverse of serialize(). Throws ParseError on malformed input.
  static OwnerState deserialize(BytesView blob);
};

/// PBKDF2 work factor for sealing (tunable; tests lower it).
inline constexpr std::uint32_t kDefaultPbkdf2Iterations = 100000;

/// Seals an OwnerState under `passphrase` into a self-describing blob
/// (magic || salt || iterations || AES-GCM envelope).
Bytes seal_owner_state(const OwnerState& state, std::string_view passphrase,
                       std::uint32_t iterations = kDefaultPbkdf2Iterations);

/// Opens a sealed blob. Throws CryptoError on a wrong passphrase or
/// tampering, ParseError on a malformed envelope.
OwnerState open_owner_state(BytesView sealed, std::string_view passphrase);

/// Writes the sealed blob to `path` (binary). Throws Error on I/O failure.
void save_owner_state(const OwnerState& state, const std::string& path,
                      std::string_view passphrase,
                      std::uint32_t iterations = kDefaultPbkdf2Iterations);

/// Reads and opens a sealed state file.
OwnerState load_owner_state(const std::string& path, std::string_view passphrase);

}  // namespace rsse::store
