// A small fixed-size thread pool plus a chunked parallel_for.
//
// The RSSE index build is embarrassingly parallel across keywords (each
// posting row derives its own keys and touches no shared state), and the
// one-to-many mapping dominates construction cost (Table I), so the
// builder fans rows out over this pool. Kept deliberately minimal: a
// mutex-guarded queue, no work stealing — build tasks are coarse.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rsse {

/// Fixed-size worker pool. Destruction drains the queue, then joins.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). Throws InvalidArgument on 0.
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Number of workers.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Splits [0, n) into roughly equal chunks and runs `body(begin, end)`
/// on up to `threads` workers, blocking until all chunks finish. With
/// threads <= 1 (or n small) it runs inline. The first exception thrown
/// by any chunk is rethrown in the caller.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace rsse
