// Deterministic, non-cryptographic PRNG for workload generation.
//
// The synthetic corpus, the benchmark parameter sweeps, and the property
// tests all need reproducible randomness that is independent of the
// library's cryptographic randomness. xoshiro256** seeded via splitmix64
// gives high-quality 64-bit streams with a tiny, allocation-free state.
// NEVER use this for keys; crypto/csprng.h wraps the OS entropy source.
#pragma once

#include <cstdint>

namespace rsse {

/// splitmix64 step; used to expand a single seed into the xoshiro state
/// and occasionally directly for cheap hashing in tests.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna — deterministic workload PRNG.
class Xoshiro256 {
 public:
  /// Seeds the four 64-bit words from `seed` via splitmix64, guaranteeing
  /// a non-zero state for every seed value.
  explicit Xoshiro256(std::uint64_t seed);

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased). Throws InvalidArgument when bound == 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Throws when lo > hi.
  std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace rsse
