// Equal-width histogram over a numeric interval.
//
// The paper presents the relevance-score and encrypted-score distributions
// (Fig. 4 and Fig. 6) as counts over 128 equally spaced containers; this
// class is the reusable binning used by those benches, by the leakage
// analysis (min-entropy of the binned distribution) and by tests that
// assert flatness of the one-to-many mapping output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rsse {

/// The q-quantile (0 <= q <= 1) of a binned distribution given by
/// `edges` (bins+1 ascending bin boundaries) and `counts` (per-bin
/// totals): the value where the cumulative count first reaches
/// q * total, linearly interpolated inside the crossing bin. Returns
/// edges.front() for an empty distribution. This is the single binned
/// quantile implementation in the library — Histogram::quantile, the
/// obs metrics registry and the bench latency summaries all delegate
/// here, so their percentiles agree by construction. Throws
/// InvalidArgument on malformed inputs (q outside [0,1], fewer than two
/// edges, non-ascending edges, counts/edges size mismatch).
[[nodiscard]] double binned_quantile(const std::vector<double>& edges,
                                     const std::vector<std::uint64_t>& counts,
                                     double q);

/// Fixed-bin histogram over [lo, hi]. Values outside the interval are
/// clamped into the first/last bin so totals always match the inputs.
/// The boundary behavior at the edges is pinned by tests: a value equal
/// to `hi` lands in the last bin (not one past it), a value equal to
/// `lo` in the first.
class Histogram {
 public:
  /// Creates `bins` equally spaced containers spanning [lo, hi].
  /// Throws InvalidArgument when bins == 0 or hi <= lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void add(double value);

  /// Adds `count` observations of the same value.
  void add(double value, std::uint64_t count);

  /// Count in bin `i` (0-based). Throws InvalidArgument when out of range.
  [[nodiscard]] std::uint64_t count(std::size_t i) const;

  /// All per-bin counts in order.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }

  /// Total observations recorded.
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Largest per-bin count (0 for an empty histogram).
  [[nodiscard]] std::uint64_t max_count() const;

  /// Number of bins with at least one observation.
  [[nodiscard]] std::size_t occupied_bins() const;

  /// Min-entropy of the binned distribution in bits:
  /// -log2(max_count / total). Returns 0 for empty histograms. This is the
  /// H_inf measure the paper uses to argue range-size selection (Sec IV-C).
  [[nodiscard]] double min_entropy_bits() const;

  /// Shannon entropy of the binned distribution in bits.
  [[nodiscard]] double shannon_entropy_bits() const;

  /// Lower edge of bin `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// Upper edge of bin `i` (== bin_lo(i + 1); bin_hi(bins() - 1) == hi).
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// The q-quantile (0 <= q <= 1) of the binned distribution: the value at
  /// the point where the cumulative count first reaches q * total, linearly
  /// interpolated inside the crossing bin. Returns 0 for an empty
  /// histogram. Throws InvalidArgument when q is outside [0, 1]. The
  /// resolution is one bin width — good enough for latency percentiles,
  /// which is what the server metrics use it for.
  [[nodiscard]] double quantile(double q) const;

  /// Renders a fixed-width ASCII bar chart, one bin per row when
  /// `one_row_per_bin` is true, otherwise groups bins into at most
  /// `max_rows` rows. Useful for the figure-reproducing benches.
  [[nodiscard]] std::string ascii_chart(std::size_t max_rows = 32,
                                        std::size_t width = 60) const;

 private:
  [[nodiscard]] std::size_t bin_of(double value) const;

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rsse
