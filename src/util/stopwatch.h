// A minimal monotonic stopwatch used by the benchmark harnesses and the
// index-construction instrumentation (Table I splits raw-index time from
// score-encryption time, so the builders time their own phases).
#pragma once

#include <chrono>

namespace rsse {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the measurement from now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rsse
