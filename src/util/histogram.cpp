#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/errors.h"

namespace rsse {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  detail::require(bins > 0, "Histogram: bins must be positive");
  detail::require(hi > lo, "Histogram: hi must exceed lo");
  counts_.assign(bins, 0);
}

std::size_t Histogram::bin_of(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const double frac = (value - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double value) { add(value, 1); }

void Histogram::add(double value, std::uint64_t count) {
  counts_[bin_of(value)] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::size_t i) const {
  detail::require(i < counts_.size(), "Histogram::count: bin out of range");
  return counts_[i];
}

std::uint64_t Histogram::max_count() const {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

std::size_t Histogram::occupied_bins() const {
  return static_cast<std::size_t>(
      std::count_if(counts_.begin(), counts_.end(), [](std::uint64_t c) { return c > 0; }));
}

double Histogram::min_entropy_bits() const {
  if (total_ == 0) return 0.0;
  const double pmax = static_cast<double>(max_count()) / static_cast<double>(total_);
  return -std::log2(pmax);
}

double Histogram::shannon_entropy_bits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

double Histogram::bin_lo(std::size_t i) const {
  detail::require(i < counts_.size(), "Histogram::bin_lo: bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  detail::require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0, 1]");
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the crossing bin by the fraction of its mass
      // needed to reach the target.
      const double inside = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(counts_[i]);
      return bin_lo(i) + bin_width * std::clamp(inside, 0.0, 1.0);
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ascii_chart(std::size_t max_rows, std::size_t width) const {
  detail::require(max_rows > 0 && width > 0, "Histogram::ascii_chart: zero size");
  // Group adjacent bins so the chart fits in max_rows rows.
  const std::size_t group = (counts_.size() + max_rows - 1) / max_rows;
  std::vector<std::uint64_t> grouped;
  for (std::size_t i = 0; i < counts_.size(); i += group) {
    std::uint64_t sum = 0;
    for (std::size_t j = i; j < std::min(i + group, counts_.size()); ++j) sum += counts_[j];
    grouped.push_back(sum);
  }
  const std::uint64_t peak = grouped.empty()
                                 ? 0
                                 : *std::max_element(grouped.begin(), grouped.end());
  std::ostringstream os;
  for (std::size_t g = 0; g < grouped.size(); ++g) {
    const double edge = bin_lo(g * group);
    os.width(12);
    os.precision(4);
    os << edge << " | ";
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(grouped[g]) * // scaled to peak
                                             static_cast<double>(width) /
                                             static_cast<double>(peak));
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << grouped[g] << '\n';
  }
  return os.str();
}

}  // namespace rsse
