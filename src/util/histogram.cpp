#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/errors.h"

namespace rsse {

double binned_quantile(const std::vector<double>& edges,
                       const std::vector<std::uint64_t>& counts, double q) {
  detail::require(q >= 0.0 && q <= 1.0, "binned_quantile: q outside [0, 1]");
  detail::require(edges.size() >= 2, "binned_quantile: need at least two edges");
  detail::require(counts.size() + 1 == edges.size(),
                  "binned_quantile: counts/edges size mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    detail::require(edges[i] < edges[i + 1], "binned_quantile: edges not ascending");
    total += counts[i];
  }
  if (total == 0) return edges.front();
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the crossing bin by the fraction of its mass
      // needed to reach the target.
      const double inside = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(counts[i]);
      return edges[i] + (edges[i + 1] - edges[i]) * std::clamp(inside, 0.0, 1.0);
    }
    cumulative = next;
  }
  return edges.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  detail::require(bins > 0, "Histogram: bins must be positive");
  detail::require(hi > lo, "Histogram: hi must exceed lo");
  counts_.assign(bins, 0);
}

std::size_t Histogram::bin_of(double value) const {
  if (std::isnan(value)) return 0;  // treat like an underflow clamp
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const double frac = (value - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double value) { add(value, 1); }

void Histogram::add(double value, std::uint64_t count) {
  counts_[bin_of(value)] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::size_t i) const {
  detail::require(i < counts_.size(), "Histogram::count: bin out of range");
  return counts_[i];
}

std::uint64_t Histogram::max_count() const {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

std::size_t Histogram::occupied_bins() const {
  return static_cast<std::size_t>(
      std::count_if(counts_.begin(), counts_.end(), [](std::uint64_t c) { return c > 0; }));
}

double Histogram::min_entropy_bits() const {
  if (total_ == 0) return 0.0;
  const double pmax = static_cast<double>(max_count()) / static_cast<double>(total_);
  return -std::log2(pmax);
}

double Histogram::shannon_entropy_bits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

double Histogram::bin_lo(std::size_t i) const {
  detail::require(i < counts_.size(), "Histogram::bin_lo: bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  detail::require(i < counts_.size(), "Histogram::bin_hi: bin out of range");
  // Compute the last edge as exactly hi_ (not lo_ + n * width, which can
  // drift one ulp past it) so quantiles never report past the range.
  if (i + 1 == counts_.size()) return hi_;
  return bin_lo(i + 1);
}

double Histogram::quantile(double q) const {
  detail::require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q outside [0, 1]");
  if (total_ == 0) return 0.0;
  std::vector<double> edges;
  edges.reserve(counts_.size() + 1);
  for (std::size_t i = 0; i < counts_.size(); ++i) edges.push_back(bin_lo(i));
  edges.push_back(hi_);
  return binned_quantile(edges, counts_, q);
}

std::string Histogram::ascii_chart(std::size_t max_rows, std::size_t width) const {
  detail::require(max_rows > 0 && width > 0, "Histogram::ascii_chart: zero size");
  // Group adjacent bins so the chart fits in max_rows rows.
  const std::size_t group = (counts_.size() + max_rows - 1) / max_rows;
  std::vector<std::uint64_t> grouped;
  for (std::size_t i = 0; i < counts_.size(); i += group) {
    std::uint64_t sum = 0;
    for (std::size_t j = i; j < std::min(i + group, counts_.size()); ++j) sum += counts_[j];
    grouped.push_back(sum);
  }
  const std::uint64_t peak = grouped.empty()
                                 ? 0
                                 : *std::max_element(grouped.begin(), grouped.end());
  std::ostringstream os;
  for (std::size_t g = 0; g < grouped.size(); ++g) {
    const double edge = bin_lo(g * group);
    os.width(12);
    os.precision(4);
    os << edge << " | ";
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(grouped[g]) * // scaled to peak
                                             static_cast<double>(width) /
                                             static_cast<double>(peak));
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << grouped[g] << '\n';
  }
  return os.str();
}

}  // namespace rsse
