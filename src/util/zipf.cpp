#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace rsse {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  detail::require(n > 0, "ZipfSampler: n must be positive");
  detail::require(s >= 0.0, "ZipfSampler: exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfSampler::pmf(std::size_t k) const {
  detail::require(k < cdf_.size(), "ZipfSampler::pmf: rank out of range");
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace rsse
