// End-to-end deadlines: a point in monotonic time that a whole operation
// must finish by, carried down through every layer (cluster coordinator ->
// replica set -> transport -> socket) instead of per-layer timeouts that
// silently add up. A default-constructed Deadline is unlimited, so every
// API taking `const Deadline& = {}` keeps its old blocking behaviour until
// a caller opts in.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/errors.h"

namespace rsse {

/// A monotonic-clock deadline. Cheap to copy; pass by const reference.
class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// Unlimited: never expires.
  Deadline() = default;

  /// Expires `budget` from now. A non-positive budget is already expired.
  static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.at_ = clock::now() + budget;
    d.unlimited_ = false;
    return d;
  }

  /// Explicitly unlimited (same as default construction, reads better).
  static Deadline unlimited() { return Deadline(); }

  /// True when this deadline never expires.
  [[nodiscard]] bool is_unlimited() const { return unlimited_; }

  /// True when the budget is spent.
  [[nodiscard]] bool expired() const { return !unlimited_ && clock::now() >= at_; }

  /// Time left, clamped to >= 0. Huge for an unlimited deadline.
  [[nodiscard]] std::chrono::milliseconds remaining() const {
    if (unlimited_) return std::chrono::milliseconds::max();
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(at_ - clock::now());
    return std::max(left, std::chrono::milliseconds(0));
  }

  /// The remaining budget as a ::poll timeout: -1 for unlimited, else the
  /// clamped millisecond count (0 = expired, poll returns immediately).
  [[nodiscard]] int poll_timeout_ms() const {
    if (unlimited_) return -1;
    const auto ms = remaining().count();
    return static_cast<int>(std::min<std::int64_t>(ms, 1'000'000'000));
  }

  /// Throws DeadlineExceeded tagged with `what` when expired.
  void check(const char* what) const {
    if (expired()) throw DeadlineExceeded(std::string(what) + ": deadline exceeded");
  }

  /// The tighter of this deadline and `budget` from now — how a per-layer
  /// cap (e.g. a per-attempt budget) composes with the caller's overall
  /// deadline. A non-positive budget means "no extra cap".
  [[nodiscard]] Deadline tightened(std::chrono::milliseconds budget) const {
    if (budget.count() <= 0) return *this;
    const Deadline capped = after(budget);
    if (unlimited_ || capped.at_ < at_) return capped;
    return *this;
  }

 private:
  clock::time_point at_{};
  bool unlimited_ = true;
};

}  // namespace rsse
