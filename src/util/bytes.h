// Byte-buffer helpers shared across the library: a Bytes alias, hex
// encoding, constant-time comparison, and primitive (de)serialization of
// integers in an explicit little-endian wire format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rsse {

/// The library-wide owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// A non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Converts a string to bytes (no encoding transformation).
Bytes to_bytes(std::string_view s);

/// Converts bytes to a std::string (bit-for-bit).
std::string to_string(BytesView b);

/// Lower-case hex encoding, e.g. {0xde,0xad} -> "dead".
std::string hex_encode(BytesView b);

/// Inverse of hex_encode. Throws ParseError on odd length or non-hex chars.
Bytes hex_decode(std::string_view hex);

/// Constant-time equality check: runtime depends only on the lengths, never
/// on the content, so MAC/trapdoor comparisons do not leak via timing.
bool constant_time_equal(BytesView a, BytesView b);

/// Appends `b` to `out`.
void append(Bytes& out, BytesView b);

/// Appends a 32-bit unsigned integer, little-endian.
void append_u32(Bytes& out, std::uint32_t v);

/// Appends a 64-bit unsigned integer, little-endian.
void append_u64(Bytes& out, std::uint64_t v);

/// Appends a length-prefixed (u32) byte string.
void append_lp(Bytes& out, BytesView b);

/// A bounds-checked sequential reader over a byte buffer; the inverse of
/// the append_* helpers. Every read throws ParseError when the buffer is
/// exhausted, so malformed wire data cannot cause out-of-range access.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  /// Reads `n` raw bytes.
  Bytes read(std::size_t n);

  /// Reads a little-endian u32.
  std::uint32_t read_u32();

  /// Reads a little-endian u64.
  std::uint64_t read_u64();

  /// Reads a length-prefixed byte string written by append_lp.
  Bytes read_lp();

  /// Reads a u64 element count and validates it against the bytes still
  /// available (each element needs at least `min_element_size` bytes), so
  /// a corrupted count can never trigger a huge allocation. Throws
  /// ParseError when the count is implausible.
  std::uint64_t read_count(std::size_t min_element_size);

  /// Number of bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// True when the whole buffer has been consumed.
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace rsse
