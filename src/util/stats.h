// Small statistics helpers used by benches and tests: Welford running
// moments, order statistics over a sample, and duplicate counting (the
// paper's max/lambda parameter of eq. 3 is a duplicate statistic of the
// plaintext score multiset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsse {

/// Streaming mean / variance / extrema (Welford's algorithm). Numerically
/// stable for long benchmark runs.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const { return n_; }

  /// Arithmetic mean (0 when empty).
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than two observations).
  [[nodiscard]] double variance() const;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;

  /// Smallest observation (0 when empty).
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }

  /// Largest observation (0 when empty).
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `sample` using linear
/// interpolation between order statistics. Throws InvalidArgument on an
/// empty sample or q outside [0,1]. The input is copied, not reordered.
double quantile(std::vector<double> sample, double q);

/// Count of the most frequent value in the multiset (the "max" of the
/// paper's max/lambda ratio). Returns 0 for empty input.
std::uint64_t max_duplicates(const std::vector<std::uint64_t>& values);

/// Number of distinct values in the multiset.
std::size_t distinct_count(const std::vector<std::uint64_t>& values);

}  // namespace rsse
