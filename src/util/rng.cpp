#include "util/rng.h"

#include "util/errors.h"

namespace rsse {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // splitmix64 cannot produce an all-zero 256-bit state from any seed, but
  // keep the guard explicit: the all-zero state is the one fixed point.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) {
  detail::require(bound > 0, "Xoshiro256::uniform_below: bound must be positive");
  // Lemire's method: multiply-shift with a rejection zone of size
  // (2^64 mod bound) to remove modulo bias.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::uniform_in(std::uint64_t lo, std::uint64_t hi) {
  detail::require(lo <= hi, "Xoshiro256::uniform_in: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~0ull) return next_u64();
  return lo + uniform_below(span + 1);
}

bool Xoshiro256::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace rsse
