// Zipf-distributed integer sampler.
//
// Natural-language term frequencies are famously Zipfian; the synthetic
// RFC-like corpus draws its vocabulary ranks from this sampler so the
// resulting per-keyword relevance-score distributions exhibit the skew the
// paper shows in Fig. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rsse {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^s.
/// Uses a precomputed cumulative table and binary search, so sampling is
/// O(log n) and exact (no rejection).
class ZipfSampler {
 public:
  /// Builds the CDF table for `n` ranks with exponent `s`.
  /// Throws InvalidArgument when n == 0 or s < 0.
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank using the caller's deterministic PRNG.
  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const;

  /// Number of ranks.
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace rsse
