#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/errors.h"

namespace rsse {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  detail::require(!sample.empty(), "quantile: empty sample");
  detail::require(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::uint64_t max_duplicates(const std::vector<std::uint64_t>& values) {
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  std::uint64_t best = 0;
  for (std::uint64_t v : values) best = std::max(best, ++freq[v]);
  return best;
}

std::size_t distinct_count(const std::vector<std::uint64_t>& values) {
  std::unordered_map<std::uint64_t, bool> seen;
  for (std::uint64_t v : values) seen[v] = true;
  return seen.size();
}

}  // namespace rsse
