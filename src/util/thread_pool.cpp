#include "util/thread_pool.h"

#include <algorithm>

#include "util/errors.h"

namespace rsse {

ThreadPool::ThreadPool(std::size_t threads) {
  detail::require(threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    detail::require(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the associated future
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  threads = std::max<std::size_t>(1, threads);
  if (threads == 1 || n < 2) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(threads, n);
  ThreadPool pool(chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();  // rethrows the first chunk failure
}

}  // namespace rsse
