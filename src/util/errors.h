// Exception hierarchy for the RSSE library.
//
// All library errors derive from rsse::Error so callers can catch one type.
// Subtypes distinguish programmer errors (violated preconditions on the
// public API) from environmental failures (crypto backend, I/O).
#pragma once

#include <stdexcept>
#include <string>

namespace rsse {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A public-API precondition was violated (bad argument, wrong state).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// The OpenSSL backend reported a failure (should not happen in practice).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// A serialized blob (index, message, key file) failed to parse.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A protocol-level failure between the cloud roles (unknown trapdoor
/// format, unauthorized user, malformed request).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

namespace detail {

/// Throws InvalidArgument with `msg` when `cond` is false. Used to state
/// preconditions at the top of public functions (guideline I.5/I.6).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace detail
}  // namespace rsse
