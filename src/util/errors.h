// Exception hierarchy for the RSSE library.
//
// All library errors derive from rsse::Error so callers can catch one type.
// Subtypes distinguish programmer errors (violated preconditions on the
// public API) from environmental failures (crypto backend, I/O).
#pragma once

#include <stdexcept>
#include <string>

namespace rsse {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A public-API precondition was violated (bad argument, wrong state).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// The OpenSSL backend reported a failure (should not happen in practice).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// A serialized blob (index, message, key file) failed to parse.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A protocol-level failure between the cloud roles (unknown trapdoor
/// format, unauthorized user, malformed request).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// An operation ran out of its end-to-end time budget (util/deadline.h).
/// Distinct from ProtocolError so callers can tell "the peer misbehaved"
/// from "the peer was too slow" — the latter is retryable elsewhere.
class DeadlineExceeded : public Error {
 public:
  using Error::Error;
};

/// A request was shed by admission control before any crypto/rank work
/// (per-tenant rate limit or in-flight quota). Deliberately cheap: the
/// server rejects at the front door instead of burning the caller's
/// deadline in a queue. Distinct from DeadlineExceeded (retry later is
/// sensible, failover to a replica is not — every replica enforces the
/// same tenant quota) and from ProtocolError (the request was well
/// formed; the tenant is just over its budget).
class QuotaExceeded : public Error {
 public:
  using Error::Error;
};

/// The serving endpoint shed the request under load: the reactor's
/// global in-flight cap (or connection cap) was hit and the server chose
/// a fast typed rejection over queueing past the caller's deadline.
/// Distinct from QuotaExceeded — this is endpoint pressure, not a
/// per-tenant budget, so retrying against a different replica is
/// sensible. Derives from ProtocolError so existing failover paths treat
/// it as an ordinary failed attempt while callers that care can still
/// catch the precise type.
class Overloaded : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

/// A stored artifact failed its integrity check (checksum footer missing
/// or wrong — torn write, truncation, bit rot). Derives from ParseError
/// because corrupted-artifact call sites historically caught that type.
class IntegrityError : public ParseError {
 public:
  using ParseError::ParseError;
};

namespace detail {

/// Throws InvalidArgument with `msg` when `cond` is false. Used to state
/// preconditions at the top of public functions (guideline I.5/I.6).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace detail
}  // namespace rsse
