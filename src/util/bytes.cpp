#include "util/bytes.h"

#include <algorithm>

#include "util/errors.h"

namespace rsse {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

std::string hex_encode(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex_decode: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("hex_decode: non-hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void append(Bytes& out, BytesView b) { out.insert(out.end(), b.begin(), b.end()); }

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_lp(Bytes& out, BytesView b) {
  if (b.size() > 0xffffffffu) throw InvalidArgument("append_lp: buffer too large");
  append_u32(out, static_cast<std::uint32_t>(b.size()));
  append(out, b);
}

Bytes ByteReader::read(std::size_t n) {
  if (remaining() < n) throw ParseError("ByteReader: truncated input");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint32_t ByteReader::read_u32() {
  if (remaining() < 4) throw ParseError("ByteReader: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  if (remaining() < 8) throw ParseError("ByteReader: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes ByteReader::read_lp() {
  const std::uint32_t n = read_u32();
  return read(n);
}

std::uint64_t ByteReader::read_count(std::size_t min_element_size) {
  const std::uint64_t n = read_u64();
  if (min_element_size == 0) min_element_size = 1;
  if (n > remaining() / min_element_size)
    throw ParseError("ByteReader: element count exceeds payload");
  return n;
}

}  // namespace rsse
