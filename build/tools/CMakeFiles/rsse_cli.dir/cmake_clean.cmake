file(REMOVE_RECURSE
  "CMakeFiles/rsse_cli.dir/rsse_cli.cpp.o"
  "CMakeFiles/rsse_cli.dir/rsse_cli.cpp.o.d"
  "rsse"
  "rsse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
