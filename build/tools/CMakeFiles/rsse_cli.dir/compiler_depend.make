# Empty compiler generated dependencies file for rsse_cli.
# This may be replaced when dependencies are built.
