file(REMOVE_RECURSE
  "CMakeFiles/test_rank_cache.dir/test_rank_cache.cpp.o"
  "CMakeFiles/test_rank_cache.dir/test_rank_cache.cpp.o.d"
  "test_rank_cache"
  "test_rank_cache.pdb"
  "test_rank_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
