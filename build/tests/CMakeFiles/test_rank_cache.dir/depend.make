# Empty dependencies file for test_rank_cache.
# This may be replaced when dependencies are built.
