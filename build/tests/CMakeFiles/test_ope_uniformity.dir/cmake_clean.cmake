file(REMOVE_RECURSE
  "CMakeFiles/test_ope_uniformity.dir/test_ope_uniformity.cpp.o"
  "CMakeFiles/test_ope_uniformity.dir/test_ope_uniformity.cpp.o.d"
  "test_ope_uniformity"
  "test_ope_uniformity.pdb"
  "test_ope_uniformity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ope_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
