# Empty dependencies file for test_ope_uniformity.
# This may be replaced when dependencies are built.
