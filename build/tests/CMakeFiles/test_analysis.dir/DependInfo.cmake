
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/test_analysis.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/test_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rsse_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rsse_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rsse_store.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/rsse_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/rsse_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rsse_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sse/CMakeFiles/rsse_sse.dir/DependInfo.cmake"
  "/root/repo/build/src/opse/CMakeFiles/rsse_opse.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rsse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
