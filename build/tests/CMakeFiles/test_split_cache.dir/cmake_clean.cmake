file(REMOVE_RECURSE
  "CMakeFiles/test_split_cache.dir/test_split_cache.cpp.o"
  "CMakeFiles/test_split_cache.dir/test_split_cache.cpp.o.d"
  "test_split_cache"
  "test_split_cache.pdb"
  "test_split_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
