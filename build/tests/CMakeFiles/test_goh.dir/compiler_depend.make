# Empty compiler generated dependencies file for test_goh.
# This may be replaced when dependencies are built.
