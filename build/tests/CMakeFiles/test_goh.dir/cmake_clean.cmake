file(REMOVE_RECURSE
  "CMakeFiles/test_goh.dir/test_goh.cpp.o"
  "CMakeFiles/test_goh.dir/test_goh.cpp.o.d"
  "test_goh"
  "test_goh.pdb"
  "test_goh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_goh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
