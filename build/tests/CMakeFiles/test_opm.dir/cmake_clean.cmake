file(REMOVE_RECURSE
  "CMakeFiles/test_opm.dir/test_opm.cpp.o"
  "CMakeFiles/test_opm.dir/test_opm.cpp.o.d"
  "test_opm"
  "test_opm.pdb"
  "test_opm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
