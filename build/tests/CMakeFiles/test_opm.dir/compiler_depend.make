# Empty compiler generated dependencies file for test_opm.
# This may be replaced when dependencies are built.
