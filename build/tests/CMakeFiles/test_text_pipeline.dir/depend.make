# Empty dependencies file for test_text_pipeline.
# This may be replaced when dependencies are built.
