file(REMOVE_RECURSE
  "CMakeFiles/test_text_pipeline.dir/test_text_pipeline.cpp.o"
  "CMakeFiles/test_text_pipeline.dir/test_text_pipeline.cpp.o.d"
  "test_text_pipeline"
  "test_text_pipeline.pdb"
  "test_text_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
