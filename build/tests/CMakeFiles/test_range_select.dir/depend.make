# Empty dependencies file for test_range_select.
# This may be replaced when dependencies are built.
