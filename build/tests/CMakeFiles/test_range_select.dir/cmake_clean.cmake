file(REMOVE_RECURSE
  "CMakeFiles/test_range_select.dir/test_range_select.cpp.o"
  "CMakeFiles/test_range_select.dir/test_range_select.cpp.o.d"
  "test_range_select"
  "test_range_select.pdb"
  "test_range_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
