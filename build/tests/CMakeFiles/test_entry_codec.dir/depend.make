# Empty dependencies file for test_entry_codec.
# This may be replaced when dependencies are built.
