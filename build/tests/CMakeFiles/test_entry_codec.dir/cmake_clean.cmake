file(REMOVE_RECURSE
  "CMakeFiles/test_entry_codec.dir/test_entry_codec.cpp.o"
  "CMakeFiles/test_entry_codec.dir/test_entry_codec.cpp.o.d"
  "test_entry_codec"
  "test_entry_codec.pdb"
  "test_entry_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entry_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
