# Empty compiler generated dependencies file for test_sse1.
# This may be replaced when dependencies are built.
