file(REMOVE_RECURSE
  "CMakeFiles/test_sse1.dir/test_sse1.cpp.o"
  "CMakeFiles/test_sse1.dir/test_sse1.cpp.o.d"
  "test_sse1"
  "test_sse1.pdb"
  "test_sse1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sse1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
