# Empty compiler generated dependencies file for test_padding.
# This may be replaced when dependencies are built.
