file(REMOVE_RECURSE
  "CMakeFiles/test_secure_index.dir/test_secure_index.cpp.o"
  "CMakeFiles/test_secure_index.dir/test_secure_index.cpp.o.d"
  "test_secure_index"
  "test_secure_index.pdb"
  "test_secure_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secure_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
