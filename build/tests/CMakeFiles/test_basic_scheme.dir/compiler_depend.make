# Empty compiler generated dependencies file for test_basic_scheme.
# This may be replaced when dependencies are built.
