file(REMOVE_RECURSE
  "CMakeFiles/test_basic_scheme.dir/test_basic_scheme.cpp.o"
  "CMakeFiles/test_basic_scheme.dir/test_basic_scheme.cpp.o.d"
  "test_basic_scheme"
  "test_basic_scheme.pdb"
  "test_basic_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basic_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
