# Empty dependencies file for test_opse.
# This may be replaced when dependencies are built.
