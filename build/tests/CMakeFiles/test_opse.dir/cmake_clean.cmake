file(REMOVE_RECURSE
  "CMakeFiles/test_opse.dir/test_opse.cpp.o"
  "CMakeFiles/test_opse.dir/test_opse.cpp.o.d"
  "test_opse"
  "test_opse.pdb"
  "test_opse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
