file(REMOVE_RECURSE
  "CMakeFiles/test_inverted_index.dir/test_inverted_index.cpp.o"
  "CMakeFiles/test_inverted_index.dir/test_inverted_index.cpp.o.d"
  "test_inverted_index"
  "test_inverted_index.pdb"
  "test_inverted_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inverted_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
