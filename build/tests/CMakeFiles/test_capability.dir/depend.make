# Empty dependencies file for test_capability.
# This may be replaced when dependencies are built.
