file(REMOVE_RECURSE
  "CMakeFiles/test_capability.dir/test_capability.cpp.o"
  "CMakeFiles/test_capability.dir/test_capability.cpp.o.d"
  "test_capability"
  "test_capability.pdb"
  "test_capability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
