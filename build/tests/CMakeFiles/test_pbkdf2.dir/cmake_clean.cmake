file(REMOVE_RECURSE
  "CMakeFiles/test_pbkdf2.dir/test_pbkdf2.cpp.o"
  "CMakeFiles/test_pbkdf2.dir/test_pbkdf2.cpp.o.d"
  "test_pbkdf2"
  "test_pbkdf2.pdb"
  "test_pbkdf2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbkdf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
