# Empty dependencies file for test_pbkdf2.
# This may be replaced when dependencies are built.
