# Empty compiler generated dependencies file for test_swp.
# This may be replaced when dependencies are built.
