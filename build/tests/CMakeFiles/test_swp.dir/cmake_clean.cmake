file(REMOVE_RECURSE
  "CMakeFiles/test_swp.dir/test_swp.cpp.o"
  "CMakeFiles/test_swp.dir/test_swp.cpp.o.d"
  "test_swp"
  "test_swp.pdb"
  "test_swp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
