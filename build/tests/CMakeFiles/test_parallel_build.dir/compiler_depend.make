# Empty compiler generated dependencies file for test_parallel_build.
# This may be replaced when dependencies are built.
