file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_build.dir/test_parallel_build.cpp.o"
  "CMakeFiles/test_parallel_build.dir/test_parallel_build.cpp.o.d"
  "test_parallel_build"
  "test_parallel_build.pdb"
  "test_parallel_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
