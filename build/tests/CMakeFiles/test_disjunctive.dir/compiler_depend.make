# Empty compiler generated dependencies file for test_disjunctive.
# This may be replaced when dependencies are built.
