file(REMOVE_RECURSE
  "CMakeFiles/test_disjunctive.dir/test_disjunctive.cpp.o"
  "CMakeFiles/test_disjunctive.dir/test_disjunctive.cpp.o.d"
  "test_disjunctive"
  "test_disjunctive.pdb"
  "test_disjunctive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
