file(REMOVE_RECURSE
  "CMakeFiles/test_hgd.dir/test_hgd.cpp.o"
  "CMakeFiles/test_hgd.dir/test_hgd.cpp.o.d"
  "test_hgd"
  "test_hgd.pdb"
  "test_hgd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
