# Empty dependencies file for test_hgd.
# This may be replaced when dependencies are built.
