# Empty compiler generated dependencies file for test_rsse_scheme.
# This may be replaced when dependencies are built.
