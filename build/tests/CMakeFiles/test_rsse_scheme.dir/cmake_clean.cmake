file(REMOVE_RECURSE
  "CMakeFiles/test_rsse_scheme.dir/test_rsse_scheme.cpp.o"
  "CMakeFiles/test_rsse_scheme.dir/test_rsse_scheme.cpp.o.d"
  "test_rsse_scheme"
  "test_rsse_scheme.pdb"
  "test_rsse_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsse_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
