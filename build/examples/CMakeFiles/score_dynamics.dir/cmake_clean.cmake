file(REMOVE_RECURSE
  "CMakeFiles/score_dynamics.dir/score_dynamics.cpp.o"
  "CMakeFiles/score_dynamics.dir/score_dynamics.cpp.o.d"
  "score_dynamics"
  "score_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
