# Empty dependencies file for score_dynamics.
# This may be replaced when dependencies are built.
