file(REMOVE_RECURSE
  "CMakeFiles/cloud_hosting.dir/cloud_hosting.cpp.o"
  "CMakeFiles/cloud_hosting.dir/cloud_hosting.cpp.o.d"
  "cloud_hosting"
  "cloud_hosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_hosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
