# Empty compiler generated dependencies file for cloud_hosting.
# This may be replaced when dependencies are built.
