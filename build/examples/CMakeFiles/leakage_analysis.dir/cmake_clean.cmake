file(REMOVE_RECURSE
  "CMakeFiles/leakage_analysis.dir/leakage_analysis.cpp.o"
  "CMakeFiles/leakage_analysis.dir/leakage_analysis.cpp.o.d"
  "leakage_analysis"
  "leakage_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
