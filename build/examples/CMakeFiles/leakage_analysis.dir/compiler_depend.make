# Empty compiler generated dependencies file for leakage_analysis.
# This may be replaced when dependencies are built.
