# Empty dependencies file for remote_deployment.
# This may be replaced when dependencies are built.
