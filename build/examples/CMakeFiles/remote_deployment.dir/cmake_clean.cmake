file(REMOVE_RECURSE
  "CMakeFiles/remote_deployment.dir/remote_deployment.cpp.o"
  "CMakeFiles/remote_deployment.dir/remote_deployment.cpp.o.d"
  "remote_deployment"
  "remote_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
