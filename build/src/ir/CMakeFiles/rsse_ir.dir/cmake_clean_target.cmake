file(REMOVE_RECURSE
  "librsse_ir.a"
)
