
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analyzer.cpp" "src/ir/CMakeFiles/rsse_ir.dir/analyzer.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/analyzer.cpp.o.d"
  "/root/repo/src/ir/corpus_gen.cpp" "src/ir/CMakeFiles/rsse_ir.dir/corpus_gen.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/corpus_gen.cpp.o.d"
  "/root/repo/src/ir/document.cpp" "src/ir/CMakeFiles/rsse_ir.dir/document.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/document.cpp.o.d"
  "/root/repo/src/ir/inverted_index.cpp" "src/ir/CMakeFiles/rsse_ir.dir/inverted_index.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/inverted_index.cpp.o.d"
  "/root/repo/src/ir/porter_stemmer.cpp" "src/ir/CMakeFiles/rsse_ir.dir/porter_stemmer.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/porter_stemmer.cpp.o.d"
  "/root/repo/src/ir/query_workload.cpp" "src/ir/CMakeFiles/rsse_ir.dir/query_workload.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/query_workload.cpp.o.d"
  "/root/repo/src/ir/scoring.cpp" "src/ir/CMakeFiles/rsse_ir.dir/scoring.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/scoring.cpp.o.d"
  "/root/repo/src/ir/stopwords.cpp" "src/ir/CMakeFiles/rsse_ir.dir/stopwords.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/stopwords.cpp.o.d"
  "/root/repo/src/ir/tokenizer.cpp" "src/ir/CMakeFiles/rsse_ir.dir/tokenizer.cpp.o" "gcc" "src/ir/CMakeFiles/rsse_ir.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
