file(REMOVE_RECURSE
  "CMakeFiles/rsse_ir.dir/analyzer.cpp.o"
  "CMakeFiles/rsse_ir.dir/analyzer.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/corpus_gen.cpp.o"
  "CMakeFiles/rsse_ir.dir/corpus_gen.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/document.cpp.o"
  "CMakeFiles/rsse_ir.dir/document.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/inverted_index.cpp.o"
  "CMakeFiles/rsse_ir.dir/inverted_index.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/porter_stemmer.cpp.o"
  "CMakeFiles/rsse_ir.dir/porter_stemmer.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/query_workload.cpp.o"
  "CMakeFiles/rsse_ir.dir/query_workload.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/scoring.cpp.o"
  "CMakeFiles/rsse_ir.dir/scoring.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/stopwords.cpp.o"
  "CMakeFiles/rsse_ir.dir/stopwords.cpp.o.d"
  "CMakeFiles/rsse_ir.dir/tokenizer.cpp.o"
  "CMakeFiles/rsse_ir.dir/tokenizer.cpp.o.d"
  "librsse_ir.a"
  "librsse_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
