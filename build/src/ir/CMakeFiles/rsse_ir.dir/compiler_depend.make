# Empty compiler generated dependencies file for rsse_ir.
# This may be replaced when dependencies are built.
