# Empty dependencies file for rsse_ir.
# This may be replaced when dependencies are built.
