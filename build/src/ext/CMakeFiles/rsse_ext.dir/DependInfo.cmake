
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/capability.cpp" "src/ext/CMakeFiles/rsse_ext.dir/capability.cpp.o" "gcc" "src/ext/CMakeFiles/rsse_ext.dir/capability.cpp.o.d"
  "/root/repo/src/ext/conjunctive.cpp" "src/ext/CMakeFiles/rsse_ext.dir/conjunctive.cpp.o" "gcc" "src/ext/CMakeFiles/rsse_ext.dir/conjunctive.cpp.o.d"
  "/root/repo/src/ext/disjunctive.cpp" "src/ext/CMakeFiles/rsse_ext.dir/disjunctive.cpp.o" "gcc" "src/ext/CMakeFiles/rsse_ext.dir/disjunctive.cpp.o.d"
  "/root/repo/src/ext/rank_quality.cpp" "src/ext/CMakeFiles/rsse_ext.dir/rank_quality.cpp.o" "gcc" "src/ext/CMakeFiles/rsse_ext.dir/rank_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sse/CMakeFiles/rsse_sse.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/opse/CMakeFiles/rsse_opse.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rsse_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
