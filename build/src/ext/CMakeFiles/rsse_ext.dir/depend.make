# Empty dependencies file for rsse_ext.
# This may be replaced when dependencies are built.
