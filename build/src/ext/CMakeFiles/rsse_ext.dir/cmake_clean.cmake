file(REMOVE_RECURSE
  "CMakeFiles/rsse_ext.dir/capability.cpp.o"
  "CMakeFiles/rsse_ext.dir/capability.cpp.o.d"
  "CMakeFiles/rsse_ext.dir/conjunctive.cpp.o"
  "CMakeFiles/rsse_ext.dir/conjunctive.cpp.o.d"
  "CMakeFiles/rsse_ext.dir/disjunctive.cpp.o"
  "CMakeFiles/rsse_ext.dir/disjunctive.cpp.o.d"
  "CMakeFiles/rsse_ext.dir/rank_quality.cpp.o"
  "CMakeFiles/rsse_ext.dir/rank_quality.cpp.o.d"
  "librsse_ext.a"
  "librsse_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
