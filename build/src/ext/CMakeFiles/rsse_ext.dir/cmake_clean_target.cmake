file(REMOVE_RECURSE
  "librsse_ext.a"
)
