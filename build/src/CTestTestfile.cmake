# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("opse")
subdirs("ir")
subdirs("sse")
subdirs("cloud")
subdirs("baseline")
subdirs("ext")
subdirs("store")
subdirs("net")
subdirs("analysis")
