
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes_ctr.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/aes_ctr.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/aes_ctr.cpp.o.d"
  "/root/repo/src/crypto/aes_gcm.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/aes_gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/aes_gcm.cpp.o.d"
  "/root/repo/src/crypto/csprng.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/csprng.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/csprng.cpp.o.d"
  "/root/repo/src/crypto/hmac_sha256.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/hmac_sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/hmac_sha256.cpp.o.d"
  "/root/repo/src/crypto/pbkdf2.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/pbkdf2.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/pbkdf2.cpp.o.d"
  "/root/repo/src/crypto/prf.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/prf.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/prf.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/tapegen.cpp" "src/crypto/CMakeFiles/rsse_crypto.dir/tapegen.cpp.o" "gcc" "src/crypto/CMakeFiles/rsse_crypto.dir/tapegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
