file(REMOVE_RECURSE
  "CMakeFiles/rsse_crypto.dir/aes_ctr.cpp.o"
  "CMakeFiles/rsse_crypto.dir/aes_ctr.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/aes_gcm.cpp.o"
  "CMakeFiles/rsse_crypto.dir/aes_gcm.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/csprng.cpp.o"
  "CMakeFiles/rsse_crypto.dir/csprng.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/hmac_sha256.cpp.o"
  "CMakeFiles/rsse_crypto.dir/hmac_sha256.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/pbkdf2.cpp.o"
  "CMakeFiles/rsse_crypto.dir/pbkdf2.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/prf.cpp.o"
  "CMakeFiles/rsse_crypto.dir/prf.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rsse_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/rsse_crypto.dir/tapegen.cpp.o"
  "CMakeFiles/rsse_crypto.dir/tapegen.cpp.o.d"
  "librsse_crypto.a"
  "librsse_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
