file(REMOVE_RECURSE
  "librsse_crypto.a"
)
