# Empty compiler generated dependencies file for rsse_crypto.
# This may be replaced when dependencies are built.
