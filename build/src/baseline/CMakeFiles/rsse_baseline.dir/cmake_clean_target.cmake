file(REMOVE_RECURSE
  "librsse_baseline.a"
)
