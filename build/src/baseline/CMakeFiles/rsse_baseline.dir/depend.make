# Empty dependencies file for rsse_baseline.
# This may be replaced when dependencies are built.
