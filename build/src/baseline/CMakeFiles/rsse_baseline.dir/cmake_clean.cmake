file(REMOVE_RECURSE
  "CMakeFiles/rsse_baseline.dir/bloom_filter.cpp.o"
  "CMakeFiles/rsse_baseline.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/bucket_opm.cpp.o"
  "CMakeFiles/rsse_baseline.dir/bucket_opm.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/curtmola_sse1.cpp.o"
  "CMakeFiles/rsse_baseline.dir/curtmola_sse1.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/goh_index.cpp.o"
  "CMakeFiles/rsse_baseline.dir/goh_index.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/plaintext_search.cpp.o"
  "CMakeFiles/rsse_baseline.dir/plaintext_search.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/sample_opm.cpp.o"
  "CMakeFiles/rsse_baseline.dir/sample_opm.cpp.o.d"
  "CMakeFiles/rsse_baseline.dir/swp.cpp.o"
  "CMakeFiles/rsse_baseline.dir/swp.cpp.o.d"
  "librsse_baseline.a"
  "librsse_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
