
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bloom_filter.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/bloom_filter.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/baseline/bucket_opm.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/bucket_opm.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/bucket_opm.cpp.o.d"
  "/root/repo/src/baseline/curtmola_sse1.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/curtmola_sse1.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/curtmola_sse1.cpp.o.d"
  "/root/repo/src/baseline/goh_index.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/goh_index.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/goh_index.cpp.o.d"
  "/root/repo/src/baseline/plaintext_search.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/plaintext_search.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/plaintext_search.cpp.o.d"
  "/root/repo/src/baseline/sample_opm.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/sample_opm.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/sample_opm.cpp.o.d"
  "/root/repo/src/baseline/swp.cpp" "src/baseline/CMakeFiles/rsse_baseline.dir/swp.cpp.o" "gcc" "src/baseline/CMakeFiles/rsse_baseline.dir/swp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sse/CMakeFiles/rsse_sse.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rsse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/opse/CMakeFiles/rsse_opse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
