file(REMOVE_RECURSE
  "librsse_cloud.a"
)
