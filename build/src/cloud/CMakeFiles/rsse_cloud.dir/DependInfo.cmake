
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/auth.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/auth.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/auth.cpp.o.d"
  "/root/repo/src/cloud/channel.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/channel.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/channel.cpp.o.d"
  "/root/repo/src/cloud/cloud_server.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/cloud_server.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/cloud_server.cpp.o.d"
  "/root/repo/src/cloud/data_owner.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/data_owner.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/data_owner.cpp.o.d"
  "/root/repo/src/cloud/data_user.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/data_user.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/data_user.cpp.o.d"
  "/root/repo/src/cloud/file_store.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/file_store.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/file_store.cpp.o.d"
  "/root/repo/src/cloud/protocol.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/protocol.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/protocol.cpp.o.d"
  "/root/repo/src/cloud/restricted_user.cpp" "src/cloud/CMakeFiles/rsse_cloud.dir/restricted_user.cpp.o" "gcc" "src/cloud/CMakeFiles/rsse_cloud.dir/restricted_user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ext/CMakeFiles/rsse_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/sse/CMakeFiles/rsse_sse.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rsse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/opse/CMakeFiles/rsse_opse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
