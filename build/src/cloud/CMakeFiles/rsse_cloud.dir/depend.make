# Empty dependencies file for rsse_cloud.
# This may be replaced when dependencies are built.
