file(REMOVE_RECURSE
  "CMakeFiles/rsse_cloud.dir/auth.cpp.o"
  "CMakeFiles/rsse_cloud.dir/auth.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/channel.cpp.o"
  "CMakeFiles/rsse_cloud.dir/channel.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/cloud_server.cpp.o"
  "CMakeFiles/rsse_cloud.dir/cloud_server.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/data_owner.cpp.o"
  "CMakeFiles/rsse_cloud.dir/data_owner.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/data_user.cpp.o"
  "CMakeFiles/rsse_cloud.dir/data_user.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/file_store.cpp.o"
  "CMakeFiles/rsse_cloud.dir/file_store.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/protocol.cpp.o"
  "CMakeFiles/rsse_cloud.dir/protocol.cpp.o.d"
  "CMakeFiles/rsse_cloud.dir/restricted_user.cpp.o"
  "CMakeFiles/rsse_cloud.dir/restricted_user.cpp.o.d"
  "librsse_cloud.a"
  "librsse_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
