# Empty dependencies file for rsse_net.
# This may be replaced when dependencies are built.
