file(REMOVE_RECURSE
  "CMakeFiles/rsse_net.dir/frame.cpp.o"
  "CMakeFiles/rsse_net.dir/frame.cpp.o.d"
  "CMakeFiles/rsse_net.dir/remote_channel.cpp.o"
  "CMakeFiles/rsse_net.dir/remote_channel.cpp.o.d"
  "CMakeFiles/rsse_net.dir/server.cpp.o"
  "CMakeFiles/rsse_net.dir/server.cpp.o.d"
  "CMakeFiles/rsse_net.dir/socket.cpp.o"
  "CMakeFiles/rsse_net.dir/socket.cpp.o.d"
  "librsse_net.a"
  "librsse_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
