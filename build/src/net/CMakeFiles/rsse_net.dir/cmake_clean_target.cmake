file(REMOVE_RECURSE
  "librsse_net.a"
)
