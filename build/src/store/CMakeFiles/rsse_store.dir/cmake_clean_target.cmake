file(REMOVE_RECURSE
  "librsse_store.a"
)
