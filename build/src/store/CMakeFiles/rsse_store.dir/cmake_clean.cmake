file(REMOVE_RECURSE
  "CMakeFiles/rsse_store.dir/deployment.cpp.o"
  "CMakeFiles/rsse_store.dir/deployment.cpp.o.d"
  "CMakeFiles/rsse_store.dir/owner_state.cpp.o"
  "CMakeFiles/rsse_store.dir/owner_state.cpp.o.d"
  "librsse_store.a"
  "librsse_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
