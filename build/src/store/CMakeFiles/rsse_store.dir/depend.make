# Empty dependencies file for rsse_store.
# This may be replaced when dependencies are built.
