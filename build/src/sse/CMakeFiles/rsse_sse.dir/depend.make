# Empty dependencies file for rsse_sse.
# This may be replaced when dependencies are built.
