
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sse/basic_scheme.cpp" "src/sse/CMakeFiles/rsse_sse.dir/basic_scheme.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/basic_scheme.cpp.o.d"
  "/root/repo/src/sse/dynamics.cpp" "src/sse/CMakeFiles/rsse_sse.dir/dynamics.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/dynamics.cpp.o.d"
  "/root/repo/src/sse/entry_codec.cpp" "src/sse/CMakeFiles/rsse_sse.dir/entry_codec.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/entry_codec.cpp.o.d"
  "/root/repo/src/sse/keys.cpp" "src/sse/CMakeFiles/rsse_sse.dir/keys.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/keys.cpp.o.d"
  "/root/repo/src/sse/rsse_scheme.cpp" "src/sse/CMakeFiles/rsse_sse.dir/rsse_scheme.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/rsse_scheme.cpp.o.d"
  "/root/repo/src/sse/secure_index.cpp" "src/sse/CMakeFiles/rsse_sse.dir/secure_index.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/secure_index.cpp.o.d"
  "/root/repo/src/sse/trapdoor_gen.cpp" "src/sse/CMakeFiles/rsse_sse.dir/trapdoor_gen.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/trapdoor_gen.cpp.o.d"
  "/root/repo/src/sse/types.cpp" "src/sse/CMakeFiles/rsse_sse.dir/types.cpp.o" "gcc" "src/sse/CMakeFiles/rsse_sse.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/opse/CMakeFiles/rsse_opse.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/rsse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
