file(REMOVE_RECURSE
  "librsse_sse.a"
)
