file(REMOVE_RECURSE
  "CMakeFiles/rsse_sse.dir/basic_scheme.cpp.o"
  "CMakeFiles/rsse_sse.dir/basic_scheme.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/dynamics.cpp.o"
  "CMakeFiles/rsse_sse.dir/dynamics.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/entry_codec.cpp.o"
  "CMakeFiles/rsse_sse.dir/entry_codec.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/keys.cpp.o"
  "CMakeFiles/rsse_sse.dir/keys.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/rsse_scheme.cpp.o"
  "CMakeFiles/rsse_sse.dir/rsse_scheme.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/secure_index.cpp.o"
  "CMakeFiles/rsse_sse.dir/secure_index.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/trapdoor_gen.cpp.o"
  "CMakeFiles/rsse_sse.dir/trapdoor_gen.cpp.o.d"
  "CMakeFiles/rsse_sse.dir/types.cpp.o"
  "CMakeFiles/rsse_sse.dir/types.cpp.o.d"
  "librsse_sse.a"
  "librsse_sse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_sse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
