file(REMOVE_RECURSE
  "CMakeFiles/rsse_analysis.dir/fingerprint.cpp.o"
  "CMakeFiles/rsse_analysis.dir/fingerprint.cpp.o.d"
  "CMakeFiles/rsse_analysis.dir/leakage.cpp.o"
  "CMakeFiles/rsse_analysis.dir/leakage.cpp.o.d"
  "librsse_analysis.a"
  "librsse_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
