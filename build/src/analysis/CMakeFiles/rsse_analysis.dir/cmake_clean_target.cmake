file(REMOVE_RECURSE
  "librsse_analysis.a"
)
