# Empty compiler generated dependencies file for rsse_analysis.
# This may be replaced when dependencies are built.
