file(REMOVE_RECURSE
  "librsse_opse.a"
)
