file(REMOVE_RECURSE
  "CMakeFiles/rsse_opse.dir/bclo_opse.cpp.o"
  "CMakeFiles/rsse_opse.dir/bclo_opse.cpp.o.d"
  "CMakeFiles/rsse_opse.dir/hgd.cpp.o"
  "CMakeFiles/rsse_opse.dir/hgd.cpp.o.d"
  "CMakeFiles/rsse_opse.dir/ope_common.cpp.o"
  "CMakeFiles/rsse_opse.dir/ope_common.cpp.o.d"
  "CMakeFiles/rsse_opse.dir/opm.cpp.o"
  "CMakeFiles/rsse_opse.dir/opm.cpp.o.d"
  "CMakeFiles/rsse_opse.dir/quantizer.cpp.o"
  "CMakeFiles/rsse_opse.dir/quantizer.cpp.o.d"
  "CMakeFiles/rsse_opse.dir/range_select.cpp.o"
  "CMakeFiles/rsse_opse.dir/range_select.cpp.o.d"
  "librsse_opse.a"
  "librsse_opse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_opse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
