# Empty compiler generated dependencies file for rsse_opse.
# This may be replaced when dependencies are built.
