
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opse/bclo_opse.cpp" "src/opse/CMakeFiles/rsse_opse.dir/bclo_opse.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/bclo_opse.cpp.o.d"
  "/root/repo/src/opse/hgd.cpp" "src/opse/CMakeFiles/rsse_opse.dir/hgd.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/hgd.cpp.o.d"
  "/root/repo/src/opse/ope_common.cpp" "src/opse/CMakeFiles/rsse_opse.dir/ope_common.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/ope_common.cpp.o.d"
  "/root/repo/src/opse/opm.cpp" "src/opse/CMakeFiles/rsse_opse.dir/opm.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/opm.cpp.o.d"
  "/root/repo/src/opse/quantizer.cpp" "src/opse/CMakeFiles/rsse_opse.dir/quantizer.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/quantizer.cpp.o.d"
  "/root/repo/src/opse/range_select.cpp" "src/opse/CMakeFiles/rsse_opse.dir/range_select.cpp.o" "gcc" "src/opse/CMakeFiles/rsse_opse.dir/range_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/rsse_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rsse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
