file(REMOVE_RECURSE
  "CMakeFiles/rsse_util.dir/bytes.cpp.o"
  "CMakeFiles/rsse_util.dir/bytes.cpp.o.d"
  "CMakeFiles/rsse_util.dir/histogram.cpp.o"
  "CMakeFiles/rsse_util.dir/histogram.cpp.o.d"
  "CMakeFiles/rsse_util.dir/rng.cpp.o"
  "CMakeFiles/rsse_util.dir/rng.cpp.o.d"
  "CMakeFiles/rsse_util.dir/stats.cpp.o"
  "CMakeFiles/rsse_util.dir/stats.cpp.o.d"
  "CMakeFiles/rsse_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rsse_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/rsse_util.dir/zipf.cpp.o"
  "CMakeFiles/rsse_util.dir/zipf.cpp.o.d"
  "librsse_util.a"
  "librsse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
