file(REMOVE_RECURSE
  "librsse_util.a"
)
