# Empty dependencies file for rsse_util.
# This may be replaced when dependencies are built.
