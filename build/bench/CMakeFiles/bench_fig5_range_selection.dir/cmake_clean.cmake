file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_range_selection.dir/bench_fig5_range_selection.cpp.o"
  "CMakeFiles/bench_fig5_range_selection.dir/bench_fig5_range_selection.cpp.o.d"
  "bench_fig5_range_selection"
  "bench_fig5_range_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_range_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
