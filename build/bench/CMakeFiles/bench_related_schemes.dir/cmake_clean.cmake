file(REMOVE_RECURSE
  "CMakeFiles/bench_related_schemes.dir/bench_related_schemes.cpp.o"
  "CMakeFiles/bench_related_schemes.dir/bench_related_schemes.cpp.o.d"
  "bench_related_schemes"
  "bench_related_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
