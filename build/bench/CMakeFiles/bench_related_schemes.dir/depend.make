# Empty dependencies file for bench_related_schemes.
# This may be replaced when dependencies are built.
