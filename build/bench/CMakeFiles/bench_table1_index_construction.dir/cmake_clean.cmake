file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_index_construction.dir/bench_table1_index_construction.cpp.o"
  "CMakeFiles/bench_table1_index_construction.dir/bench_table1_index_construction.cpp.o.d"
  "bench_table1_index_construction"
  "bench_table1_index_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_index_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
