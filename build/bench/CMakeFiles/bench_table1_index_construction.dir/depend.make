# Empty dependencies file for bench_table1_index_construction.
# This may be replaced when dependencies are built.
