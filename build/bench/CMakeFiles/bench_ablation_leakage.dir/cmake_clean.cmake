file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_leakage.dir/bench_ablation_leakage.cpp.o"
  "CMakeFiles/bench_ablation_leakage.dir/bench_ablation_leakage.cpp.o.d"
  "bench_ablation_leakage"
  "bench_ablation_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
