# Empty dependencies file for bench_ablation_leakage.
# This may be replaced when dependencies are built.
