file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_basic_vs_rsse.dir/bench_ablation_basic_vs_rsse.cpp.o"
  "CMakeFiles/bench_ablation_basic_vs_rsse.dir/bench_ablation_basic_vs_rsse.cpp.o.d"
  "bench_ablation_basic_vs_rsse"
  "bench_ablation_basic_vs_rsse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_basic_vs_rsse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
