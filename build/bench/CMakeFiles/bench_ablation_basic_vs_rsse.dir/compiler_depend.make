# Empty compiler generated dependencies file for bench_ablation_basic_vs_rsse.
# This may be replaced when dependencies are built.
