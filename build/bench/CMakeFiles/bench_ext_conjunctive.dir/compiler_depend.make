# Empty compiler generated dependencies file for bench_ext_conjunctive.
# This may be replaced when dependencies are built.
