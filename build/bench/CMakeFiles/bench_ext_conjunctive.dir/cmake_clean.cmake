file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_conjunctive.dir/bench_ext_conjunctive.cpp.o"
  "CMakeFiles/bench_ext_conjunctive.dir/bench_ext_conjunctive.cpp.o.d"
  "bench_ext_conjunctive"
  "bench_ext_conjunctive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_conjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
