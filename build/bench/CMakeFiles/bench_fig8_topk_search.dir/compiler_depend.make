# Empty compiler generated dependencies file for bench_fig8_topk_search.
# This may be replaced when dependencies are built.
