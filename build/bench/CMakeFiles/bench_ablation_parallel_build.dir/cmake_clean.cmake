file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parallel_build.dir/bench_ablation_parallel_build.cpp.o"
  "CMakeFiles/bench_ablation_parallel_build.dir/bench_ablation_parallel_build.cpp.o.d"
  "bench_ablation_parallel_build"
  "bench_ablation_parallel_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
